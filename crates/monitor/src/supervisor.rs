//! Worker supervision: death notices, capped-backoff respawn, shard
//! heartbeats, and the stall watchdog.
//!
//! The engine's decode workers are expendable: a panic that escapes
//! decode containment (or an injected
//! [`DecodeFault::KillWorker`](crate::DecodeFault)) kills the thread,
//! not the engine. Three mechanisms make that survivable:
//!
//! 1. every worker carries a [`DeathNotice`] drop guard that reports
//!    the death — and the job it died holding, if any — on the
//!    completion channel, so the control side can account the loss
//!    (`jobs_lost`) and release the pair instead of waiting forever;
//! 2. the [`Supervisor`] retains each shard's queue receiver behind an
//!    `Arc<Mutex<…>>`, so a worker death never disconnects the queue:
//!    queued jobs survive, and a respawned worker (capped exponential
//!    backoff per consecutive death) drains them;
//! 3. an optional watchdog thread flags shards whose worker heartbeat
//!    has gone stale while work is queued, letting shutdown degrade
//!    those pairs instead of hanging on them.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stepstone_core::{BoundCorrelator, Correlation};
use stepstone_flow::Flow;
use stepstone_telemetry::{span, time, Counter, Gauge};

use crate::config::MonitorConfig;
use crate::fault::{DecodeFault, FaultHook};
use crate::ids::PairId;
use crate::metrics::EngineMetrics;
use crate::queue::{ShardGauges, ShardReceiver};

/// A decode request pinned to one shard.
pub(crate) struct DecodeJob {
    pub pair: PairId,
    pub correlator: Arc<BoundCorrelator>,
    pub window: Flow,
    /// The flow's cumulative push count at snapshot time; carried back
    /// in the completion so staleness is observable.
    pub pushed: u64,
}

/// A finished decode, reported back to the control side.
pub(crate) struct Completion {
    pub pair: PairId,
    pub outcome: Correlation,
}

/// What a worker thread reports on the done channel.
pub(crate) enum WorkerEvent {
    /// A decode finished (possibly with a contained panic mapped to a
    /// failed outcome).
    Done(Completion),
    /// The worker thread died — a panic escaped decode containment.
    /// `inflight` is the job the worker was holding, dequeued but never
    /// completed; the control side accounts it as lost.
    Died {
        shard: usize,
        inflight: Option<PairId>,
    },
}

/// Everything one worker thread needs, bundled for respawning: the
/// supervisor can mint a fresh context for a shard at any time.
struct WorkerContext {
    shard: usize,
    rx: Arc<Mutex<ShardReceiver<DecodeJob>>>,
    done: Sender<WorkerEvent>,
    metrics: Arc<EngineMetrics>,
    heartbeat: Arc<AtomicU64>,
    epoch: Instant,
    fault_hook: Option<FaultHook>,
    decode_seq: Arc<AtomicU64>,
}

impl WorkerContext {
    /// Publishes "this worker was alive now" for the watchdog.
    fn touch_heartbeat(&self) {
        let elapsed = self.epoch.elapsed();
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        // ordering: the heartbeat is monotonic bookkeeping read only by
        // the watchdog; nothing is published through it.
        self.heartbeat.store(micros, Ordering::Relaxed);
    }

    /// Consults the fault oracle for the next decode, if one is
    /// installed. Sequence numbers are engine-global so the fault
    /// schedule is a pure function of the chaos seed.
    fn next_fault(&self, pair: PairId) -> DecodeFault {
        let Some(hook) = &self.fault_hook else {
            return DecodeFault::None;
        };
        // ordering: the sequence number only needs global uniqueness;
        // no other memory is ordered through it.
        let seq = self.decode_seq.fetch_add(1, Ordering::Relaxed);
        hook.fault(seq, pair)
    }
}

/// Panic payload for an injected worker kill — unwinding with
/// `resume_unwind` keeps the default panic hook (and its backtrace
/// spew) out of scheduled chaos.
struct InjectedKill;

/// Panic payload for an injected contained decode panic.
struct InjectedPanic;

/// Drop guard armed in every worker thread: if the thread unwinds, the
/// guard's drop runs while `thread::panicking()` and reports the death
/// — with the job the worker was holding, if any — on the done channel.
/// A clean worker exit drops the guard without an event.
struct DeathNotice {
    shard: usize,
    done: Sender<WorkerEvent>,
    inflight: Cell<Option<PairId>>,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // A failed send means the control side is gone too; nothing
            // left to notify.
            let _ = self.done.send(WorkerEvent::Died {
                shard: self.shard,
                inflight: self.inflight.get(),
            });
        }
    }
}

/// The outcome reported for a decode whose worker panicked: not
/// correlated, no watermark, flagged incomplete.
fn panicked_outcome() -> Correlation {
    Correlation {
        correlated: false,
        hamming: None,
        best: None,
        cost: 0,
        matching_cost: 0,
        completed: false,
        robust: None,
    }
}

/// Runs one decode with panic containment: a panicking decode is
/// counted and mapped to [`panicked_outcome`] so the job still yields a
/// completion — otherwise the control side would wait on the pair
/// forever at shutdown. `AssertUnwindSafe` is sound because the closure
/// only reads state the caller consumes afterwards and writes nothing
/// shared.
fn run_contained(decode: impl FnOnce() -> Correlation, worker_panics: &Counter) -> Correlation {
    std::panic::catch_unwind(AssertUnwindSafe(decode)).unwrap_or_else(|_| {
        worker_panics.inc();
        panicked_outcome()
    })
}

/// One shard worker: drains the shard queue, consults the fault hook,
/// decodes with panic containment, and reports completions. The shared
/// receiver's lock is held only across the dequeue itself — never
/// across a decode — so a respawned successor can take over the queue
/// the moment this worker dies.
fn worker_loop(ctx: WorkerContext) {
    let notice = DeathNotice {
        shard: ctx.shard,
        done: ctx.done.clone(),
        inflight: Cell::new(None),
    };
    loop {
        ctx.touch_heartbeat();
        let job = {
            // A predecessor that died mid-dequeue leaves the lock
            // poisoned but the queue intact (recv is atomic); taking
            // the guard back is sound.
            let rx = match ctx.rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // lint: allow(lock_order) single-consumer hand-off: each worker holds the shared receiver only while blocked on it, and the watchdog covers stalls
            rx.recv()
        };
        let Some(job) = job else { break };
        ctx.touch_heartbeat();
        notice.inflight.set(Some(job.pair));
        let fault = ctx.next_fault(job.pair);
        match fault {
            DecodeFault::KillWorker => {
                // Scheduled chaos, not a bug: die quietly by resuming
                // an unwind; the DeathNotice guard reports the loss.
                std::panic::resume_unwind(Box::new(InjectedKill));
            }
            DecodeFault::Sleep(micros) => {
                let pause = Duration::from_micros(micros);
                std::thread::sleep(pause);
            }
            DecodeFault::None | DecodeFault::Panic => {}
        }
        span!(ctx.metrics.registry.spans(), "decode");
        let backend_latency =
            Arc::clone(&ctx.metrics.backend_decode_latency[job.correlator.backend().index()]);
        let mode_latency =
            Arc::clone(&ctx.metrics.mode_decode_latency[job.correlator.decode_mode().index()]);
        let outcome = time!(ctx.metrics.decode_latency, {
            time!(backend_latency, {
                time!(mode_latency, {
                    run_contained(
                        || {
                            if matches!(fault, DecodeFault::Panic) {
                                // Quiet unwind, caught by the containment.
                                std::panic::resume_unwind(Box::new(InjectedPanic));
                            }
                            job.correlator.correlate(&job.window)
                        },
                        &ctx.metrics.worker_panics,
                    )
                })
            })
        });
        ctx.metrics.decodes_run.inc();
        notice.inflight.set(None);
        ctx.touch_heartbeat();
        if ctx
            .done
            .send(WorkerEvent::Done(Completion {
                pair: job.pair,
                outcome,
            }))
            .is_err()
        {
            // Control side is gone; no one to report to.
            break;
        }
    }
}

/// Per-shard supervision state.
struct ShardSlot {
    rx: Arc<Mutex<ShardReceiver<DecodeJob>>>,
    gauges: ShardGauges,
    heartbeat: Arc<AtomicU64>,
    stalled: Arc<AtomicBool>,
    /// Lifetime deaths of this shard's workers; drives the backoff
    /// exponent (never reset — the cap bounds the penalty).
    deaths: u32,
    /// Set when the shard's worker died; cleared on respawn.
    down_since: Option<Instant>,
}

/// Watchdog state shared with the watchdog thread, per shard.
struct WatchSlot {
    heartbeat: Arc<AtomicU64>,
    stalled: Arc<AtomicBool>,
    gauges: ShardGauges,
}

struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// Flags shards whose worker heartbeat is stale *while work is queued*
/// (an idle shard is never stalled). Runs until `stop` is set.
fn watchdog_loop(
    slots: Vec<WatchSlot>,
    stalled_gauge: Arc<Gauge>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    timeout: Duration,
) {
    let tick = (timeout / 4).max(Duration::from_millis(1));
    // ordering: plain shutdown flag; the supervisor's join provides the
    // final synchronization.
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        for slot in &slots {
            // ordering: heartbeat is monotonic bookkeeping; see
            // WorkerContext::touch_heartbeat.
            let beat = slot.heartbeat.load(Ordering::Relaxed);
            let last_touch = Duration::from_micros(beat);
            let now = epoch.elapsed();
            let stale = now.saturating_sub(last_touch) > timeout;
            let stalled_now = stale && slot.gauges.depth() > 0;
            // ordering: the flag is advisory — readers only use it to
            // pick a degradation policy, never to publish memory.
            let was = slot.stalled.swap(stalled_now, Ordering::Relaxed);
            match (was, stalled_now) {
                (false, true) => stalled_gauge.inc(),
                (true, false) => stalled_gauge.dec(),
                _ => {}
            }
        }
    }
}

/// Owns the worker threads, their shared queue receivers, the restart
/// policy, and the watchdog. The engine's control side reports deaths
/// into it ([`note_death`](Supervisor::note_death)) and polls
/// [`respawn_due`](Supervisor::respawn_due) on its normal pump path.
pub(crate) struct Supervisor {
    slots: Vec<ShardSlot>,
    workers: Vec<JoinHandle<()>>,
    done_tx: Sender<WorkerEvent>,
    metrics: Arc<EngineMetrics>,
    fault_hook: Option<FaultHook>,
    decode_seq: Arc<AtomicU64>,
    epoch: Instant,
    backoff: Duration,
    backoff_cap: Duration,
    watchdog: Option<Watchdog>,
    /// Set by [`drain_to_exit`](Supervisor::drain_to_exit): the engine
    /// is shutting down, so `respawn_due` must not spawn workers nobody
    /// will join.
    retired: bool,
}

impl Supervisor {
    /// Builds the supervisor, spawns one worker per shard, and starts
    /// the watchdog when a stall timeout is configured.
    ///
    /// # Panics
    ///
    /// Panics if a thread cannot be spawned.
    pub(crate) fn new(
        config: &MonitorConfig,
        metrics: Arc<EngineMetrics>,
        receivers: Vec<ShardReceiver<DecodeJob>>,
        gauges: Vec<ShardGauges>,
        done_tx: Sender<WorkerEvent>,
    ) -> Self {
        let slots: Vec<ShardSlot> = receivers
            .into_iter()
            .zip(gauges)
            .map(|(rx, gauges)| ShardSlot {
                rx: Arc::new(Mutex::new(rx)),
                gauges,
                heartbeat: Arc::new(AtomicU64::new(0)),
                stalled: Arc::new(AtomicBool::new(false)),
                deaths: 0,
                down_since: None,
            })
            .collect();
        let mut sup = Supervisor {
            slots,
            workers: Vec::new(),
            done_tx,
            metrics,
            fault_hook: config.fault_hook.clone(),
            decode_seq: Arc::new(AtomicU64::new(0)),
            epoch: Instant::now(),
            backoff: config.restart_backoff,
            backoff_cap: config.restart_backoff_cap,
            watchdog: None,
            retired: false,
        };
        for shard in 0..sup.slots.len() {
            sup.spawn_worker(shard);
        }
        if let Some(timeout) = config.stall_timeout {
            sup.start_watchdog(timeout);
        }
        sup
    }

    fn spawn_worker(&mut self, shard: usize) {
        let slot = &self.slots[shard];
        let ctx = WorkerContext {
            shard,
            rx: Arc::clone(&slot.rx),
            done: self.done_tx.clone(),
            metrics: Arc::clone(&self.metrics),
            heartbeat: Arc::clone(&slot.heartbeat),
            epoch: self.epoch,
            fault_hook: self.fault_hook.clone(),
            decode_seq: Arc::clone(&self.decode_seq),
        };
        self.workers.push(
            std::thread::Builder::new()
                .name(format!("monitor-shard-{shard}"))
                .spawn(move || worker_loop(ctx))
                // lint: allow(no_panic) thread spawn fails only on resource exhaustion; documented under Panics
                .expect("spawn monitor shard worker"),
        );
    }

    fn start_watchdog(&mut self, timeout: Duration) {
        let slots: Vec<WatchSlot> = self
            .slots
            .iter()
            .map(|s| WatchSlot {
                heartbeat: Arc::clone(&s.heartbeat),
                stalled: Arc::clone(&s.stalled),
                gauges: s.gauges.clone(),
            })
            .collect();
        let gauge = Arc::clone(&self.metrics.shards_stalled);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let epoch = self.epoch;
        let handle = std::thread::Builder::new()
            .name("monitor-watchdog".into())
            .spawn(move || watchdog_loop(slots, gauge, thread_stop, epoch, timeout))
            // lint: allow(no_panic) thread spawn fails only on resource exhaustion; documented under Panics
            .expect("spawn monitor watchdog");
        self.watchdog = Some(Watchdog { stop, handle });
    }

    /// Records a worker death reported on the done channel. The shard
    /// stays down until [`respawn_due`](Supervisor::respawn_due) brings
    /// it back; its queue keeps accepting jobs in the meantime because
    /// this supervisor retains the receiver.
    pub(crate) fn note_death(&mut self, shard: usize) {
        if let Some(slot) = self.slots.get_mut(shard) {
            slot.deaths = slot.deaths.saturating_add(1);
            slot.down_since = Some(Instant::now());
        }
    }

    /// Respawns workers for downed shards whose backoff has elapsed
    /// (`force` skips the backoff — used at shutdown, where
    /// completeness beats pacing). Cheap when nothing is down.
    pub(crate) fn respawn_due(&mut self, force: bool) {
        if self.retired {
            return;
        }
        for shard in 0..self.slots.len() {
            let Some(since) = self.slots[shard].down_since else {
                continue;
            };
            let wait = self.backoff_for(self.slots[shard].deaths);
            if force || since.elapsed() >= wait {
                self.slots[shard].down_since = None;
                self.spawn_worker(shard);
                self.metrics.worker_restarts.inc();
            }
        }
    }

    /// The capped exponential restart delay after `deaths` consecutive
    /// deaths: base, 2·base, 4·base, … up to the cap.
    fn backoff_for(&self, deaths: u32) -> Duration {
        let doublings = deaths.saturating_sub(1).min(16);
        self.backoff
            .saturating_mul(1u32 << doublings)
            .min(self.backoff_cap)
    }

    /// `true` if the watchdog currently flags `shard` as stalled.
    pub(crate) fn is_stalled(&self, shard: usize) -> bool {
        self.slots
            .get(shard)
            // ordering: advisory flag; see watchdog_loop.
            .map(|s| s.stalled.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// `true` if any shard is currently flagged stalled.
    pub(crate) fn any_stalled(&self) -> bool {
        self.slots
            .iter()
            // ordering: advisory flag; see watchdog_loop.
            .any(|s| s.stalled.load(Ordering::Relaxed))
    }

    /// Shutdown drain: joins every worker, then — because a worker that
    /// died mid-drain leaves its queue non-empty, while a live worker
    /// always drains to empty once the senders are gone — respawns
    /// workers for any leftovers and joins again, until every shard
    /// queue is empty. Also stops the watchdog and retires the
    /// supervisor so a straggling death event cannot spawn a worker
    /// nobody will join.
    ///
    /// Callers must drop every `ShardSender` first, or this will not
    /// terminate.
    pub(crate) fn drain_to_exit(&mut self) {
        self.stop_watchdog();
        self.retired = true;
        loop {
            for worker in self.workers.drain(..) {
                // Deaths were announced by their DeathNotice guard; the
                // join error carries nothing new.
                let _ = worker.join();
            }
            let mut respawned = false;
            for shard in 0..self.slots.len() {
                if self.slots[shard].gauges.depth() > 0 {
                    self.spawn_worker(shard);
                    self.metrics.worker_restarts.inc();
                    respawned = true;
                }
            }
            if !respawned {
                break;
            }
        }
    }

    fn stop_watchdog(&mut self) {
        if let Some(dog) = self.watchdog.take() {
            // ordering: plain shutdown flag; the join synchronizes.
            dog.stop.store(true, Ordering::Relaxed);
            let _ = dog.handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop_watchdog();
        for worker in self.workers.drain(..) {
            // Workers exit once the engine's senders and done receiver
            // are gone (both drop before the supervisor); deaths were
            // already announced by their DeathNotice guard.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contained_decode_passes_results_through() {
        let panics = Counter::new();
        let ok = Correlation {
            correlated: true,
            hamming: Some(1),
            best: None,
            cost: 3,
            matching_cost: 4,
            completed: true,
            robust: None,
        };
        let got = run_contained(|| ok.clone(), &panics);
        assert!(got.correlated);
        assert_eq!(got.hamming, Some(1));
        assert_eq!(panics.get(), 0);
    }

    #[test]
    fn contained_decode_maps_panic_to_failed_completion() {
        // Silence the default hook for the intentional panic; restore
        // it so other tests keep readable failure output.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let panics = Counter::new();
        let got = run_contained(|| panic!("decode bug"), &panics);
        std::panic::set_hook(hook);
        assert!(!got.correlated);
        assert!(!got.completed);
        assert_eq!(got.hamming, None);
        assert_eq!(panics.get(), 1, "panic must be counted exactly once");
        // A second contained panic keeps counting.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = run_contained(|| panic!("again"), &panics);
        std::panic::set_hook(hook);
        assert_eq!(panics.get(), 2);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let config = MonitorConfig::default()
            .with_restart_backoff(Duration::from_millis(2), Duration::from_millis(10));
        let metrics = Arc::new(EngineMetrics::new(Arc::new(
            stepstone_telemetry::Registry::new(),
        )));
        let (done_tx, _done_rx) = std::sync::mpsc::channel();
        let (tx, rx) = crate::queue::shard_queue::<DecodeJob>(1);
        let gauges = vec![tx.gauges()];
        let sup = Supervisor::new(&config, metrics, vec![rx], gauges, done_tx);
        assert_eq!(sup.backoff_for(1), Duration::from_millis(2));
        assert_eq!(sup.backoff_for(2), Duration::from_millis(4));
        assert_eq!(sup.backoff_for(3), Duration::from_millis(8));
        assert_eq!(sup.backoff_for(4), Duration::from_millis(10), "capped");
        assert_eq!(sup.backoff_for(40), Duration::from_millis(10), "capped");
        drop(tx);
    }
}
