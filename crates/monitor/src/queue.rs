//! Bounded shard queues with depth and drop accounting.
//!
//! The engine's control thread pushes decode jobs at the sending side;
//! one worker per shard drains the receiving side. All accounting
//! invariants live here so they can be model-checked in isolation
//! (`tests/loom_queue.rs`, behind `--cfg loom`):
//!
//! 1. the **depth gauge never underflows**: it is incremented *before*
//!    a push attempt and decremented on failure (or after a pop), so
//!    it is always ≥ the queue's true occupancy and never wraps — the
//!    pre-extraction engine incremented *after* a successful
//!    `try_send`, racing the worker's decrement and occasionally
//!    wrapping the gauge to `usize::MAX`;
//! 2. **no job is lost or duplicated**: `accepted = popped` once the
//!    sender is dropped and the receiver drained;
//! 3. **drop accuracy**: `attempts = accepted + dropped` at all times.
//!
//! This module is compiled against `loom`'s atomics under `--cfg loom`
//! so the model tests drive the exact code the engine runs.

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// Why a push was rejected. Carrying the job back makes the rejection
/// lossless: the caller decides whether to retry, requeue elsewhere, or
/// account the job as shed — the queue itself never swallows work.
///
/// The distinction matters for crash accounting: `Full` is ordinary
/// backpressure (the pair retries on a later packet), while
/// `Disconnected` means the receiving side is gone — enqueueing onto a
/// dead shard must surface as a typed error rather than silently
/// accepting a job no one will ever drain, or the conservation
/// invariant `enqueued == dequeued + depth` could be violated by a
/// worker death.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the rejected job is returned.
    Full(T),
    /// The receiving side is gone; the rejected job is returned.
    Disconnected(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected job.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Disconnected(item) => item,
        }
    }

    /// `true` for [`PushError::Disconnected`].
    pub fn is_disconnected(&self) -> bool {
        matches!(self, PushError::Disconnected(_))
    }
}

/// The producing half of a bounded shard queue. Owned by the engine's
/// control side; never blocks unless [`push_blocking`] is chosen.
///
/// [`push_blocking`]: ShardSender::push_blocking
#[derive(Debug)]
pub struct ShardSender<T> {
    tx: SyncSender<T>,
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
    enqueued: Arc<AtomicU64>,
    dequeued: Arc<AtomicU64>,
}

/// The consuming half of a bounded shard queue. Moved into the shard's
/// worker thread.
#[derive(Debug)]
pub struct ShardReceiver<T> {
    rx: Receiver<T>,
    depth: Arc<AtomicUsize>,
    dequeued: Arc<AtomicU64>,
}

/// Creates a bounded queue holding at most `capacity` unstarted jobs.
pub fn shard_queue<T>(capacity: usize) -> (ShardSender<T>, ShardReceiver<T>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    let depth = Arc::new(AtomicUsize::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let enqueued = Arc::new(AtomicU64::new(0));
    let dequeued = Arc::new(AtomicU64::new(0));
    (
        ShardSender {
            tx,
            depth: Arc::clone(&depth),
            dropped,
            enqueued,
            dequeued: Arc::clone(&dequeued),
        },
        ShardReceiver {
            rx,
            depth,
            dequeued,
        },
    )
}

impl<T> ShardSender<T> {
    /// Attempts a non-blocking push. On a full queue or a gone receiver
    /// the job is handed back in a typed [`PushError`] (and counted as
    /// dropped); the caller is expected to retry with fresher data
    /// later, or to account the job explicitly.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        // Increment before the send so the gauge can never be observed
        // below the queue's true occupancy (a post-send increment races
        // the worker's decrement and can wrap the gauge below zero).
        // The channel itself provides the job's happens-before edge.
        // ordering: gauge is monotonic bookkeeping only; no memory is
        // published through it.
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(item) {
            Ok(()) => {
                // ordering: monotonic conservation counter (enqueued
                // = dequeued + depth); nothing is published through it.
                self.enqueued.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                // ordering: undo of the optimistic increment above.
                self.depth.fetch_sub(1, Ordering::Relaxed);
                // ordering: monotonic stat counter, read only by stats
                // snapshots.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                Err(match e {
                    TrySendError::Full(item) => PushError::Full(item),
                    TrySendError::Disconnected(item) => PushError::Disconnected(item),
                })
            }
        }
    }

    /// Pushes `item`, spinning until the queue accepts it and calling
    /// `pump` between attempts so the caller can keep draining
    /// completions (a stalled queue plus an undrained completion stream
    /// must not deadlock). Fails — without consuming progress
    /// guarantees — only if the receiving side is gone, returning the
    /// job in [`PushError::Disconnected`].
    pub fn push_blocking(&self, item: T, mut pump: impl FnMut()) -> Result<(), PushError<T>> {
        // ordering: see try_push — optimistic gauge increment.
        self.depth.fetch_add(1, Ordering::Relaxed);
        let mut item = item;
        loop {
            match self.tx.try_send(item) {
                Ok(()) => {
                    // ordering: monotonic conservation counter; see
                    // try_push.
                    self.enqueued.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(TrySendError::Full(rejected)) => {
                    item = rejected;
                    pump();
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(rejected)) => {
                    // ordering: undo of the optimistic increment above.
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    // ordering: monotonic stat counter.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return Err(PushError::Disconnected(rejected));
                }
            }
        }
    }

    /// Jobs currently queued (and, transiently, mid-push). An upper
    /// bound on true occupancy; never negative.
    pub fn depth(&self) -> usize {
        // ordering: stat gauge read, no synchronization implied.
        self.depth.load(Ordering::Relaxed)
    }

    /// Push attempts rejected so far (queue full or worker gone).
    pub fn dropped(&self) -> u64 {
        // ordering: stat counter read, no synchronization implied.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Jobs accepted onto the queue so far.
    pub fn enqueued(&self) -> u64 {
        // ordering: stat counter read, no synchronization implied.
        self.enqueued.load(Ordering::Relaxed)
    }

    /// A read-only handle to this queue's gauges that outlives the
    /// sender — stats snapshots stay readable after shutdown drops the
    /// sending side.
    pub fn gauges(&self) -> ShardGauges {
        ShardGauges {
            depth: Arc::clone(&self.depth),
            dropped: Arc::clone(&self.dropped),
            enqueued: Arc::clone(&self.enqueued),
            dequeued: Arc::clone(&self.dequeued),
        }
    }
}

/// Read-only view of one shard queue's accounting: depth gauge, drop
/// counter, and the enqueued/dequeued conservation pair. Cloneable so
/// the engine can hand copies to render-time telemetry callbacks.
#[derive(Debug, Clone)]
pub struct ShardGauges {
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
    enqueued: Arc<AtomicU64>,
    dequeued: Arc<AtomicU64>,
}

impl ShardGauges {
    /// Jobs currently queued. See [`ShardSender::depth`].
    pub fn depth(&self) -> usize {
        // ordering: stat gauge read, no synchronization implied.
        self.depth.load(Ordering::Relaxed)
    }

    /// Push attempts rejected so far. See [`ShardSender::dropped`].
    pub fn dropped(&self) -> u64 {
        // ordering: stat counter read, no synchronization implied.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Jobs accepted onto the queue so far.
    pub fn enqueued(&self) -> u64 {
        // ordering: stat counter read, no synchronization implied.
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Jobs handed to the worker so far. Once every sender is dropped
    /// and the queue drained, `enqueued() == dequeued()` and
    /// `depth() == 0` — the conservation invariant the engine's
    /// shutdown property test asserts.
    pub fn dequeued(&self) -> u64 {
        // ordering: stat counter read, no synchronization implied.
        self.dequeued.load(Ordering::Relaxed)
    }
}

impl<T> ShardReceiver<T> {
    /// Blocks for the next job; `None` once every sender is dropped
    /// and the queue is drained — the worker's shutdown signal.
    pub fn recv(&self) -> Option<T> {
        let item = self.rx.recv().ok()?;
        // ordering: gauge decrement after the channel handed the job
        // over; the channel itself orders the payload.
        self.depth.fetch_sub(1, Ordering::Relaxed);
        // ordering: monotonic conservation counter, paired with the
        // sender's enqueued increment; nothing is published through it.
        self.dequeued.fetch_add(1, Ordering::Relaxed);
        Some(item)
    }

    /// The shared depth gauge, read from the consuming side. Useful for
    /// asserting a drained queue after every sender is gone.
    pub fn depth(&self) -> usize {
        // ordering: stat gauge read, no synchronization implied.
        self.depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_capacity_then_drops() {
        let (tx, rx) = shard_queue::<u32>(2);
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        // A full queue hands the job back, typed.
        assert_eq!(tx.try_push(3), Err(PushError::Full(3)));
        assert_eq!(tx.depth(), 2);
        assert_eq!(tx.dropped(), 1);
        assert_eq!(tx.enqueued(), 2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(tx.depth(), 1);
        assert!(tx.try_push(4).is_ok());
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(4));
        let gauges = tx.gauges();
        drop(tx);
        assert_eq!(rx.recv(), None);
        // Conservation at shutdown: everything accepted was handed
        // over, and the depth gauge settled back to zero.
        assert_eq!(gauges.enqueued(), 3);
        assert_eq!(gauges.dequeued(), 3);
        assert_eq!(gauges.depth(), 0);
        assert_eq!(gauges.dropped(), 1);
    }

    #[test]
    fn push_blocking_waits_for_room_and_pumps() {
        let (tx, mut rx) = shard_queue::<u32>(1);
        assert!(tx.try_push(1).is_ok());
        let mut pumped = false;
        std::thread::scope(|s| {
            let rx = &mut rx;
            s.spawn(move || {
                // Give the blocking push a moment to start spinning.
                std::thread::sleep(std::time::Duration::from_millis(10));
                assert_eq!(rx.recv(), Some(1));
            });
            assert!(tx.push_blocking(2, || pumped = true).is_ok());
        });
        assert!(pumped);
        assert_eq!(rx.recv(), Some(2));
    }

    #[test]
    fn disconnected_receiver_returns_typed_error_and_counts_a_drop() {
        let (tx, rx) = shard_queue::<u32>(1);
        drop(rx);
        assert_eq!(tx.try_push(1), Err(PushError::Disconnected(1)));
        assert_eq!(tx.push_blocking(2, || {}), Err(PushError::Disconnected(2)));
        assert!(tx.try_push(3).unwrap_err().is_disconnected());
        assert_eq!(tx.try_push(4).unwrap_err().into_inner(), 4);
        assert_eq!(tx.dropped(), 4);
        assert_eq!(tx.depth(), 0);
        // Conservation holds through the rejections: nothing was
        // accepted, so nothing is owed.
        assert_eq!(tx.enqueued(), 0);
    }
}
