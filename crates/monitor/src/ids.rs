//! Identifiers for flows, watermarked upstreams and candidate pairs.

use std::fmt;

/// Identifies one suspicious (downstream) flow in the ingest stream.
///
/// The monitor treats the id as opaque; callers typically derive it from
/// a 5-tuple hash or a capture-file index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifies one registered watermarked upstream flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpstreamId(pub u64);

impl fmt::Display for UpstreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A candidate (watermarked upstream, suspicious downstream) pair — the
/// unit of decode work and of verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId {
    /// The registered upstream.
    pub upstream: UpstreamId,
    /// The suspicious flow.
    pub flow: FlowId,
}

impl PairId {
    /// A stable 64-bit hash of the pair, used to place it on a shard.
    /// FNV-1a over both ids: cheap, deterministic across runs, and
    /// well-mixed for sequential id spaces.
    pub fn shard_hash(self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for byte in self
            .upstream
            .0
            .to_le_bytes()
            .into_iter()
            .chain(self.flow.0.to_le_bytes())
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

impl fmt::Display for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.upstream, self.flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        let pair = PairId {
            upstream: UpstreamId(3),
            flow: FlowId(17),
        };
        assert_eq!(pair.to_string(), "u3:f17");
    }

    #[test]
    fn shard_hash_is_stable_and_spreads() {
        let a = PairId {
            upstream: UpstreamId(0),
            flow: FlowId(0),
        };
        let b = PairId {
            upstream: UpstreamId(0),
            flow: FlowId(1),
        };
        assert_eq!(a.shard_hash(), a.shard_hash());
        assert_ne!(a.shard_hash(), b.shard_hash());
        // Sequential flow ids should not all land on one of two shards.
        let shards: std::collections::HashSet<u64> = (0..64)
            .map(|i| {
                PairId {
                    upstream: UpstreamId(1),
                    flow: FlowId(i),
                }
                .shard_hash()
                    % 2
            })
            .collect();
        assert_eq!(shards.len(), 2);
    }
}
