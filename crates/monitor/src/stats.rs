//! Engine statistics snapshots.

use std::fmt;

/// A point-in-time snapshot of engine counters.
///
/// Produced by [`Monitor::stats`](crate::Monitor::stats) and included
/// in the final [`MonitorReport`](crate::MonitorReport). Counters are
/// cumulative over the engine's lifetime; gauges (`flows_active`,
/// `pairs_active`, `queue_depths`) describe the moment of the snapshot.
///
/// The snapshot is a *read-through view over the engine's telemetry
/// registry* ([`Monitor::registry`](crate::Monitor::registry)): every
/// field is assembled by reading the same counter and gauge handles the
/// `/metrics` endpoint renders, so the two can never disagree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorStats {
    /// Packets accepted into flow windows.
    pub packets_ingested: u64,
    /// Packets rejected (out-of-order within their flow).
    pub packets_rejected: u64,
    /// Suspicious flows currently tracked.
    pub flows_active: usize,
    /// Suspicious flows evicted for inactivity.
    pub flows_evicted: u64,
    /// Candidate pairs currently awaiting a verdict.
    pub pairs_active: usize,
    /// Pairs latched with a `Correlated` verdict.
    pub pairs_latched: u64,
    /// Decode jobs accepted onto a shard queue.
    pub decodes_scheduled: u64,
    /// Decode jobs completed by workers.
    pub decodes_run: u64,
    /// Decode attempts dropped because the target shard queue was full
    /// (backpressure; the pair retries as more packets arrive).
    pub decodes_dropped: u64,
    /// Jobs sitting unstarted in each shard queue.
    pub queue_depths: Vec<usize>,
    /// Decode jobs accepted onto shard queues, summed across shards.
    /// Conservation: `queue_enqueued == queue_dequeued + Σ queue_depths`
    /// whenever no push is mid-flight (always true at shutdown).
    pub queue_enqueued: u64,
    /// Decode jobs handed to shard workers, summed across shards.
    pub queue_dequeued: u64,
    /// Decode panics caught in worker threads. Each panicking decode is
    /// reported as a failed (non-correlating) completion so its pair
    /// still resolves; nonzero means a correlator bug worth chasing.
    pub worker_panics: u64,
    /// Shard workers respawned by the supervisor after a death.
    pub worker_restarts: u64,
    /// Decode jobs lost with a worker death (dequeued but never
    /// completed). Conservation: `queue_dequeued == decodes_run +
    /// jobs_lost` whenever no decode is mid-flight.
    pub jobs_lost: u64,
    /// Pairs shed under sustained backpressure (terminal `Degraded`).
    pub pairs_shed: u64,
    /// Verdict events emitted so far.
    pub verdicts_emitted: u64,
}

impl MonitorStats {
    /// The engine's conservation identities, as documented on
    /// [`queue_enqueued`](MonitorStats::queue_enqueued) and
    /// [`jobs_lost`](MonitorStats::jobs_lost): accepted decode work is
    /// either still queued, completed, or counted lost. Holds whenever
    /// no push or decode is mid-flight — always true for the snapshot
    /// in a final [`MonitorReport`](crate::MonitorReport) — and is the
    /// invariant the chaos and cluster soak tests assert.
    pub fn conservation_holds(&self) -> bool {
        let depth: u64 = self.queue_depths.iter().map(|&d| d as u64).sum();
        self.queue_enqueued == self.queue_dequeued + depth
            && self.queue_dequeued == self.decodes_run + self.jobs_lost
    }
}

impl fmt::Display for MonitorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "packets: {} ingested, {} rejected",
            self.packets_ingested, self.packets_rejected
        )?;
        writeln!(
            f,
            "flows:   {} active, {} evicted",
            self.flows_active, self.flows_evicted
        )?;
        writeln!(
            f,
            "pairs:   {} active, {} latched",
            self.pairs_active, self.pairs_latched
        )?;
        writeln!(
            f,
            "decodes: {} scheduled, {} run, {} dropped (backpressure), {} panicked",
            self.decodes_scheduled, self.decodes_run, self.decodes_dropped, self.worker_panics
        )?;
        writeln!(
            f,
            "chaos:   {} restarts, {} jobs lost, {} pairs shed",
            self.worker_restarts, self.jobs_lost, self.pairs_shed
        )?;
        write!(
            f,
            "queues:  {:?} deep, {} enqueued, {} dequeued; verdicts: {}",
            self.queue_depths, self.queue_enqueued, self.queue_dequeued, self.verdicts_emitted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_checks_both_identities() {
        let stats = MonitorStats {
            queue_enqueued: 10,
            queue_dequeued: 7,
            queue_depths: vec![1, 2],
            decodes_run: 6,
            jobs_lost: 1,
            ..MonitorStats::default()
        };
        assert!(stats.conservation_holds());
        assert!(!MonitorStats {
            queue_depths: vec![2, 2],
            ..stats.clone()
        }
        .conservation_holds());
        assert!(!MonitorStats {
            jobs_lost: 0,
            ..stats
        }
        .conservation_holds());
    }
}
