//! Online multi-flow correlation engine for stepping-stone monitoring.
//!
//! The batch correlator in `stepstone-core` answers "is this recorded
//! suspicious flow a downstream flow of that watermarked upstream
//! flow?". A deployed detector faces a different shape of problem: an
//! unbounded, time-ordered stream of packets from *many* concurrent
//! flows, a handful of watermarked upstream flows to check them
//! against, and a latency budget — verdicts should appear while the
//! flows are still alive. This crate provides that layer:
//!
//! * a **flow registry** with bounded per-flow
//!   [`SlidingWindow`](stepstone_flow::SlidingWindow)s, so memory stays
//!   proportional to active flows, not stream length;
//! * a **sharded worker pool**: candidate (upstream, suspicious) pairs
//!   are pinned to a shard by pair-id hash, keeping each pair's decodes
//!   serialized while different pairs decode in parallel;
//! * **incremental scheduling**: a pair is re-decoded only after its
//!   window accrues [`decode_batch`](MonitorConfig::decode_batch) new
//!   packets, and never while an earlier decode is still in flight;
//! * **explicit backpressure**: shard queues are bounded and ingest
//!   never blocks — an attempt against a full queue is dropped and
//!   counted, and the pair retries as more packets arrive;
//! * a **live verdict stream** ([`Verdict`]) plus a counters snapshot
//!   ([`MonitorStats`]) for dashboards and tests;
//! * **supervised degradation**: dead shard workers are respawned with
//!   capped exponential backoff, lost jobs are accounted, stalled
//!   shards are flagged by a watchdog, and sustained backpressure can
//!   shed the lowest-priority pair — every giving-up surfaces as an
//!   explicit [`Verdict::Degraded`], never a silently dropped pair.
//!
//! # Example
//!
//! ```
//! use stepstone_core::{Algorithm, WatermarkCorrelator};
//! use stepstone_flow::{Flow, TimeDelta, Timestamp};
//! use stepstone_monitor::{FlowId, Monitor, MonitorConfig, UpstreamId};
//! use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The defender watermarked an upstream flow …
//! let original = Flow::from_timestamps((0..200).map(Timestamp::from_secs))?;
//! let marker = IpdWatermarker::new(WatermarkKey::new(1), WatermarkParams::small());
//! let watermark = Watermark::random(8, &mut WatermarkKey::new(2).rng(1));
//! let marked = marker.embed(&original, &watermark)?;
//! let correlator = WatermarkCorrelator::new(
//!     marker,
//!     watermark,
//!     TimeDelta::from_secs(2),
//!     Algorithm::GreedyPlus,
//! );
//!
//! // … and streams suspicious traffic through the monitor.
//! let mut monitor = Monitor::new(MonitorConfig::default());
//! monitor.register_upstream(UpstreamId(0), correlator.bind(&original, &marked)?);
//! for &packet in marked.packets() {
//!     monitor.ingest(FlowId(7), packet);
//! }
//! let report = monitor.finish();
//! assert!(report.verdicts.iter().any(|v| v.is_correlated()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod fault;
mod ids;
mod metrics;
#[doc(hidden)]
pub mod queue;
mod stats;
mod supervisor;
mod verdict;

pub use config::MonitorConfig;
pub use engine::{Monitor, MonitorReport};
pub use fault::{DecodeFault, FaultHook};
pub use ids::{FlowId, PairId, UpstreamId};
pub use queue::PushError;
pub use stats::MonitorStats;
pub use verdict::{DegradeReason, TerminalKind, Verdict};
