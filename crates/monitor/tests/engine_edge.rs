//! Shutdown and backpressure edge cases for the engine: a flush that
//! starts with full shard queues, drop-count conservation, and
//! degenerate (empty/undersized) inputs.

use std::collections::BTreeMap;

use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_core::{Algorithm, WatermarkCorrelator};
use stepstone_flow::{Flow, Packet, TimeDelta, Timestamp};
use stepstone_monitor::{FlowId, Monitor, MonitorConfig, PairId, UpstreamId, Verdict};
use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

fn interactive(n: usize, seed: u64) -> Flow {
    SessionGenerator::new(InteractiveProfile::ssh()).generate(
        n,
        Timestamp::ZERO,
        &mut Seed::new(seed).rng(0),
    )
}

fn attack(marked: &Flow, seed: u64) -> Flow {
    AdversaryPipeline::new()
        .then(UniformPerturbation::new(TimeDelta::from_secs(2)))
        .then(ChaffInjector::new(ChaffModel::Poisson { rate: 0.5 }))
        .apply(marked, Seed::new(seed))
}

/// A monitor with one registered upstream built from `n` packets.
fn monitor_with_upstream(config: MonitorConfig, n: usize, seed: u64) -> (Monitor, Flow) {
    let original = interactive(n, seed);
    let marker = IpdWatermarker::new(WatermarkKey::new(seed ^ 0xABC), WatermarkParams::small());
    let watermark = Watermark::random(8, &mut WatermarkKey::new(seed).rng(1));
    let marked = marker.embed(&original, &watermark).unwrap();
    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(2),
        Algorithm::GreedyPlus,
    );
    let mut monitor = Monitor::new(config);
    monitor.register_upstream(UpstreamId(0), correlator.bind(&original, &marked).unwrap());
    (monitor, marked)
}

/// Asserts every `(upstream, flow)` pair got exactly one terminal
/// verdict (`Correlated` or `Cleared`).
fn assert_one_terminal_verdict_per_pair(verdicts: &[Verdict], expected_pairs: usize) {
    let mut per_pair: BTreeMap<PairId, usize> = BTreeMap::new();
    for v in verdicts {
        if let Some(pair) = v.pair() {
            *per_pair.entry(pair).or_default() += 1;
        }
    }
    assert_eq!(
        per_pair.len(),
        expected_pairs,
        "pair coverage mismatch: {per_pair:?}"
    );
    for (pair, count) in per_pair {
        assert_eq!(count, 1, "pair {pair:?} got {count} terminal verdicts");
    }
}

/// Shutdown with every decode still pending and room for only one job
/// per shard: `decode_batch` is set above the stream length so ingest
/// schedules nothing, then `finish` must flush one decode per pair
/// through a single-slot queue via blocking pushes — without losing a
/// pair, leaking a queue slot, or deadlocking on the completion stream.
#[test]
fn finish_flushes_every_pair_through_full_single_slot_queues() {
    const FLOWS: usize = 8;
    let (mut monitor, marked) = monitor_with_upstream(
        MonitorConfig::default()
            .with_shards(2)
            .with_queue_capacity(1)
            .with_decode_batch(1_000_000),
        200,
        7,
    );
    for i in 0..FLOWS {
        let flow = attack(&marked, 100 + i as u64);
        for &p in flow.packets() {
            monitor.ingest(FlowId(i as u64), p);
        }
    }
    // Nothing ran during ingest: the whole workload lands on finish().
    let before = monitor.stats();
    assert_eq!(before.decodes_scheduled, 0, "{before}");
    assert_eq!(before.pairs_active, FLOWS);

    let report = monitor.finish();
    assert_one_terminal_verdict_per_pair(&report.verdicts, FLOWS);
    let stats = report.stats;
    assert_eq!(
        stats.decodes_scheduled, stats.decodes_run,
        "every accepted flush job must complete: {stats}"
    );
    assert_eq!(stats.decodes_scheduled, FLOWS as u64);
    assert_eq!(stats.queue_depths, vec![0, 0], "queues must drain: {stats}");
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.verdicts_emitted, report.verdicts.len() as u64);
}

/// Heavy backpressure: drops are counted, but accepted work is
/// conserved — after `finish`, scheduled = run, the queues are empty,
/// and no pair is left without a verdict.
#[test]
fn drop_accounting_is_conserved_under_backpressure() {
    const FLOWS: usize = 6;
    let (mut monitor, marked) = monitor_with_upstream(
        MonitorConfig::default()
            .with_shards(1)
            .with_queue_capacity(1)
            .with_decode_batch(1),
        200,
        9,
    );
    let mut total_packets = 0u64;
    for i in 0..FLOWS {
        let flow = attack(&marked, 300 + i as u64);
        total_packets += flow.len() as u64;
        for &p in flow.packets() {
            monitor.ingest(FlowId(i as u64), p);
        }
    }
    let mid = monitor.stats();
    assert!(mid.decodes_dropped > 0, "expected drops: {mid}");
    assert_eq!(mid.packets_ingested, total_packets);

    let report = monitor.finish();
    assert_one_terminal_verdict_per_pair(&report.verdicts, FLOWS);
    let stats = report.stats;
    assert_eq!(stats.decodes_scheduled, stats.decodes_run, "{stats}");
    assert_eq!(stats.queue_depths, vec![0], "{stats}");
    // Drops never shrink across the flush (finish blocks, not drops).
    assert!(stats.decodes_dropped >= mid.decodes_dropped);
    assert_eq!(stats.worker_panics, 0);
}

/// `finish` on an engine that saw no packets (and one that saw no
/// upstreams) returns an empty, internally consistent report.
#[test]
fn finish_on_idle_engines_is_empty_and_consistent() {
    let report = Monitor::new(MonitorConfig::default()).finish();
    assert!(report.verdicts.is_empty());
    assert_eq!(report.stats.decodes_scheduled, 0);
    assert_eq!(report.stats.queue_depths, vec![0]);

    let (monitor, _) = monitor_with_upstream(MonitorConfig::default().with_shards(3), 150, 13);
    let report = monitor.finish();
    assert!(report.verdicts.is_empty(), "{:?}", report.verdicts);
    assert_eq!(report.stats.queue_depths, vec![0, 0, 0]);

    // No upstreams registered: flows are tracked but produce no pairs.
    let mut monitor = Monitor::new(MonitorConfig::default());
    for i in 0..50 {
        monitor.ingest(FlowId(1), Packet::new(Timestamp::from_secs(i), 64));
    }
    let report = monitor.finish();
    assert!(report.verdicts.is_empty());
    assert_eq!(report.stats.packets_ingested, 50);
    assert_eq!(report.stats.pairs_active, 0);
}

/// A flow far shorter than the upstream can never host a complete
/// matching; the engine must not decode it, yet its pair still
/// resolves to `Cleared { decodes: 0 }` at shutdown.
#[test]
fn undersized_flow_clears_without_decoding() {
    let (mut monitor, marked) =
        monitor_with_upstream(MonitorConfig::default().with_decode_batch(1), 300, 17);
    let short = attack(&marked, 23);
    for &p in short.packets().iter().take(20) {
        monitor.ingest(FlowId(0), p);
    }
    let report = monitor.finish();
    assert_eq!(report.stats.decodes_scheduled, 0, "{}", report.stats);
    let pair = PairId {
        upstream: UpstreamId(0),
        flow: FlowId(0),
    };
    assert!(
        report.verdicts.iter().any(|v| matches!(
            v,
            Verdict::Cleared { pair: p, decodes: 0, .. } if *p == pair
        )),
        "expected an undecoded Cleared verdict: {:?}",
        report.verdicts
    );
}

/// Eviction racing an in-flight decode: the orphaned pair's completion
/// still produces exactly one terminal verdict, and shutdown leaves no
/// orphan behind.
#[test]
fn eviction_with_inflight_decode_still_resolves_the_pair() {
    let (mut monitor, marked) = monitor_with_upstream(
        MonitorConfig::default()
            .with_idle_timeout(TimeDelta::from_secs(30))
            .with_decode_batch(1),
        200,
        29,
    );
    let flow = attack(&marked, 31);
    let mut last = Timestamp::ZERO;
    for &p in flow.packets() {
        monitor.ingest(FlowId(3), p);
        last = p.timestamp();
    }
    // Evict immediately after ingest: a decode scheduled by the last
    // packets is likely still in flight, exercising the orphan path.
    let evicted = monitor.evict_idle(last + TimeDelta::from_secs(60));
    assert_eq!(evicted, 1);
    let report = monitor.finish();
    let pair = PairId {
        upstream: UpstreamId(0),
        flow: FlowId(3),
    };
    assert_eq!(
        report
            .verdicts
            .iter()
            .filter(|v| v.pair() == Some(pair))
            .count(),
        1,
        "exactly one terminal verdict for the evicted pair: {:?}",
        report.verdicts
    );
    assert_eq!(report.stats.flows_evicted, 1);
    assert_eq!(report.stats.decodes_scheduled, report.stats.decodes_run);
}

/// The graceful-degradation ladder: under `--decode robust` a pair
/// whose erasure demand exceeds the budget must never end `Cleared` —
/// the shutdown sweep turns the would-be clean negative into
/// `Degraded(ErasureBudget)`, while a genuinely matching (if lossy)
/// flow still correlates.
#[test]
fn blown_erasure_budget_degrades_instead_of_clearing() {
    use stepstone_core::DecodeOptions;
    use stepstone_monitor::DegradeReason;

    let n = 400;
    let original = interactive(n, 11);
    let marker = IpdWatermarker::new(WatermarkKey::new(11 ^ 0xABC), WatermarkParams::small());
    let watermark = Watermark::random(8, &mut WatermarkKey::new(11).rng(1));
    let marked = marker.embed(&original, &watermark).unwrap();
    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(2),
        Algorithm::GreedyPlus,
    )
    .with_decode(DecodeOptions::robust(40));
    let mut monitor = Monitor::new(MonitorConfig::default().with_shards(1));
    monitor.register_upstream(UpstreamId(0), correlator.bind(&original, &marked).unwrap());

    // Flow 0: the marked flow with a 30-packet burst deleted. The burst
    // spans far more than Δ, so the affected slots have genuinely empty
    // matching sets — erasures within budget; the pair must still
    // correlate on the surviving bits.
    let lossy = Flow::from_packets(
        marked
            .packets()
            .iter()
            .enumerate()
            .filter(|(i, _)| !(100..130).contains(i))
            .map(|(_, &p)| p),
    )
    .unwrap();
    for &p in lossy.packets() {
        monitor.ingest(FlowId(0), p);
    }
    // Flow 1: an unrelated flow — its erasure demand dwarfs the budget.
    let decoy = interactive(n + 40, 999);
    for &p in decoy.packets() {
        monitor.ingest(FlowId(1), p);
    }

    let report = monitor.finish();
    assert_one_terminal_verdict_per_pair(&report.verdicts, 2);
    let mut correlated = 0;
    let mut degraded = 0;
    for v in &report.verdicts {
        match v {
            Verdict::Correlated { pair, .. } => {
                assert_eq!(pair.flow, FlowId(0), "only the lossy copy correlates");
                correlated += 1;
            }
            Verdict::Degraded { pair, reason } => {
                assert_eq!(pair.flow, FlowId(1), "only the decoy degrades");
                assert!(
                    matches!(reason, DegradeReason::ErasureBudget { erasures, .. } if *erasures > 40),
                    "unexpected degrade reason {reason}"
                );
                degraded += 1;
            }
            Verdict::Cleared { pair, .. } => {
                panic!("pair {pair:?} cleared despite a blown erasure budget")
            }
            Verdict::Evicted { .. } => {}
        }
    }
    assert_eq!((correlated, degraded), (1, 1), "{:?}", report.verdicts);
}
