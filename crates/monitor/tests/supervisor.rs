//! Survival tests for the supervised engine: worker kills, contained
//! panics, stalls, and load shedding all end with the books balanced
//! and **every registered pair holding exactly one terminal verdict**
//! — the engine never silently drops a pair, no matter what dies.
//!
//! Faults are injected through [`FaultHook`] oracles written inline
//! (the `stepstone-chaos` crate layers seeded schedules on top of the
//! same hook, but depends on this crate, so these tests stay
//! hook-level).

use std::collections::HashMap;
use std::time::Duration;

use rand::Rng;
use stepstone_core::{Algorithm, WatermarkCorrelator};
use stepstone_flow::{Flow, TimeDelta, Timestamp};
use stepstone_monitor::{
    DecodeFault, FaultHook, FlowId, Monitor, MonitorConfig, MonitorReport, PairId, UpstreamId,
    Verdict,
};
use stepstone_traffic::Seed;
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

/// A small scheme so each decode stays cheap: 4 bits, r = 1.
fn tiny_params() -> WatermarkParams {
    WatermarkParams {
        bits: 4,
        redundancy: 1,
        offset: 1,
        adjustment: TimeDelta::from_millis(800),
        threshold: 1,
    }
}

/// A deterministic flow from a seed with irregular spacing.
fn seeded_flow(seed: u64, packets: usize) -> Flow {
    let mut rng = Seed::new(seed).rng(0);
    let mut t = 0i64;
    let timestamps = (0..packets).map(|_| {
        t += rng.gen_range(50_000..2_000_000);
        Timestamp::from_micros(t)
    });
    Flow::from_timestamps(timestamps).unwrap()
}

/// Builds a monitor with one registered upstream and returns the
/// watermarked flow to feed it.
fn marked_monitor(seed: u64, config: MonitorConfig) -> (Monitor, Flow) {
    let original = seeded_flow(seed, 60);
    let marker = IpdWatermarker::new(WatermarkKey::new(seed ^ 77), tiny_params());
    let watermark = Watermark::random(4, &mut WatermarkKey::new(seed).rng(1));
    let marked = marker.embed(&original, &watermark).unwrap();
    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(3),
        Algorithm::GreedyPlus,
    );
    let mut monitor = Monitor::new(config.with_window_capacity(marked.len()));
    monitor.register_upstream(UpstreamId(0), correlator.bind(&original, &marked).unwrap());
    (monitor, marked)
}

/// Asserts every registered pair got exactly one terminal verdict
/// (`Correlated`, `Cleared`, or `Degraded`) across the whole run.
fn assert_one_terminal_per_pair(all_verdicts: &[Verdict], flows: usize) {
    let mut terminal: HashMap<PairId, usize> = HashMap::new();
    for verdict in all_verdicts {
        if let Some(pair) = verdict.pair() {
            *terminal.entry(pair).or_insert(0) += 1;
        }
    }
    for flow in 0..flows {
        let pair = PairId {
            upstream: UpstreamId(0),
            flow: FlowId(flow as u64),
        };
        assert_eq!(
            terminal.get(&pair),
            Some(&1),
            "pair {pair} must have exactly one terminal verdict; got {terminal:?}"
        );
    }
    assert_eq!(terminal.len(), flows, "no verdicts for unknown pairs");
}

/// Feeds `flows` copies of `marked` into the monitor, draining (and
/// collecting) verdicts as it goes, then finishes.
fn run_to_report(
    mut monitor: Monitor,
    marked: &Flow,
    flows: usize,
) -> (Vec<Verdict>, MonitorReport) {
    let mut live = Vec::new();
    for flow in 0..flows {
        for &packet in marked.packets() {
            monitor.ingest(FlowId(flow as u64), packet);
        }
        live.extend(monitor.drain_verdicts());
    }
    let report = monitor.finish();
    (live, report)
}

#[test]
fn killed_worker_is_restarted_and_no_pair_is_lost() {
    // The very first decode kills its worker; everything after runs
    // clean. The supervisor must bring the shard back and the engine
    // must still resolve every pair.
    let hook = FaultHook::new(|seq, _pair| {
        if seq == 0 {
            DecodeFault::KillWorker
        } else {
            DecodeFault::None
        }
    });
    let config = MonitorConfig::default()
        .with_shards(1)
        .with_decode_batch(8)
        .with_fault_hook(hook)
        .with_restart_backoff(Duration::from_millis(1), Duration::from_millis(10));
    let (monitor, marked) = marked_monitor(42, config);
    let registry = monitor.registry();
    let (live, report) = run_to_report(monitor, &marked, 3);

    let stats = &report.stats;
    assert!(
        stats.worker_restarts >= 1,
        "the killed worker must be respawned: {stats}"
    );
    assert_eq!(
        stats.jobs_lost, 1,
        "exactly the killed decode is lost: {stats}"
    );
    // Conservation with losses: every dequeued job completed or died.
    assert_eq!(
        stats.queue_dequeued,
        stats.decodes_run + stats.jobs_lost,
        "{stats}"
    );
    assert_eq!(stats.queue_depths.iter().sum::<usize>(), 0, "{stats}");

    let mut all = live;
    all.extend(report.verdicts.iter().cloned());
    assert_one_terminal_per_pair(&all, 3);

    // The restart is visible on the wire format the dashboards scrape.
    let rendered = registry.render_prometheus();
    let restarts_line = rendered
        .lines()
        .find(|l| l.starts_with("monitor_worker_restarts_total"))
        .expect("restart counter must be exported");
    let value: f64 = restarts_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(value >= 1.0, "{restarts_line}");
}

#[test]
fn contained_panic_resolves_the_pair_without_a_restart() {
    // The first decode panics *inside* containment: the worker
    // survives, the decode reports as failed, and no restart happens.
    let hook = FaultHook::new(|seq, _pair| {
        if seq == 0 {
            DecodeFault::Panic
        } else {
            DecodeFault::None
        }
    });
    let config = MonitorConfig::default()
        .with_shards(1)
        .with_decode_batch(8)
        .with_fault_hook(hook);
    let (monitor, marked) = marked_monitor(7, config);
    let (live, report) = run_to_report(monitor, &marked, 2);

    let stats = &report.stats;
    assert_eq!(stats.worker_panics, 1, "{stats}");
    assert_eq!(
        stats.worker_restarts, 0,
        "contained panics keep the worker: {stats}"
    );
    assert_eq!(stats.jobs_lost, 0, "{stats}");
    assert_eq!(stats.queue_dequeued, stats.decodes_run, "{stats}");

    let mut all = live;
    all.extend(report.verdicts.iter().cloned());
    assert_one_terminal_per_pair(&all, 2);
}

#[test]
fn repeated_kills_still_converge() {
    // Every fourth decode kills the worker — the respawn loop must keep
    // up and shutdown must still drain every queue.
    let hook = FaultHook::new(|seq, _pair| {
        if seq.is_multiple_of(4) {
            DecodeFault::KillWorker
        } else {
            DecodeFault::None
        }
    });
    let config = MonitorConfig::default()
        .with_shards(2)
        .with_decode_batch(4)
        .with_fault_hook(hook)
        .with_restart_backoff(Duration::from_millis(1), Duration::from_millis(5));
    let (monitor, marked) = marked_monitor(99, config);
    let (live, report) = run_to_report(monitor, &marked, 4);

    let stats = &report.stats;
    assert!(stats.worker_restarts >= 1, "{stats}");
    assert_eq!(
        stats.queue_dequeued,
        stats.decodes_run + stats.jobs_lost,
        "{stats}"
    );
    assert_eq!(stats.queue_depths.iter().sum::<usize>(), 0, "{stats}");

    let mut all = live;
    all.extend(report.verdicts.iter().cloned());
    assert_one_terminal_per_pair(&all, 4);
}

#[test]
fn sleepy_workers_with_watchdog_still_terminate() {
    // Slow decodes (far beyond the stall timeout) with the watchdog
    // armed: the run must terminate — not hang in finish — and every
    // pair must end with exactly one terminal verdict, whether decoded
    // or degraded.
    let hook = FaultHook::new(|_seq, _pair| DecodeFault::Sleep(20_000));
    let config = MonitorConfig::default()
        .with_shards(1)
        .with_queue_capacity(2)
        .with_decode_batch(4)
        .with_fault_hook(hook)
        .with_stall_timeout(Duration::from_millis(5));
    let (monitor, marked) = marked_monitor(3, config);
    let (live, report) = run_to_report(monitor, &marked, 3);

    let stats = &report.stats;
    assert_eq!(
        stats.queue_dequeued,
        stats.decodes_run + stats.jobs_lost,
        "{stats}"
    );
    assert_eq!(stats.queue_depths.iter().sum::<usize>(), 0, "{stats}");

    let mut all = live;
    all.extend(report.verdicts.iter().cloned());
    assert_one_terminal_per_pair(&all, 3);
}

#[test]
fn sustained_backpressure_sheds_the_smallest_pair() {
    // One shard, a one-slot queue, slow decodes, and a *short* upstream
    // (24 packets), so every suspicious flow starts attempting a decode
    // per packet as soon as its window holds 24. Interleaving three
    // long flows keeps several pairs competing for the single queue
    // slot while the worker sleeps — the drop streak is guaranteed to
    // pass the shed threshold, and the smallest-window pair (a 12-packet
    // decoy that can never reach min_window) is the designated victim.
    let original = seeded_flow(13, 24);
    let marker = IpdWatermarker::new(WatermarkKey::new(13 ^ 77), tiny_params());
    let watermark = Watermark::random(4, &mut WatermarkKey::new(13).rng(1));
    let marked = marker.embed(&original, &watermark).unwrap();
    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(3),
        Algorithm::GreedyPlus,
    );
    let hook = FaultHook::new(|_seq, _pair| DecodeFault::Sleep(5_000));
    let mut monitor = Monitor::new(
        MonitorConfig::default()
            .with_window_capacity(128)
            .with_shards(1)
            .with_queue_capacity(1)
            .with_decode_batch(1)
            .with_fault_hook(hook)
            .with_shed_after_drops(8),
    );
    monitor.register_upstream(UpstreamId(0), correlator.bind(&original, &marked).unwrap());

    // The decoy first: 12 packets < the 24-packet upstream, so its pair
    // can never decode and stays the smallest unresolved window.
    let decoy = seeded_flow(500, 12);
    for &packet in decoy.packets() {
        monitor.ingest(FlowId(900), packet);
    }
    // Three long suspicious flows, interleaved packet by packet.
    let suspects: Vec<Flow> = (0..3).map(|i| seeded_flow(600 + i, 80)).collect();
    let mut live = Vec::new();
    for k in 0..80 {
        for (i, suspect) in suspects.iter().enumerate() {
            monitor.ingest(FlowId(i as u64), suspect.packets()[k]);
        }
    }
    live.extend(monitor.drain_verdicts());
    let report = monitor.finish();

    let stats = &report.stats;
    assert!(stats.decodes_dropped > 0, "backpressure expected: {stats}");
    assert!(stats.pairs_shed >= 1, "shedding must trigger: {stats}");
    let mut all = live;
    all.extend(report.verdicts.iter().cloned());
    // The decoy — strictly the smallest window when the streak first
    // trips — is the first pair shed.
    assert!(
        all.iter().any(|v| v.is_degraded()
            && v.pair()
                == Some(PairId {
                    upstream: UpstreamId(0),
                    flow: FlowId(900)
                })),
        "the decoy pair must be shed as Degraded"
    );
    // Every pair — shed ones included — has exactly one terminal
    // verdict.
    let mut terminal: HashMap<PairId, usize> = HashMap::new();
    for verdict in &all {
        if let Some(pair) = verdict.pair() {
            *terminal.entry(pair).or_insert(0) += 1;
        }
    }
    assert!(terminal.values().all(|&n| n == 1), "{terminal:?}");
    assert_eq!(terminal.len(), 4, "three suspicious flows plus the decoy");
}
