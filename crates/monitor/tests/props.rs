//! Satellite property: replaying any interleaving of two recorded
//! flows through the monitor yields the same verdict as the batch
//! correlator, provided the windows are large enough to hold the
//! flows.

use proptest::prelude::*;
use rand::{Rng, RngCore};
use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_core::{Algorithm, BackendKind, WatermarkCorrelator};
use stepstone_flow::{Flow, TimeDelta, Timestamp};
use stepstone_monitor::{FlowId, Monitor, MonitorConfig, PairId, UpstreamId, Verdict};
use stepstone_traffic::Seed;
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

/// A small scheme so each decode stays cheap: 4 bits, r = 1.
fn tiny_params() -> WatermarkParams {
    WatermarkParams {
        bits: 4,
        redundancy: 1,
        offset: 1,
        adjustment: TimeDelta::from_millis(800),
        threshold: 1,
    }
}

/// A deterministic flow from a seed: ~120 packets, irregular spacing.
fn seeded_flow(seed: u64) -> Flow {
    let mut rng = Seed::new(seed).rng(0);
    let mut t = 0i64;
    let packets = (0..120).map(|_| {
        t += rng.gen_range(50_000..2_000_000);
        Timestamp::from_micros(t)
    });
    Flow::from_timestamps(packets).unwrap()
}

/// Interleaves two flows into one event stream, preserving each flow's
/// internal packet order but choosing the cross-flow order by coin
/// flips from `seed`.
fn interleave(a: &Flow, b: &Flow, seed: u64) -> Vec<(FlowId, stepstone_flow::Packet)> {
    let mut rng = Seed::new(seed).rng(9);
    let mut events = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = if i == a.len() {
            false
        } else if j == b.len() {
            true
        } else {
            rng.next_u32() & 1 == 0
        };
        if take_a {
            events.push((FlowId(0), a[i]));
            i += 1;
        } else {
            events.push((FlowId(1), b[j]));
            j += 1;
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_verdicts_match_batch_correlator(
        flow_seed in 0u64..5000,
        attack_seed in 0u64..5000,
        interleave_seed in 0u64..5000,
        chaff in 0.0f64..2.0,
        shards in 1usize..4,
    ) {
        let original = seeded_flow(flow_seed);
        let marker = IpdWatermarker::new(WatermarkKey::new(flow_seed ^ 77), tiny_params());
        let watermark = Watermark::random(4, &mut WatermarkKey::new(flow_seed).rng(1));
        let marked = marker.embed(&original, &watermark).unwrap();
        let delta = TimeDelta::from_secs(3);
        let attack = |base: &Flow, seed: u64| {
            AdversaryPipeline::new()
                .then(UniformPerturbation::new(delta))
                .then(ChaffInjector::new(ChaffModel::Poisson { rate: chaff }))
                .apply(base, Seed::new(seed))
        };
        // Two recorded flows: a true downstream of the watermarked flow
        // and an unrelated decoy.
        let downstream = attack(&marked, attack_seed);
        let decoy = attack(&seeded_flow(flow_seed ^ 0xDEAD), attack_seed ^ 1);

        let correlator =
            WatermarkCorrelator::new(marker, watermark.clone(), delta, Algorithm::GreedyPlus);
        let prepared = correlator.prepare(&original, &marked).unwrap();
        let expected = [prepared.correlate(&downstream), prepared.correlate(&decoy)];

        // Window big enough for either flow; decode_batch large enough
        // that the one decode per pair happens at the flush, over the
        // complete window — the regime where streaming must equal batch.
        let mut monitor = Monitor::new(
            MonitorConfig::default()
                .with_window_capacity(downstream.len().max(decoy.len()))
                .with_decode_batch(usize::MAX)
                .with_shards(shards),
        );
        monitor.register_upstream(UpstreamId(0), correlator.bind(&original, &marked).unwrap());
        for (flow, packet) in interleave(&downstream, &decoy, interleave_seed) {
            prop_assert!(monitor.ingest(flow, packet));
        }
        let report = monitor.finish();

        for (k, expect) in expected.iter().enumerate() {
            let pair = PairId { upstream: UpstreamId(0), flow: FlowId(k as u64) };
            let verdicts: Vec<&Verdict> =
                report.verdicts.iter().filter(|v| v.pair() == Some(pair)).collect();
            prop_assert_eq!(verdicts.len(), 1, "one terminal verdict per pair");
            match *verdicts[0] {
                Verdict::Correlated { hamming, .. } => {
                    prop_assert!(expect.correlated);
                    prop_assert_eq!(Some(hamming), expect.hamming);
                }
                Verdict::Cleared { hamming, decodes, .. } => {
                    prop_assert!(!expect.correlated);
                    prop_assert_eq!(hamming, expect.hamming);
                    prop_assert_eq!(decodes, 1);
                }
                Verdict::Evicted { .. } => prop_assert!(false, "no eviction configured"),
                Verdict::Degraded { .. } => prop_assert!(false, "no chaos configured"),
            }
        }
        prop_assert_eq!(report.stats.decodes_run, 2);
        prop_assert_eq!(report.stats.packets_ingested,
            (downstream.len() + decoy.len()) as u64);
    }

    /// The seam contract, online: for *every* backend, the monitor's
    /// terminal verdict over a full window equals that backend's batch
    /// decode of the same flows — the engine adds scheduling, not
    /// decisions.
    #[test]
    fn every_backend_streams_equal_to_batch(
        flow_seed in 0u64..5000,
        attack_seed in 0u64..5000,
        interleave_seed in 0u64..5000,
        chaff in 0.0f64..2.0,
    ) {
        let original = seeded_flow(flow_seed);
        let delta = TimeDelta::from_secs(3);
        let attack = |base: &Flow, seed: u64| {
            AdversaryPipeline::new()
                .then(UniformPerturbation::new(delta))
                .then(ChaffInjector::new(ChaffModel::Poisson { rate: chaff }))
                .apply(base, Seed::new(seed))
        };
        for kind in BackendKind::ALL {
            let marker = IpdWatermarker::new(WatermarkKey::new(flow_seed ^ 77), tiny_params());
            let watermark = Watermark::random(4, &mut WatermarkKey::new(flow_seed).rng(1));
            let marked = marker.embed(&original, &watermark).unwrap();
            let downstream = attack(&marked, attack_seed);
            let decoy = attack(&seeded_flow(flow_seed ^ 0xDEAD), attack_seed ^ 1);
            let correlator =
                WatermarkCorrelator::new(marker, watermark, delta, Algorithm::GreedyPlus);
            let bound = correlator.bind_backend(kind, chaff, &original, &marked).unwrap();
            prop_assert_eq!(bound.backend(), kind);
            let expected = [bound.correlate(&downstream), bound.correlate(&decoy)];

            let mut monitor = Monitor::new(
                MonitorConfig::default()
                    .with_window_capacity(downstream.len().max(decoy.len()))
                    .with_decode_batch(usize::MAX)
                    .with_shards(2),
            );
            monitor.register_upstream(UpstreamId(0), bound);
            for (flow, packet) in interleave(&downstream, &decoy, interleave_seed) {
                prop_assert!(monitor.ingest(flow, packet));
            }
            let report = monitor.finish();

            for (k, expect) in expected.iter().enumerate() {
                let pair = PairId { upstream: UpstreamId(0), flow: FlowId(k as u64) };
                let verdicts: Vec<&Verdict> =
                    report.verdicts.iter().filter(|v| v.pair() == Some(pair)).collect();
                prop_assert_eq!(verdicts.len(), 1, "one terminal verdict per pair");
                match *verdicts[0] {
                    Verdict::Correlated { hamming, .. } => {
                        prop_assert!(expect.correlated, "{} must match batch", kind);
                        // Passive backends have no watermark distance;
                        // the verdict then carries 0.
                        prop_assert_eq!(hamming, expect.hamming.unwrap_or(0));
                    }
                    Verdict::Cleared { hamming, .. } => {
                        prop_assert!(!expect.correlated, "{} must match batch", kind);
                        prop_assert_eq!(hamming, expect.hamming);
                    }
                    Verdict::Evicted { .. } => prop_assert!(false, "no eviction configured"),
                    Verdict::Degraded { .. } => prop_assert!(false, "no chaos configured"),
                }
            }
        }
    }
}
