//! Satellite property: shard-queue drop-counter conservation.
//!
//! Every decode attempt either lands on a shard queue (`enqueued`),
//! or is rejected and counted (`dropped`); everything enqueued is
//! eventually handed to a worker (`dequeued`) or still sitting in the
//! queue (`depth`). After [`Monitor::finish`] the queues are drained
//! and the senders dropped, so the books must balance exactly:
//!
//! ```text
//! enqueued == dequeued + Σ depth      (and Σ depth == 0)
//! decodes_scheduled == enqueued
//! decodes_run == dequeued
//! ```
//!
//! The same numbers are exposed per shard on the telemetry registry as
//! `monitor_shard_queue_{enqueued,dequeued,dropped}_total` and
//! `monitor_shard_queue_depth`, so the test also re-derives the totals
//! from the rendered `/metrics` text and checks they agree with the
//! [`MonitorStats`] snapshot.

use proptest::prelude::*;
use rand::Rng;
use stepstone_core::{Algorithm, WatermarkCorrelator};
use stepstone_flow::{Flow, TimeDelta, Timestamp};
use stepstone_monitor::{FlowId, Monitor, MonitorConfig, UpstreamId};
use stepstone_traffic::Seed;
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

/// A small scheme so each decode stays cheap: 4 bits, r = 1.
fn tiny_params() -> WatermarkParams {
    WatermarkParams {
        bits: 4,
        redundancy: 1,
        offset: 1,
        adjustment: TimeDelta::from_millis(800),
        threshold: 1,
    }
}

/// A deterministic flow from a seed with irregular spacing.
fn seeded_flow(seed: u64, packets: usize) -> Flow {
    let mut rng = Seed::new(seed).rng(0);
    let mut t = 0i64;
    let timestamps = (0..packets).map(|_| {
        t += rng.gen_range(50_000..2_000_000);
        Timestamp::from_micros(t)
    });
    Flow::from_timestamps(timestamps).unwrap()
}

/// Sums every series of one metric family in Prometheus text output.
fn family_total(rendered: &str, family: &str) -> u64 {
    rendered
        .lines()
        .filter(|l| l.starts_with(family) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn queue_books_balance_at_shutdown(
        flow_seed in 0u64..5000,
        shards in 1usize..4,
        queue_capacity in 1usize..3,
        decode_batch in 1usize..8,
        flows in 1usize..4,
    ) {
        let original = seeded_flow(flow_seed, 60);
        let marker = IpdWatermarker::new(WatermarkKey::new(flow_seed ^ 77), tiny_params());
        let watermark = Watermark::random(4, &mut WatermarkKey::new(flow_seed).rng(1));
        let marked = marker.embed(&original, &watermark).unwrap();
        let correlator = WatermarkCorrelator::new(
            marker,
            watermark,
            TimeDelta::from_secs(3),
            Algorithm::GreedyPlus,
        );

        // Tiny queues + small batches force backpressure drops, the
        // regime where sloppy accounting would show.
        let mut monitor = Monitor::new(
            MonitorConfig::default()
                .with_window_capacity(marked.len())
                .with_decode_batch(decode_batch)
                .with_queue_capacity(queue_capacity)
                .with_shards(shards),
        );
        monitor
            .register_upstream(UpstreamId(0), correlator.bind(&original, &marked).unwrap());
        for flow in 0..flows {
            for &packet in marked.packets() {
                monitor.ingest(FlowId(flow as u64), packet);
            }
        }
        let registry = monitor.registry();
        let report = monitor.finish();
        let stats = &report.stats;

        // Conservation at shutdown: queues drained, every accepted job
        // handed over, every handover completed.
        prop_assert_eq!(
            stats.queue_depths.iter().sum::<usize>(), 0,
            "queues must drain: {}", stats
        );
        prop_assert_eq!(stats.queue_enqueued, stats.queue_dequeued, "{}", stats);
        prop_assert_eq!(stats.decodes_scheduled, stats.queue_enqueued, "{}", stats);
        // Every dequeued job either completed or died with a worker;
        // without a fault hook nothing dies, so jobs_lost must be 0 and
        // the classic `decodes_run == dequeued` form falls out.
        prop_assert_eq!(
            stats.decodes_run + stats.jobs_lost, stats.queue_dequeued,
            "{}", stats
        );
        prop_assert_eq!(stats.jobs_lost, 0, "{}", stats);
        prop_assert_eq!(stats.worker_restarts, 0, "{}", stats);

        // The same books, re-read from the rendered exposition text.
        let rendered = registry.render_prometheus();
        prop_assert_eq!(
            family_total(&rendered, "monitor_shard_queue_enqueued_total"),
            stats.queue_enqueued
        );
        prop_assert_eq!(
            family_total(&rendered, "monitor_shard_queue_dequeued_total"),
            stats.queue_dequeued
        );
        prop_assert_eq!(
            family_total(&rendered, "monitor_shard_queue_dropped_total"),
            stats.decodes_dropped
        );
        prop_assert_eq!(family_total(&rendered, "monitor_shard_queue_depth"), 0);
        // One depth/drop/enqueued/dequeued series per shard.
        let depth_series = rendered
            .lines()
            .filter(|l| l.starts_with("monitor_shard_queue_depth{"))
            .count();
        prop_assert_eq!(depth_series, shards);
    }
}

/// Regression (the pre-chaos queue API returned a bare `bool`):
/// enqueueing onto a shard whose receiving side is gone must surface a
/// *typed* `Disconnected` error carrying the job back — not a silent
/// accept that would break `enqueued == dequeued + depth`, and not an
/// indistinguishable "queue full" drop that would make the caller
/// retry forever.
#[test]
fn dead_shard_enqueue_is_a_typed_error() {
    use stepstone_monitor::queue::shard_queue;
    use stepstone_monitor::PushError;

    let (tx, rx) = shard_queue::<u32>(4);
    assert!(tx.try_push(1).is_ok());
    assert_eq!(rx.recv(), Some(1));
    // The worker side dies and takes the receiver with it.
    drop(rx);

    let err = tx.try_push(2).expect_err("dead shard must reject");
    assert!(err.is_disconnected(), "got {err:?}, want Disconnected");
    assert_eq!(err.into_inner(), 2, "the rejected job is handed back");
    // Full and Disconnected are distinct cases callers can match on.
    assert!(matches!(tx.try_push(3), Err(PushError::Disconnected(3))));

    // The blocking flush path reports the same condition instead of
    // spinning forever against a queue nobody will ever drain.
    let mut pumped = 0u32;
    let err = tx
        .push_blocking(4, || pumped += 1)
        .expect_err("blocking push must fail fast on a dead shard");
    assert!(err.is_disconnected());
    assert_eq!(pumped, 0, "no pump spins against a disconnected queue");

    // Conservation survives the rejections: nothing was accepted after
    // the death, so nothing is owed — and the rejects were counted.
    assert_eq!(tx.enqueued(), 1);
    assert_eq!(tx.depth(), 0);
    assert_eq!(tx.dropped(), 3);
}
