//! Concurrency model tests for the monitor shard queue, run with
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p stepstone-monitor --test loom_queue --release
//! ```
//!
//! Under `--cfg loom` the queue module (`stepstone_monitor::queue`)
//! compiles against `loom`'s atomics, so these models drive the exact
//! accounting code the engine runs. With the vendored loom stand-in
//! (see `vendor/loom/README.md`) each `loom::model` is a randomized
//! stress run; with the real crate it is an exhaustive interleaving
//! search. Either way the asserted invariants are the ones the engine
//! relies on:
//!
//! * accepted pushes = popped jobs (nothing lost, nothing duplicated);
//! * attempts = accepted + dropped (drop accounting is exact);
//! * the depth gauge never underflows/wraps, and reads 0 once drained.

#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;

use stepstone_monitor::queue::shard_queue;

/// The depth gauge is optimistic (incremented before the push attempt),
/// so with `p` concurrent pushers it may transiently read up to
/// `capacity + p`; anything above that — in particular a value near
/// `usize::MAX` — means the pre-extraction underflow bug is back.
fn assert_depth_sane(depth: usize, capacity: usize, pushers: usize) {
    assert!(
        depth <= capacity + pushers,
        "depth gauge {depth} exceeds capacity {capacity} + pushers {pushers} (wrapped?)"
    );
}

#[test]
fn push_drop_drain_accounting() {
    const CAPACITY: usize = 2;
    const PUSHES: usize = 8;
    loom::model(|| {
        let (tx, rx) = shard_queue::<usize>(CAPACITY);
        let accepted = Arc::new(AtomicUsize::new(0));

        let producer_accepted = Arc::clone(&accepted);
        let producer = loom::thread::spawn(move || {
            for i in 0..PUSHES {
                if tx.try_push(i).is_ok() {
                    // ordering: test counter joined-before the asserts.
                    producer_accepted.fetch_add(1, Ordering::Relaxed);
                }
                assert_depth_sane(tx.depth(), CAPACITY, 1);
            }
            let dropped = tx.dropped();
            drop(tx);
            dropped
        });

        let consumer = loom::thread::spawn(move || {
            let mut popped = 0usize;
            while rx.recv().is_some() {
                popped += 1;
            }
            (popped, rx)
        });

        let dropped = producer.join().expect("producer");
        let (popped, rx) = consumer.join().expect("consumer");
        // ordering: both threads joined; counter is quiescent.
        let accepted = accepted.load(Ordering::Relaxed);
        assert_eq!(accepted, popped, "accepted pushes must all be popped");
        assert_eq!(
            accepted as u64 + dropped,
            PUSHES as u64,
            "attempts must equal accepted + dropped"
        );
        assert_eq!(rx_depth(&rx), 0, "depth gauge must read 0 once drained");
    });
}

#[test]
fn multi_producer_accounting() {
    const CAPACITY: usize = 1;
    const PUSHES_EACH: usize = 4;
    const PRODUCERS: usize = 2;
    loom::model(|| {
        let (tx, rx) = shard_queue::<usize>(CAPACITY);
        let tx = Arc::new(tx);
        let accepted = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = Arc::clone(&tx);
                let accepted = Arc::clone(&accepted);
                loom::thread::spawn(move || {
                    for i in 0..PUSHES_EACH {
                        if tx.try_push(p * PUSHES_EACH + i).is_ok() {
                            // ordering: test counter joined-before the asserts.
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        assert_depth_sane(tx.depth(), CAPACITY, PRODUCERS);
                    }
                })
            })
            .collect();

        let consumer = loom::thread::spawn(move || {
            let mut popped = 0usize;
            while rx.recv().is_some() {
                popped += 1;
            }
            (popped, rx)
        });

        for producer in producers {
            producer.join().expect("producer");
        }
        let dropped = tx.dropped();
        drop(tx);
        let (popped, rx) = consumer.join().expect("consumer");
        // ordering: all threads joined; counter is quiescent.
        let accepted = accepted.load(Ordering::Relaxed);
        assert_eq!(accepted, popped);
        assert_eq!(accepted as u64 + dropped, (PRODUCERS * PUSHES_EACH) as u64);
        assert_eq!(rx_depth(&rx), 0);
    });
}

#[test]
fn blocking_push_completes_and_balances() {
    const CAPACITY: usize = 1;
    const PUSHES: usize = 4;
    loom::model(|| {
        let (tx, rx) = shard_queue::<usize>(CAPACITY);

        let producer = loom::thread::spawn(move || {
            for i in 0..PUSHES {
                assert!(
                    tx.push_blocking(i, loom::thread::yield_now).is_ok(),
                    "receiver alive: blocking push must succeed"
                );
            }
            assert_eq!(
                tx.dropped(),
                0,
                "blocking pushes never drop while the receiver lives"
            );
        });

        let consumer = loom::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(i) = rx.recv() {
                seen.push(i);
            }
            (seen, rx)
        });

        producer.join().expect("producer");
        let (seen, rx) = consumer.join().expect("consumer");
        assert_eq!(seen, (0..PUSHES).collect::<Vec<_>>(), "FIFO, nothing lost");
        assert_eq!(rx_depth(&rx), 0);
    });
}

#[test]
fn shutdown_mid_stream_drains_cleanly() {
    const CAPACITY: usize = 2;
    loom::model(|| {
        let (tx, rx) = shard_queue::<usize>(CAPACITY);
        // Producer pushes a few jobs then hangs up mid-stream, like the
        // engine dropping its senders at the start of shutdown.
        let producer = loom::thread::spawn(move || {
            let mut accepted = 0usize;
            for i in 0..3 {
                if tx.try_push(i).is_ok() {
                    accepted += 1;
                }
            }
            accepted
        });
        let consumer = loom::thread::spawn(move || {
            let mut popped = 0usize;
            // recv returns None only once the channel is both
            // disconnected and drained: accepted jobs survive shutdown.
            while rx.recv().is_some() {
                popped += 1;
            }
            (popped, rx)
        });
        let accepted = producer.join().expect("producer");
        let (popped, rx) = consumer.join().expect("consumer");
        assert_eq!(
            accepted, popped,
            "every accepted job is drained before shutdown"
        );
        assert_eq!(rx_depth(&rx), 0);
    });
}

#[test]
fn sender_sees_disconnect_after_receiver_drops() {
    loom::model(|| {
        let (tx, rx) = shard_queue::<usize>(1);
        let dropper = loom::thread::spawn(move || drop(rx));
        let mut disconnected = 0u64;
        for i in 0..4 {
            if tx.try_push(i).is_err() {
                disconnected += 1;
            }
        }
        dropper.join().expect("dropper");
        // Whatever the interleaving, accounting still balances.
        assert_eq!(tx.dropped() >= disconnected, true);
        let err = tx
            .push_blocking(99, || {})
            .expect_err("receiver gone: must report disconnect");
        assert!(err.is_disconnected());
        assert_eq!(err.into_inner(), 99, "the rejected job is handed back");
    });
}

/// Reads the shared depth gauge through the receiver side.
///
/// The gauge is shared between both halves; reading it via a sender
/// clone would keep the channel alive, so tests thread the receiver
/// back out of the consumer and read through this helper.
fn rx_depth<T>(rx: &stepstone_monitor::queue::ShardReceiver<T>) -> usize {
    rx.depth()
}
