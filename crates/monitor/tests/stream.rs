//! End-to-end streaming tests: interleaved flows, backpressure,
//! eviction and verdict plumbing.

use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_core::{Algorithm, WatermarkCorrelator};
use stepstone_flow::{Flow, Packet, TimeDelta, Timestamp};
use stepstone_monitor::{FlowId, Monitor, MonitorConfig, PairId, UpstreamId, Verdict};
use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

fn interactive(n: usize, seed: u64) -> Flow {
    SessionGenerator::new(InteractiveProfile::ssh()).generate(
        n,
        Timestamp::ZERO,
        &mut Seed::new(seed).rng(0),
    )
}

fn attack(marked: &Flow, delta_s: i64, chaff_rate: f64, seed: u64) -> Flow {
    AdversaryPipeline::new()
        .then(UniformPerturbation::new(TimeDelta::from_secs(delta_s)))
        .then(ChaffInjector::new(ChaffModel::Poisson { rate: chaff_rate }))
        .apply(marked, Seed::new(seed))
}

struct Scenario {
    correlator: WatermarkCorrelator,
    original: Flow,
    marked: Flow,
}

fn scenario(seed: u64, n: usize, delta_s: i64) -> Scenario {
    let original = interactive(n, seed);
    let marker = IpdWatermarker::new(WatermarkKey::new(seed ^ 0xABC), WatermarkParams::small());
    let watermark = Watermark::random(8, &mut WatermarkKey::new(seed).rng(1));
    let marked = marker.embed(&original, &watermark).unwrap();
    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(delta_s),
        Algorithm::GreedyPlus,
    );
    Scenario {
        correlator,
        original,
        marked,
    }
}

/// Merges `(flow, packet)` streams into one time-ordered event stream.
fn merge_streams(flows: &[(FlowId, &Flow)]) -> Vec<(FlowId, Packet)> {
    let mut events: Vec<(FlowId, Packet)> = flows
        .iter()
        .flat_map(|&(id, flow)| flow.packets().iter().map(move |&p| (id, p)))
        .collect();
    // Stable sort preserves per-flow packet order among equal stamps.
    events.sort_by_key(|&(_, p)| p.timestamp());
    events
}

#[test]
fn detects_attacked_downstream_among_decoys_live() {
    let s = scenario(11, 400, 2);
    let suspicious = attack(&s.marked, 2, 1.0, 11);
    assert!(suspicious.chaff_count() > 0);
    let decoys: Vec<Flow> = (0..3)
        .map(|i| attack(&interactive(400, 900 + i), 2, 1.0, i))
        .collect();

    let mut monitor = Monitor::new(
        MonitorConfig::default()
            .with_shards(2)
            .with_decode_batch(64),
    );
    monitor.register_upstream(
        UpstreamId(0),
        s.correlator.bind(&s.original, &s.marked).unwrap(),
    );

    let mut streams = vec![(FlowId(0), &suspicious)];
    for (i, d) in decoys.iter().enumerate() {
        streams.push((FlowId(1 + i as u64), d));
    }
    let mut verdicts = Vec::new();
    for (flow, packet) in merge_streams(&streams) {
        assert!(monitor.ingest(flow, packet));
        verdicts.extend(monitor.drain_verdicts());
    }
    let report = monitor.finish();
    verdicts.extend(report.verdicts);

    let target = PairId {
        upstream: UpstreamId(0),
        flow: FlowId(0),
    };
    assert!(
        verdicts
            .iter()
            .any(|v| v.is_correlated() && v.pair() == Some(target)),
        "true pair not detected: {verdicts:?}"
    );
    for v in &verdicts {
        if v.is_correlated() {
            assert_eq!(v.pair(), Some(target), "decoy falsely correlated: {v}");
        }
    }
    // Every pair got exactly one terminal word.
    let mut pairs: Vec<PairId> = verdicts.iter().filter_map(Verdict::pair).collect();
    pairs.sort();
    pairs.dedup();
    assert_eq!(pairs.len(), 4);

    let stats = report.stats;
    let total: u64 = streams.iter().map(|(_, f)| f.len() as u64).sum();
    assert_eq!(stats.packets_ingested, total);
    assert_eq!(stats.packets_rejected, 0);
    assert_eq!(stats.decodes_scheduled, stats.decodes_run);
    assert!(stats.decodes_run > 0);
    assert_eq!(stats.pairs_latched, 1);
    assert_eq!(stats.queue_depths, vec![0, 0]);
    assert_eq!(stats.verdicts_emitted, verdicts.len() as u64);
}

#[test]
fn backpressure_drops_decodes_without_blocking_ingest() {
    let s = scenario(21, 200, 2);
    // One shard with a single-slot queue, re-decode after every packet:
    // once the worker is busy, concurrent flows must hit a full queue.
    let mut monitor = Monitor::new(
        MonitorConfig::default()
            .with_shards(1)
            .with_queue_capacity(1)
            .with_decode_batch(1),
    );
    monitor.register_upstream(
        UpstreamId(0),
        s.correlator.bind(&s.original, &s.marked).unwrap(),
    );
    let flows: Vec<Flow> = (0..8)
        .map(|i| attack(&interactive(260, 700 + i), 2, 0.5, i))
        .collect();
    let streams: Vec<(FlowId, &Flow)> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| (FlowId(i as u64), f))
        .collect();
    for (flow, packet) in merge_streams(&streams) {
        monitor.ingest(flow, packet);
    }
    let stats = monitor.stats();
    assert!(
        stats.decodes_dropped > 0,
        "expected backpressure drops: {stats}"
    );
    // Dropping decode attempts never drops packets.
    assert_eq!(
        stats.packets_ingested,
        streams.iter().map(|(_, f)| f.len() as u64).sum::<u64>()
    );
    let report = monitor.finish();
    // The flush still gives every pair a terminal verdict.
    assert_eq!(
        report.stats.pairs_active,
        8 - report.stats.pairs_latched as usize
    );
    assert_eq!(report.stats.decodes_scheduled, report.stats.decodes_run);
}

#[test]
fn idle_flows_are_evicted_with_terminal_verdicts() {
    let s = scenario(31, 150, 2);
    let mut monitor = Monitor::new(
        MonitorConfig::default()
            .with_idle_timeout(TimeDelta::from_secs(30))
            .with_decode_batch(16),
    );
    monitor.register_upstream(
        UpstreamId(0),
        s.correlator.bind(&s.original, &s.marked).unwrap(),
    );
    let short_lived = attack(&interactive(200, 41), 2, 0.5, 1);
    for &p in short_lived.packets() {
        monitor.ingest(FlowId(5), p);
    }
    let mut verdicts = monitor.drain_verdicts();
    let last_seen = short_lived.last().unwrap().timestamp();
    assert_eq!(monitor.evict_idle(last_seen + TimeDelta::from_secs(10)), 0);
    assert_eq!(monitor.evict_idle(last_seen + TimeDelta::from_secs(60)), 1);
    let report = monitor.finish();
    verdicts.extend(report.verdicts);

    assert!(
        verdicts.iter().any(|v| matches!(
            v,
            Verdict::Evicted {
                flow: FlowId(5),
                ..
            }
        )),
        "missing eviction: {verdicts:?}"
    );
    // The evicted flow's pair still resolved terminally (cleared or
    // correlated, depending on what its decodes saw).
    let pair = PairId {
        upstream: UpstreamId(0),
        flow: FlowId(5),
    };
    assert_eq!(
        verdicts.iter().filter(|v| v.pair() == Some(pair)).count(),
        1,
        "exactly one terminal pair verdict expected: {verdicts:?}"
    );
    assert_eq!(report.stats.flows_evicted, 1);
    assert_eq!(report.stats.flows_active, 0);
}

#[test]
fn out_of_order_packets_are_rejected_and_counted() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    let flow = FlowId(1);
    assert!(monitor.ingest(flow, Packet::new(Timestamp::from_secs(5), 64)));
    assert!(!monitor.ingest(flow, Packet::new(Timestamp::from_secs(1), 64)));
    // A different flow is unaffected by the first flow's clock.
    assert!(monitor.ingest(FlowId(2), Packet::new(Timestamp::from_secs(1), 64)));
    let stats = monitor.stats();
    assert_eq!(stats.packets_ingested, 2);
    assert_eq!(stats.packets_rejected, 1);
    assert_eq!(stats.flows_active, 2);
}

#[test]
#[should_panic(expected = "registered twice")]
fn duplicate_upstream_registration_panics() {
    let s = scenario(51, 150, 2);
    let bound = s.correlator.bind(&s.original, &s.marked).unwrap();
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.register_upstream(UpstreamId(9), bound.clone());
    monitor.register_upstream(UpstreamId(9), bound);
}
