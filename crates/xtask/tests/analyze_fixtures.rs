//! End-to-end checks of `cargo xtask analyze`: each seeded violation
//! of the four cross-file rules must fail the pass, the incremental
//! cache must serve warm runs, the baseline must ratchet, and the real
//! workspace must be clean modulo its checked-in baseline.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch workspace under the target dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("file has a parent"))
            .expect("create fixture dirs");
        std::fs::write(path, content).expect("write fixture file");
    }

    fn analyze(&self, extra: &[&str]) -> (bool, String) {
        let mut args = vec!["analyze", "--root", self.root.to_str().expect("utf-8 path")];
        args.extend_from_slice(extra);
        let output = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(&args)
            .output()
            .expect("run xtask analyze");
        (
            output.status.success(),
            String::from_utf8_lossy(&output.stdout).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_lock_order_cycle_is_caught() {
    let fx = Fixture::new("an-lock-cycle");
    fx.write(
        "crates/monitor/src/a.rs",
        "pub fn ab(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
             let ga = a.lock().unwrap();\n\
             let gb = b.lock().unwrap();\n\
         }\n",
    );
    fx.write(
        "crates/monitor/src/b.rs",
        "pub fn ba(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
             let gb = b.lock().unwrap();\n\
             let ga = a.lock().unwrap();\n\
         }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "lock cycle must fail analyze:\n{out}");
    assert!(out.contains("[lock_order]"), "{out}");
    assert!(out.contains("cycle"), "{out}");
}

#[test]
fn seeded_lock_held_across_recv_is_caught() {
    let fx = Fixture::new("an-lock-recv");
    fx.write(
        "crates/monitor/src/w.rs",
        "pub fn worker(rx: &Mutex<Receiver<u8>>) {\n\
             let guard = rx.lock().unwrap();\n\
             let _job = guard.recv();\n\
         }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "{out}");
    assert!(out.contains("held across blocking `recv()`"), "{out}");
}

#[test]
fn seeded_unit_flow_mix_is_caught() {
    let fx = Fixture::new("an-units");
    fx.write(
        "crates/ingest/src/ts.rs",
        "pub fn skewed(ts_micros: i64, skew_nanos: i64) -> i64 {\n\
             ts_micros + skew_nanos\n\
         }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "{out}");
    assert!(out.contains("[unit_flow]"), "{out}");
    assert!(out.contains("mixed-unit"), "{out}");
}

#[test]
fn seeded_counter_pairing_leak_is_caught() {
    let fx = Fixture::new("an-counters");
    // `dropped` is declared as part of the ledger but never
    // incremented and never rendered.
    fx.write(
        "crates/telemetry/src/wire.rs",
        "// conserve(jobs): enqueued = dequeued + dropped\n\
         pub fn wire(r: &Registry, s: &S) {\n\
             r.counter(\"t_jobs_enqueued_total\", \"h\");\n\
             r.counter(\"t_jobs_dequeued_total\", \"h\");\n\
             s.enqueued.inc();\n\
             s.dequeued.inc();\n\
         }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "{out}");
    assert!(out.contains("[counter_pairing]"), "{out}");
    assert!(out.contains("`dropped`"), "{out}");
}

#[test]
fn seeded_undeclared_ledger_counter_is_caught() {
    let fx = Fixture::new("an-ledger");
    fx.write(
        "crates/cluster/src/m.rs",
        "pub fn wire(r: &Registry) {\n\
             let c = r.counter(\"cluster_frames_lost_total\", \"h\");\n\
             c.inc();\n\
         }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "{out}");
    assert!(out.contains("no conserve() declaration"), "{out}");
}

#[test]
fn seeded_ipc_wildcard_is_caught() {
    let fx = Fixture::new("an-ipc");
    fx.write(
        "crates/cluster/src/message.rs",
        "pub enum Message { Ping(u64), Pong(u64) }\n\
         pub fn decode(k: u8) -> Message {\n\
             if k == 0 { Message::Ping(0) } else { Message::Pong(0) }\n\
         }\n",
    );
    fx.write(
        "crates/cluster/src/coordinator.rs",
        "pub fn handle(m: Message) {\n\
             match m { Message::Pong(_) => {}, _ => {} }\n\
         }\n",
    );
    fx.write(
        "crates/cluster/src/worker.rs",
        "pub fn handle(m: Message) {\n\
             match m { Message::Ping(_) => {}, Message::Pong(_) => {} }\n\
         }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "{out}");
    assert!(out.contains("[ipc_exhaustive]"), "{out}");
    assert!(out.contains("Message::Ping"), "{out}");
    assert!(out.contains("coordinator side"), "{out}");
    // Pong is matched on both sides: exactly one finding.
    assert!(!out.contains("Message::Pong is constructed"), "{out}");
}

#[test]
fn waivers_suppress_analyze_findings() {
    let fx = Fixture::new("an-waive");
    fx.write(
        "crates/monitor/src/w.rs",
        "pub fn worker(rx: &Mutex<Receiver<u8>>) {\n\
             let guard = rx.lock().unwrap();\n\
             // lint: allow(lock_order) single consumer owns the receiver while blocked\n\
             let _job = guard.recv();\n\
         }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(ok, "waived finding must not fail analyze:\n{out}");
}

#[test]
fn rule_filter_runs_only_that_rule() {
    let fx = Fixture::new("an-filter");
    // Seeds violations of both unit_flow and counter_pairing.
    fx.write(
        "crates/ingest/src/ts.rs",
        "pub fn skewed(ts_micros: i64, skew_nanos: i64) -> i64 { ts_micros + skew_nanos }\n",
    );
    fx.write(
        "crates/cluster/src/m.rs",
        "pub fn wire(r: &Registry) { let c = r.counter(\"c_lost_total\", \"h\"); c.inc(); }\n",
    );
    let (ok, out) = fx.analyze(&["--rule", "unit_flow"]);
    assert!(!ok, "{out}");
    assert!(out.contains("[unit_flow]"), "{out}");
    assert!(!out.contains("[counter_pairing]"), "{out}");
}

#[test]
fn warm_run_is_served_from_the_cache() {
    let fx = Fixture::new("an-cache");
    fx.write("crates/monitor/src/ok.rs", "pub fn fine() -> u64 { 1 }\n");
    let (ok, cold) = fx.analyze(&[]);
    assert!(ok, "{cold}");
    assert!(cold.contains("(1 parsed, 0 cached)"), "{cold}");
    assert!(
        fx.root.join("target/xtask-analyze.cache").exists(),
        "cache file must be written"
    );
    let (ok, warm) = fx.analyze(&[]);
    assert!(ok, "{warm}");
    assert!(warm.contains("(0 parsed, 1 cached)"), "{warm}");
    // Editing the file invalidates exactly that entry.
    fx.write("crates/monitor/src/ok.rs", "pub fn fine() -> u64 { 2 }\n");
    let (_, edited) = fx.analyze(&[]);
    assert!(edited.contains("(1 parsed, 0 cached)"), "{edited}");
}

#[test]
fn update_baseline_ratchets_existing_findings() {
    let fx = Fixture::new("an-baseline");
    fx.write(
        "crates/ingest/src/ts.rs",
        "pub fn skewed(ts_micros: i64, skew_nanos: i64) -> i64 { ts_micros + skew_nanos }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "{out}");
    let (ok, _) = fx.analyze(&["--update-baseline"]);
    assert!(ok, "--update-baseline itself succeeds");
    assert!(fx.root.join("analyze-baseline.json").exists());
    // Baselined findings are reported but no longer fail the pass.
    let (ok, out) = fx.analyze(&[]);
    assert!(ok, "baselined finding must not fail:\n{out}");
    assert!(out.contains("(0 new, 1 baselined)"), "{out}");
    // A fresh finding still fails.
    fx.write(
        "crates/ingest/src/more.rs",
        "pub fn worse(a_ms: i64, b_nanos: i64) -> bool { a_ms < b_nanos }\n",
    );
    let (ok, out) = fx.analyze(&[]);
    assert!(!ok, "new finding must fail despite baseline:\n{out}");
    assert!(out.contains("1 new"), "{out}");
}

#[test]
fn sarif_output_is_well_formed() {
    let fx = Fixture::new("an-sarif");
    fx.write(
        "crates/ingest/src/ts.rs",
        "pub fn skewed(ts_micros: i64, skew_nanos: i64) -> i64 { ts_micros + skew_nanos }\n",
    );
    let (ok, out) = fx.analyze(&["--format", "sarif"]);
    assert!(!ok);
    assert!(out.contains("\"version\":\"2.1.0\""), "{out}");
    assert!(out.contains("xtask-analyze"), "{out}");
    assert!(out.contains("\"ruleId\":\"unit_flow\""), "{out}");
    assert!(out.contains("crates/ingest/src/ts.rs"), "{out}");
    assert_eq!(out.matches('{').count(), out.matches('}').count());
    assert_eq!(out.matches('[').count(), out.matches(']').count());
}

#[test]
fn real_workspace_is_analyze_clean_modulo_baseline() {
    // The repo itself must satisfy its own cross-file invariants,
    // modulo the checked-in baseline. `--no-cache` so a stale dev
    // cache cannot mask a regression.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args([
            "analyze",
            "--no-cache",
            "--root",
            root.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run xtask analyze");
    assert!(
        output.status.success(),
        "workspace must be analyze-clean modulo baseline:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}
