//! Self-consistency of the rule inventory: the `RULES` /
//! `ANALYZE_RULES` arrays (observed through the binary's JSON output),
//! the markdown tables in the two module docs, and the README rules
//! table must all list the same ids — and the English count words in
//! the prose ("Seven rules", "Four rules") must match reality, so a
//! future rule can't land in one place and silently miss the others.

use std::path::Path;
use std::process::Command;

/// Runs the xtask binary on an empty root and returns the rule ids
/// from the JSON `counts` object (one per registered rule, present
/// even at zero).
fn binary_rule_ids(subcommand: &str) -> Vec<String> {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("consistency-{subcommand}"));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create empty root");
    let output = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args([
            subcommand,
            "--format",
            "json",
            "--root",
            root.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run xtask");
    assert!(output.status.success(), "empty root must be clean");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let counts_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("\"counts\""))
        .expect("json output has a counts object");
    // `"counts": {"a": 0, "b": 0}` — the quoted strings after the key
    // are exactly the rule ids.
    let body = counts_line.split_once('{').expect("counts is an object").1;
    let mut ids: Vec<String> = body
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_owned)
        .collect();
    ids.sort();
    let _ = std::fs::remove_dir_all(&root);
    ids
}

/// Extracts rule ids from a module doc's markdown table: lines of the
/// form ``//! | `id` | invariant |``.
fn doc_table_ids(src: &str) -> Vec<String> {
    let mut ids: Vec<String> = src
        .lines()
        .filter_map(|l| l.trim_start().strip_prefix("//! | `"))
        .filter_map(|l| l.split('`').next())
        .map(str::to_owned)
        .collect();
    ids.sort();
    ids
}

fn read_source(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn read_readme() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    std::fs::read_to_string(&path).expect("read README.md")
}

/// Rule ids from the README's combined rules table: rows of the form
/// ``| lint | `id` | ...`` / ``| analyze | `id` | ...``.
fn readme_rule_ids(readme: &str, pass: &str) -> Vec<String> {
    let section = readme
        .split("### Static analysis rules")
        .nth(1)
        .expect("README has a Static analysis rules section")
        .split("\n## ")
        .next()
        .expect("section body");
    let prefix = format!("| {pass} | `");
    let mut ids: Vec<String> = section
        .lines()
        .filter_map(|l| l.strip_prefix(prefix.as_str()))
        .filter_map(|l| l.split('`').next())
        .map(str::to_owned)
        .collect();
    ids.sort();
    ids
}

fn count_word(n: usize) -> &'static str {
    [
        "zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten",
    ][n]
}

#[test]
fn lint_rule_table_matches_the_rules_array() {
    let ids = binary_rule_ids("lint");
    let doc = doc_table_ids(&read_source("src/lint.rs"));
    assert_eq!(ids, doc, "lint.rs module-doc table must list RULES exactly");
}

#[test]
fn analyze_rule_table_matches_the_rules_array() {
    let ids = binary_rule_ids("analyze");
    let doc = doc_table_ids(&read_source("src/analyze.rs"));
    assert_eq!(
        ids, doc,
        "analyze.rs module-doc table must list ANALYZE_RULES exactly"
    );
}

#[test]
fn readme_rules_table_matches_both_passes() {
    let readme = read_readme();
    assert_eq!(
        binary_rule_ids("lint"),
        readme_rule_ids(&readme, "lint"),
        "README rules table must list every lint rule"
    );
    assert_eq!(
        binary_rule_ids("analyze"),
        readme_rule_ids(&readme, "analyze"),
        "README rules table must list every analyze rule"
    );
}

#[test]
fn count_words_in_prose_match_rule_counts() {
    let word = count_word(binary_rule_ids("lint").len());
    let lint_src = read_source("src/lint.rs").to_lowercase();
    assert!(
        lint_src.contains(&format!("{word} rules")),
        "lint.rs prose must say \"{word} rules\""
    );
    let word = count_word(binary_rule_ids("analyze").len());
    let analyze_src = read_source("src/analyze.rs").to_lowercase();
    assert!(
        analyze_src.contains(&format!("{word} rules")),
        "analyze.rs prose must say \"{word} rules\""
    );
}

#[test]
fn readme_lane_count_word_matches_the_lanes_table() {
    let readme = read_readme();
    let lanes_section = readme
        .split("## Verification lanes")
        .nth(1)
        .expect("README has a Verification lanes section")
        .split("###")
        .next()
        .expect("section body");
    let lane_rows = lanes_section
        .lines()
        .filter(|l| l.starts_with("| ") && !l.starts_with("| Lane") && !l.starts_with("|--"))
        .count();
    let word = count_word(lane_rows);
    assert!(
        lanes_section.contains(&format!("{word} additional gates")),
        "README must say \"{word} additional gates\" for {lane_rows} lanes"
    );
}
