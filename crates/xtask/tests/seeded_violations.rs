//! End-to-end check of the acceptance criterion: the lint binary must
//! exit non-zero when a seeded violation of each of the seven rules is
//! introduced (eight seeded cases — `bounded_ipc` is seeded in both
//! the `cluster` crate and the newer `scenario`/serve scope), report
//! each of them, and emit parseable JSON.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch workspace under the target dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("file has a parent"))
            .expect("create fixture dirs");
        std::fs::write(path, content).expect("write fixture file");
    }

    fn lint(&self, format: &str) -> (bool, String) {
        let output = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args([
                "lint",
                "--format",
                format,
                "--root",
                self.root.to_str().expect("utf-8 path"),
            ])
            .output()
            .expect("run xtask lint");
        (
            output.status.success(),
            String::from_utf8_lossy(&output.stdout).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\npub fn ok() {}\n";

#[test]
fn clean_workspace_exits_zero() {
    let fx = Fixture::new("clean");
    fx.write("crates/good/src/lib.rs", CLEAN_LIB);
    let (ok, out) = fx.lint("text");
    assert!(ok, "expected exit 0 on a clean tree, got:\n{out}");
    assert!(out.contains("0 finding(s)"));
}

#[test]
fn each_seeded_rule_violation_fails_the_lint() {
    // One violation per rule, each on a known line; bounded_ipc is
    // seeded once per scope it covers.
    let cases: [(&str, &str, &str); 8] = [
        (
            "no_panic",
            "crates/a/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        ),
        (
            "micros_math",
            "crates/b/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f(d: TimeDelta) -> i64 { d.as_micros() * 2 }\n",
        ),
        (
            "ordering_comment",
            "crates/c/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n",
        ),
        (
            "bounded_queue",
            "crates/monitor/src/extra.rs",
            "pub fn f() { let (_tx, _rx) = std::sync::mpsc::channel::<u8>(); }\n",
        ),
        (
            "heartbeat_touch",
            "crates/monitor/src/drain.rs",
            "pub fn worker_drain(ctx: &Ctx) { loop { ctx.step(); } }\n",
        ),
        (
            "forbid_unsafe",
            "crates/e/src/lib.rs",
            "pub fn f() {}\n",
        ),
        (
            "bounded_ipc",
            "crates/cluster/src/extra.rs",
            "pub fn f(len: u32) -> Vec<u8> { Vec::with_capacity(len as usize) }\n",
        ),
        (
            "bounded_ipc",
            "crates/scenario/src/extra.rs",
            "pub fn f(r: &mut impl Read) -> Vec<u8> {\n\
             \x20   let mut b = Vec::new();\n\
             \x20   r.read_to_end(&mut b);\n\
             \x20   b\n\
             }\n",
        ),
    ];
    for (i, (rule, path, src)) in cases.into_iter().enumerate() {
        let fx = Fixture::new(&format!("seed-{i}-{rule}"));
        fx.write("crates/good/src/lib.rs", CLEAN_LIB);
        fx.write("crates/monitor/src/lib.rs", "#![forbid(unsafe_code)]\n");
        fx.write(path, src);
        let (ok, out) = fx.lint("text");
        assert!(!ok, "seeded {rule} violation must fail the lint:\n{out}");
        assert!(
            out.contains(&format!("[{rule}]")),
            "output must name {rule}:\n{out}"
        );
    }
}

#[test]
fn json_output_is_well_formed_and_counts_rules() {
    let fx = Fixture::new("json");
    fx.write(
        "crates/a/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let (ok, out) = fx.lint("json");
    assert!(!ok);
    // Structural spot-checks (no JSON parser in the dep-free build).
    assert!(out.trim_start().starts_with('{'));
    assert!(out.trim_end().ends_with('}'));
    assert!(out.contains("\"schema\": 1"));
    assert!(out.contains("\"no_panic\": 1"));
    assert!(out.contains("\"rule\": \"no_panic\""));
    assert!(out.contains("\"path\": \"crates/a/src/lib.rs\""));
    assert!(out.contains("\"line\": 2"));
    assert_eq!(
        out.matches('{').count(),
        out.matches('}').count(),
        "balanced braces:\n{out}"
    );
    assert_eq!(out.matches('[').count(), out.matches(']').count());
}

#[test]
fn allow_comments_suppress_findings() {
    let fx = Fixture::new("allow");
    fx.write(
        "crates/a/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // lint: allow(no_panic) invariant: upstream flows are non-empty by construction\n\
         pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let (ok, out) = fx.lint("text");
    assert!(ok, "justified finding must be suppressed:\n{out}");
}

#[test]
fn real_workspace_is_lint_clean() {
    // The repo itself must satisfy its own invariants: run the linter
    // against the actual workspace this test compiled from.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root", root.to_str().expect("utf-8 path")])
        .output()
        .expect("run xtask lint");
    assert!(
        output.status.success(),
        "workspace must be lint-clean:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}
