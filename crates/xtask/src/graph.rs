//! Workspace symbol graph for the cross-file analyze rules.
//!
//! Consumes per-file [`FileFacts`](crate::parse::FileFacts) and builds
//! a call graph with conservative name resolution, then closes lock
//! acquisition and blocking behaviour over call edges. Resolution is
//! deliberately under-approximate: a call that cannot be matched to
//! exactly one workspace function produces no edge. That keeps the
//! lock-order rule free of edges that do not exist, at the cost of
//! missing edges through trait objects and closures (documented in
//! DESIGN.md §"Cross-file analysis").

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::FileFacts;

/// One function node after cross-file linking.
#[derive(Debug, Default)]
pub struct FnNode {
    /// `crate_dir::Type::name` or `crate_dir::name`.
    pub symbol: String,
    pub rel_path: String,
    /// Indices of resolved callees: `(callee, call line, held locks)`.
    pub calls: Vec<(usize, usize, Vec<String>)>,
    /// Direct lock acquisitions: `(lock id, line)`.
    pub acquires: Vec<(String, usize)>,
    /// Direct `(held, acquired, line)` order observations.
    pub ordered: Vec<(String, String, usize)>,
    /// Direct `(lock, blocking call, line)` observations.
    pub blocking_holding: Vec<(String, String, usize)>,
    /// Direct blocking calls: `(name, line)`.
    pub blocking: Vec<(String, usize)>,
    /// Locks acquired by this function or anything it (transitively)
    /// calls.
    pub trans_acquires: BTreeSet<String>,
    /// Blocking primitives reachable from this function.
    pub trans_blocks: BTreeSet<String>,
}

/// The linked workspace graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub fns: Vec<FnNode>,
}

impl Graph {
    /// Links per-file facts into a call graph and runs the lock and
    /// blocking fixpoints.
    pub fn build(files: &[FileFacts]) -> Graph {
        let mut g = Graph::default();
        // Node per function; lock ids get crate-qualified here so the
        // same field name in two crates stays two locks.
        for facts in files {
            for f in &facts.fns {
                let qual = |lock: &str| format!("{}::{}", facts.crate_dir, lock);
                g.fns.push(FnNode {
                    symbol: format!("{}::{}", facts.crate_dir, f.name),
                    rel_path: facts.rel_path.clone(),
                    calls: Vec::new(),
                    acquires: f.acquires.iter().map(|(l, n)| (qual(l), *n)).collect(),
                    ordered: f
                        .ordered
                        .iter()
                        .map(|(a, b, n)| (qual(a), qual(b), *n))
                        .collect(),
                    blocking_holding: f
                        .blocking_holding
                        .iter()
                        .map(|(l, b, n)| (qual(l), b.clone(), *n))
                        .collect(),
                    blocking: f.blocking.clone(),
                    trans_acquires: BTreeSet::new(),
                    trans_blocks: BTreeSet::new(),
                });
            }
        }

        // Resolution tables. `full` maps `Type::name` / free `name`
        // within a crate; `by_simple` and `by_method` map bare names
        // workspace-wide when unique.
        let mut full: BTreeMap<String, usize> = BTreeMap::new();
        let mut by_simple: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_method: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, node) in g.fns.iter().enumerate() {
            full.insert(node.symbol.clone(), idx);
            let local = node
                .symbol
                .split_once("::")
                .map_or(node.symbol.as_str(), |x| x.1);
            let simple = local.rsplit("::").next().unwrap_or(local);
            by_simple.entry(simple.to_string()).or_default().push(idx);
            if local.contains("::") {
                by_method.entry(simple.to_string()).or_default().push(idx);
            }
        }

        // Resolve call sites. Iterate over the same file order used to
        // create nodes so indices line up.
        let mut node_idx = 0;
        for facts in files {
            for f in &facts.fns {
                let mut resolved = Vec::new();
                for c in &f.calls {
                    let target = if let Some(q) = &c.qualifier {
                        // `Type::name(..)`: exact within the crate.
                        full.get(&format!("{}::{}::{}", facts.crate_dir, q, c.name))
                            .copied()
                    } else if c.is_method {
                        // `.name(..)`: unique method name wins.
                        match by_method.get(&c.name).map(Vec::as_slice) {
                            Some([one]) => Some(*one),
                            _ => None,
                        }
                    } else {
                        // Free call: same-crate free fn first, else a
                        // workspace-unique simple name.
                        full.get(&format!("{}::{}", facts.crate_dir, c.name))
                            .copied()
                            .or_else(|| match by_simple.get(&c.name).map(Vec::as_slice) {
                                Some([one]) => Some(*one),
                                _ => None,
                            })
                    };
                    if let Some(t) = target {
                        let qual_held: Vec<String> = c
                            .held
                            .iter()
                            .map(|l| format!("{}::{}", facts.crate_dir, l))
                            .collect();
                        resolved.push((t, c.line, qual_held));
                    }
                }
                g.fns[node_idx].calls = resolved;
                node_idx += 1;
            }
        }

        g.fixpoint();
        g
    }

    /// Propagates acquisitions and blocking calls backwards over call
    /// edges until stable.
    fn fixpoint(&mut self) {
        for node in &mut self.fns {
            node.trans_acquires = node.acquires.iter().map(|(l, _)| l.clone()).collect();
            node.trans_blocks = node.blocking.iter().map(|(b, _)| b.clone()).collect();
        }
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let callees: Vec<usize> = self.fns[i].calls.iter().map(|(t, _, _)| *t).collect();
                let mut add_acq = Vec::new();
                let mut add_blk = Vec::new();
                for t in callees {
                    for l in &self.fns[t].trans_acquires {
                        if !self.fns[i].trans_acquires.contains(l) {
                            add_acq.push(l.clone());
                        }
                    }
                    for b in &self.fns[t].trans_blocks {
                        if !self.fns[i].trans_blocks.contains(b) {
                            add_blk.push(b.clone());
                        }
                    }
                }
                if !add_acq.is_empty() || !add_blk.is_empty() {
                    changed = true;
                    self.fns[i].trans_acquires.extend(add_acq);
                    self.fns[i].trans_blocks.extend(add_blk);
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// All lock-order edges `(held → acquired, evidence)`: direct
    /// intra-function observations plus call edges taken while a lock
    /// is held into functions that (transitively) acquire another.
    pub fn lock_edges(&self) -> Vec<LockEdge> {
        let mut edges = Vec::new();
        for node in &self.fns {
            for (a, b, line) in &node.ordered {
                edges.push(LockEdge {
                    held: a.clone(),
                    acquired: b.clone(),
                    rel_path: node.rel_path.clone(),
                    line: *line,
                    via: None,
                });
            }
            for (target, line, held) in &node.calls {
                let callee = &self.fns[*target];
                for h in held {
                    for acq in &callee.trans_acquires {
                        if acq != h {
                            edges.push(LockEdge {
                                held: h.clone(),
                                acquired: acq.clone(),
                                rel_path: node.rel_path.clone(),
                                line: *line,
                                via: Some(callee.symbol.clone()),
                            });
                        }
                    }
                }
            }
        }
        edges
    }

    /// Blocking-while-holding observations, direct and through calls:
    /// `(lock, blocking primitive, path, line, via)`.
    pub fn blocking_while_held(&self) -> Vec<(String, String, String, usize, Option<String>)> {
        let mut out = Vec::new();
        for node in &self.fns {
            for (lock, block, line) in &node.blocking_holding {
                out.push((
                    lock.clone(),
                    block.clone(),
                    node.rel_path.clone(),
                    *line,
                    None,
                ));
            }
            for (target, line, held) in &node.calls {
                let callee = &self.fns[*target];
                for h in held {
                    for b in &callee.trans_blocks {
                        out.push((
                            h.clone(),
                            b.clone(),
                            node.rel_path.clone(),
                            *line,
                            Some(callee.symbol.clone()),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// One edge in the lock acquisition-order graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub rel_path: String,
    pub line: usize,
    /// The callee the second acquisition happens through, if indirect.
    pub via: Option<String>,
}

/// Finds cycles in the acquisition-order graph. Returns one
/// representative cycle per strongly-connected knot, each as the list
/// of edges walked, deduplicated by lock set.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Vec<LockEdge>> {
    // Adjacency: lock -> outgoing edges.
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().push(e);
    }
    let mut cycles: Vec<Vec<LockEdge>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();

    // Self-edges (re-entrant acquisition) are cycles of length one.
    for e in edges {
        if e.held == e.acquired {
            let key = vec![e.held.clone()];
            if seen_sets.insert(key) {
                cycles.push(vec![e.clone()]);
            }
        }
    }

    // DFS from each lock looking for a path back to the start.
    let locks: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| [e.held.as_str(), e.acquired.as_str()])
        .collect();
    for &start in &locks {
        let mut stack: Vec<(&str, Vec<&LockEdge>)> = vec![(start, Vec::new())];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((at, path)) = stack.pop() {
            for e in adj.get(at).map(Vec::as_slice).unwrap_or_default() {
                if e.held == e.acquired {
                    continue; // handled above
                }
                if e.acquired == start && (!path.is_empty() || at == start) {
                    let mut cycle: Vec<LockEdge> = path.iter().map(|&p| p.clone()).collect();
                    cycle.push((*e).clone());
                    let mut key: Vec<String> = cycle.iter().map(|e| e.held.clone()).collect();
                    key.sort();
                    key.dedup();
                    if seen_sets.insert(key) {
                        cycles.push(cycle);
                    }
                    continue;
                }
                if visited.insert(&e.acquired) {
                    let mut next = path.clone();
                    next.push(e);
                    stack.push((&e.acquired, next));
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::workspace::classify;

    fn facts(path: &str, src: &str) -> FileFacts {
        parse_file(&classify(path), src)
    }

    #[test]
    fn resolves_cross_file_calls_and_closes_acquisitions() {
        let a = facts(
            "crates/monitor/src/a.rs",
            "fn outer(m: &Mutex<u8>) {\n\
                 let g = m.lock().unwrap();\n\
                 inner_helper();\n\
             }\n",
        );
        let b = facts(
            "crates/monitor/src/b.rs",
            "fn inner_helper() {\n\
                 let g = OTHER.lock().unwrap();\n\
             }\n",
        );
        let g = Graph::build(&[a, b]);
        let outer = g.fns.iter().find(|f| f.symbol.ends_with("outer")).unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert!(outer.trans_acquires.contains("monitor::OTHER"));
        let edges = g.lock_edges();
        assert!(edges
            .iter()
            .any(|e| e.held == "monitor::m" && e.acquired == "monitor::OTHER"));
    }

    #[test]
    fn ambiguous_names_resolve_to_nothing() {
        let a = facts("crates/monitor/src/a.rs", "fn dup() {}\n");
        let b = facts("crates/cluster/src/b.rs", "fn dup() {}\n");
        let c = facts("crates/telemetry/src/c.rs", "fn caller() { dup(); }\n");
        let g = Graph::build(&[a, b, c]);
        let caller = g.fns.iter().find(|f| f.symbol.ends_with("caller")).unwrap();
        assert!(caller.calls.is_empty(), "two candidates → no edge");
    }

    #[test]
    fn same_crate_free_fn_beats_workspace_uniqueness() {
        let a = facts("crates/monitor/src/a.rs", "fn helper() {}\n");
        let b = facts("crates/monitor/src/b.rs", "fn caller() { helper(); }\n");
        let g = Graph::build(&[a, b]);
        let caller = g.fns.iter().find(|f| f.symbol.ends_with("caller")).unwrap();
        assert_eq!(caller.calls.len(), 1);
    }

    #[test]
    fn detects_two_lock_cycles() {
        let src_a = "fn ab(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                         let ga = a.lock().unwrap();\n\
                         let gb = b.lock().unwrap();\n\
                     }\n";
        let src_b = "fn ba(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                         let gb = b.lock().unwrap();\n\
                         let ga = a.lock().unwrap();\n\
                     }\n";
        let g = Graph::build(&[
            facts("crates/monitor/src/x.rs", src_a),
            facts("crates/monitor/src/y.rs", src_b),
        ]);
        let cycles = lock_cycles(&g.lock_edges());
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].len() >= 2);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let src = "fn one(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                       let ga = a.lock().unwrap();\n\
                       let gb = b.lock().unwrap();\n\
                   }\n\
                   fn two(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                       let ga = a.lock().unwrap();\n\
                       let gb = b.lock().unwrap();\n\
                   }\n";
        let g = Graph::build(&[facts("crates/monitor/src/x.rs", src)]);
        assert!(lock_cycles(&g.lock_edges()).is_empty());
    }

    #[test]
    fn reentrant_lock_is_a_self_cycle() {
        let src = "fn re(a: &Mutex<u8>) {\n\
                       let g1 = a.lock().unwrap();\n\
                       let g2 = a.lock().unwrap();\n\
                   }\n";
        let g = Graph::build(&[facts("crates/monitor/src/x.rs", src)]);
        let cycles = lock_cycles(&g.lock_edges());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
    }

    #[test]
    fn blocking_through_a_call_edge_is_found() {
        let a = facts(
            "crates/monitor/src/a.rs",
            "fn waits_inside() { std::thread::sleep(d); }\n",
        );
        let b = facts(
            "crates/monitor/src/b.rs",
            "fn holder(m: &Mutex<u8>) {\n\
                 let g = m.lock().unwrap();\n\
                 waits_inside();\n\
             }\n",
        );
        let g = Graph::build(&[a, b]);
        let hits = g.blocking_while_held();
        assert!(hits
            .iter()
            .any(|(lock, block, _, _, via)| lock == "monitor::m"
                && block == "sleep"
                && via.is_some()));
    }
}
