//! Finding output: human text and machine-readable JSON.
//!
//! The JSON schema is stable (`"schema": 1`) so CI tooling can parse
//! it without tracking this crate's internals:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "files_scanned": 93,
//!   "counts": {"no_panic": 0, ...},
//!   "findings": [
//!     {"rule": "no_panic", "path": "crates/flow/src/fifo.rs",
//!      "line": 110, "message": "..."}
//!   ]
//! }
//! ```

use std::collections::BTreeMap;

use crate::lint::{Finding, RULES};

/// Renders findings as `path:line: [rule] message` lines plus a
/// summary, matching compiler-diagnostic conventions so editors can
/// jump to them.
pub fn text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "xtask lint: {} finding(s) across {} file(s) scanned\n",
        findings.len(),
        files_scanned
    ));
    out
}

/// Renders findings as the schema-1 JSON document.
pub fn json(findings: &[Finding], files_scanned: usize) -> String {
    let mut counts: BTreeMap<&str, usize> = RULES.iter().map(|r| (*r, 0)).collect();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let counts_json = counts
        .iter()
        .map(|(rule, n)| format!("{}: {}", quote(rule), n))
        .collect::<Vec<_>>()
        .join(", ");
    let findings_json = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                quote(f.rule),
                quote(&f.path),
                f.line,
                quote(&f.message)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"schema\": 1,\n  \"files_scanned\": {},\n  \"counts\": {{{}}},\n  \
         \"findings\": [\n    {}\n  ]\n}}\n",
        files_scanned,
        counts_json,
        if findings.is_empty() {
            String::new()
        } else {
            findings_json
        }
    )
}

/// JSON string escaping (RFC 8259: quote, backslash, control chars).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no_panic",
            path: "crates/flow/src/fifo.rs".to_string(),
            line: 110,
            message: "`.unwrap()` with a \"quoted\" reason\tand tab".to_string(),
        }]
    }

    #[test]
    fn text_is_compiler_style() {
        let t = text(&sample(), 3);
        assert!(t.starts_with("crates/flow/src/fifo.rs:110: [no_panic]"));
        assert!(t.contains("1 finding(s) across 3 file(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = json(&sample(), 3);
        assert!(j.contains("\"schema\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"no_panic\": 1"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\\t"));
        // Every rule appears in counts, even at zero.
        for rule in RULES {
            assert!(j.contains(&format!("\"{rule}\"")));
        }
    }

    #[test]
    fn empty_findings_is_valid_json_shape() {
        let j = json(&[], 93);
        assert!(j.contains("\"findings\": [\n    \n  ]"));
    }
}
