//! Finding output: human text, machine-readable JSON, and SARIF.
//!
//! Shared by `cargo xtask lint` and `cargo xtask analyze` — both
//! passes produce [`Finding`]s and differ only in the tool name, the
//! rule list, and the summary counters. The JSON schema is stable
//! (`"schema": 1`) so CI tooling can parse it without tracking this
//! crate's internals:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "tool": "lint",
//!   "files_scanned": 93,
//!   "counts": {"no_panic": 0, ...},
//!   "rule_times_us": {"no_panic": 1432, ...},
//!   "findings": [
//!     {"rule": "no_panic", "path": "crates/flow/src/fifo.rs",
//!      "line": 110, "message": "..."}
//!   ]
//! }
//! ```
//!
//! The SARIF output is minimal SARIF 2.1.0 — one run, one driver, one
//! result per finding — enough for GitHub code-scanning annotations.

use std::collections::BTreeMap;

use crate::json::{obj, Value};
use crate::lint::Finding;

/// Renders findings as `path:line: [rule] message` lines, matching
/// compiler-diagnostic conventions so editors can jump to them.
pub fn finding_lines(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out
}

/// Renders findings plus the standard one-line summary.
pub fn text(tool: &str, findings: &[Finding], files_scanned: usize) -> String {
    let mut out = finding_lines(findings);
    out.push_str(&format!(
        "xtask {tool}: {} finding(s) across {} file(s) scanned\n",
        findings.len(),
        files_scanned
    ));
    out
}

/// Renders findings as the schema-1 JSON document. `extra` entries
/// become additional top-level numeric fields (e.g. the analyze
/// pass's baseline counters).
pub fn json(
    tool: &str,
    rules: &[&str],
    findings: &[Finding],
    files_scanned: usize,
    rule_times_us: &[(String, u128)],
    extra: &[(&str, usize)],
) -> String {
    let mut counts: BTreeMap<&str, usize> = rules.iter().map(|r| (*r, 0)).collect();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let counts_json = counts
        .iter()
        .map(|(rule, n)| format!("{}: {}", quote(rule), n))
        .collect::<Vec<_>>()
        .join(", ");
    let times_json = rule_times_us
        .iter()
        .map(|(rule, us)| format!("{}: {}", quote(rule), us))
        .collect::<Vec<_>>()
        .join(", ");
    let extra_json: String = extra
        .iter()
        .map(|(key, n)| format!("  {}: {},\n", quote(key), n))
        .collect();
    let findings_json = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                quote(f.rule),
                quote(&f.path),
                f.line,
                quote(&f.message)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"schema\": 1,\n  \"tool\": {},\n  \"files_scanned\": {},\n{}  \
         \"counts\": {{{}}},\n  \"rule_times_us\": {{{}}},\n  \
         \"findings\": [\n    {}\n  ]\n}}\n",
        quote(tool),
        files_scanned,
        extra_json,
        counts_json,
        times_json,
        if findings.is_empty() {
            String::new()
        } else {
            findings_json
        }
    )
}

/// Renders findings as a minimal SARIF 2.1.0 document (one run, one
/// result per finding) for GitHub code-scanning upload.
pub fn sarif(tool: &str, rules: &[&str], findings: &[Finding]) -> String {
    let rule_objs: Vec<Value> = rules
        .iter()
        .map(|r| {
            obj(vec![
                ("id", Value::Str((*r).to_string())),
                (
                    "name",
                    Value::Str(r.split('_').map(capitalize).collect::<String>()),
                ),
            ])
        })
        .collect();
    let results: Vec<Value> = findings
        .iter()
        .map(|f| {
            obj(vec![
                ("ruleId", Value::Str(f.rule.to_string())),
                ("level", Value::Str("error".to_string())),
                (
                    "message",
                    obj(vec![("text", Value::Str(f.message.clone()))]),
                ),
                (
                    "locations",
                    Value::Arr(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            (
                                "artifactLocation",
                                obj(vec![("uri", Value::Str(f.path.clone()))]),
                            ),
                            (
                                "region",
                                obj(vec![("startLine", Value::Num(f.line as i64))]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    let doc = obj(vec![
        (
            "$schema",
            Value::Str("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
        ),
        ("version", Value::Str("2.1.0".to_string())),
        (
            "runs",
            Value::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", Value::Str(format!("xtask-{tool}"))),
                            ("rules", Value::Arr(rule_objs)),
                        ]),
                    )]),
                ),
                ("results", Value::Arr(results)),
            ])]),
        ),
    ]);
    doc.render() + "\n"
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// JSON string escaping (RFC 8259: quote, backslash, control chars).
fn quote(s: &str) -> String {
    crate::json::quote(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::RULES;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no_panic",
            path: "crates/flow/src/fifo.rs".to_string(),
            line: 110,
            message: "`.unwrap()` with a \"quoted\" reason\tand tab".to_string(),
        }]
    }

    #[test]
    fn text_is_compiler_style() {
        let t = text("lint", &sample(), 3);
        assert!(t.starts_with("crates/flow/src/fifo.rs:110: [no_panic]"));
        assert!(t.contains("xtask lint: 1 finding(s) across 3 file(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let times = vec![("no_panic".to_string(), 1234u128)];
        let j = json("lint", &RULES, &sample(), 3, &times, &[]);
        assert!(j.contains("\"schema\": 1"));
        assert!(j.contains("\"tool\": \"lint\""));
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"no_panic\": 1"));
        assert!(j.contains("\"no_panic\": 1234"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\\t"));
        // Every rule appears in counts, even at zero.
        for rule in RULES {
            assert!(j.contains(&format!("\"{rule}\"")));
        }
    }

    #[test]
    fn json_extra_fields_are_top_level() {
        let j = json(
            "analyze",
            &["lock_order"],
            &[],
            7,
            &[],
            &[("new_findings", 2)],
        );
        assert!(j.contains("\"new_findings\": 2,"));
        assert!(crate::json::parse(&j).is_some(), "valid JSON: {j}");
    }

    #[test]
    fn empty_findings_is_valid_json_shape() {
        let j = json("lint", &RULES, &[], 93, &[], &[]);
        assert!(j.contains("\"findings\": [\n    \n  ]"));
    }

    #[test]
    fn sarif_is_valid_and_locates_findings() {
        let s = sarif("analyze", &["lock_order", "unit_flow"], &sample());
        let doc = crate::json::parse(&s).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
        let run = &runs[0];
        assert_eq!(
            run.get("tool")
                .and_then(|t| t.get("driver"))
                .and_then(|d| d.get("name"))
                .and_then(Value::as_str),
            Some("xtask-analyze")
        );
        let results = run.get("results").and_then(Value::as_arr).expect("results");
        assert_eq!(results.len(), 1);
        let loc = results[0]
            .get("locations")
            .and_then(Value::as_arr)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .expect("location");
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str),
            Some("crates/flow/src/fifo.rs")
        );
        assert_eq!(
            loc.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_num),
            Some(110)
        );
    }
}
