//! A minimal, dependency-free Rust lexer.
//!
//! The lint rules in this crate operate on token streams, not source
//! text, so occurrences inside string literals, doc comments and
//! regular comments never trigger findings. The build environment has
//! no registry access (see `vendor/README.md`), so instead of `syn`
//! this is a small hand-rolled lexer that understands exactly as much
//! Rust as the rules need: identifiers, punctuation, lifetimes, and
//! every literal form that can hide a `"` or `'` (strings, raw
//! strings, byte/C strings, char literals), plus nested block
//! comments.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// Any literal (string, raw string, char, number).
    Lit,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token (for `Punct`, a single character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// `true` when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// The result of lexing one file: code tokens plus the comments that
/// were stripped (kept so rules can look for justification markers).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// `(line, text)` for every comment, including doc comments. Block
    /// comments are recorded on their starting line.
    pub comments: Vec<(usize, String)>,
}

impl Lexed {
    /// `true` when any comment on `line` contains `needle`.
    pub fn comment_on_line_contains(&self, line: usize, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|(l, text)| *l == line && text.contains(needle))
    }
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs consume to end of input.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (includes `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push((start_line, text));
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    text.push_str("*/");
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            out.comments.push((start_line, text));
            continue;
        }
        // String-ish literals reachable from an ident-looking prefix:
        // r"", r#""#, b"", br"", c"", cr"", b''.
        if (c == 'r' || c == 'b' || c == 'c') && try_prefixed_literal(&chars, i).is_some() {
            let start_line = line;
            let end = try_prefixed_literal(&chars, i).expect("checked above");
            let text: String = chars[i..end].iter().collect();
            while i < end {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text,
                line: start_line,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut text = String::new();
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: start_line,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            let mut text = String::from('"');
            bump!();
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    text.push(chars[i]);
                    text.push(chars[i + 1]);
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    text.push('"');
                    bump!();
                    break;
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text,
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let start_line = line;
            // Lifetime: `'ident` not followed by a closing quote.
            if i + 1 < n
                && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                && !(i + 2 < n && chars[i + 2] == '\'')
            {
                let mut text = String::from('\'');
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line: start_line,
                });
                continue;
            }
            // Char literal: consume through the closing quote.
            let mut text = String::from('\'');
            bump!();
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    text.push(chars[i]);
                    text.push(chars[i + 1]);
                    bump!();
                    bump!();
                } else if chars[i] == '\'' {
                    text.push('\'');
                    bump!();
                    break;
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text,
                line: start_line,
            });
            continue;
        }
        // Number literal (suffixes and `1.5` floats; `0..3` keeps the
        // range dots out of the number).
        if c.is_ascii_digit() {
            let start_line = line;
            let mut text = String::new();
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                i += 1;
            }
            if i < n && chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit() {
                text.push('.');
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    i += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text,
                line: start_line,
            });
            continue;
        }
        // Everything else: single-character punctuation.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// If position `i` starts a prefixed string literal (`r"`, `r#"`,
/// `b"`, `br#"`, `c"`, `cr"`, `b'`), returns the index one past its
/// end.
fn try_prefixed_literal(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    let mut j = i;
    // Consume the prefix letters (at most two of r/b/c).
    let mut prefix = String::new();
    while j < n && prefix.len() < 2 && matches!(chars[j], 'r' | 'b' | 'c') {
        prefix.push(chars[j]);
        j += 1;
    }
    match prefix.as_str() {
        "r" | "br" | "cr" => {
            // Raw string: zero or more #, then a quote.
            let mut hashes = 0;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j >= n || chars[j] != '"' {
                return None;
            }
            j += 1;
            // Scan for `"` followed by `hashes` #s.
            while j < n {
                if chars[j] == '"' {
                    let mut k = j + 1;
                    let mut seen = 0;
                    while k < n && seen < hashes && chars[k] == '#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        return Some(k);
                    }
                }
                j += 1;
            }
            Some(n)
        }
        "b" | "c" => {
            let quote = if j < n { chars[j] } else { return None };
            if quote != '"' && !(prefix == "b" && quote == '\'') {
                return None;
            }
            j += 1;
            while j < n {
                if chars[j] == '\\' && j + 1 < n {
                    j += 2;
                } else if chars[j] == quote {
                    return Some(j + 1);
                } else {
                    j += 1;
                }
            }
            Some(n)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "call .unwrap() here";
            let r = r#"also .expect("x") here"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn records_comments_with_lines() {
        let src = "let x = 1; // lint: allow(no_panic) reasons\n";
        let lexed = lex(src);
        assert!(lexed.comment_on_line_contains(1, "lint: allow(no_panic)"));
        assert!(!lexed.comment_on_line_contains(2, "lint: allow"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; g::<'_>(); }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'_"]);
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "'x'"));
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "for i in 0..10 { let f = 1.5f64; let h = 0xFF_u8; }";
        let lexed = lex(src);
        let lits: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["0", "10", "1.5f64", "0xFF_u8"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nafter();\n";
        let lexed = lex(src);
        let after = lexed
            .toks
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("token exists");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn byte_and_c_strings() {
        let src = "let a = b\"panic!\"; let b = c\"unwrap\"; let c = br#\"expect\"#; cr_ident();";
        let ids = idents(src);
        assert!(ids.contains(&"cr_ident".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }
}
