//! A minimal JSON value: parser and writer.
//!
//! The analyze pass persists two machine-readable artifacts — the
//! incremental fact cache (`target/xtask-analyze.cache`) and the
//! checked-in finding baseline (`analyze-baseline.json`) — and must
//! read them back. The build environment has no registry access, so
//! instead of `serde_json` this is a small hand-rolled recursive
//! descent parser over exactly the JSON this crate itself emits
//! (objects, arrays, strings, integers, booleans, null). Unknown or
//! malformed input returns `None`; callers treat that as "no cache" /
//! "no baseline" and regenerate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value. Numbers are kept as `i64` — every number this
/// crate persists (lines, hashes as decimal strings excepted) fits.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Member lookup on an object; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serializes the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => out.push_str(&quote(s)),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object value from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Builds an array-of-strings value.
pub fn str_arr(items: &[String]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect())
}

/// JSON string escaping (RFC 8259: quote, backslash, control chars).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document. `None` on any syntax error or trailing
/// garbage.
pub fn parse(src: &str) -> Option<Value> {
    let chars: Vec<char> = src.chars().collect();
    let mut p = Parser { chars, at: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.at == p.chars.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser {
    chars: Vec<char>,
    at: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.at)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: char) -> Option<()> {
        self.skip_ws();
        if self.chars.get(self.at) == Some(&c) {
            self.at += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.at).copied()
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => self.string().map(Value::Str),
            't' => self.keyword("true", Value::Bool(true)),
            'f' => self.keyword("false", Value::Bool(false)),
            'n' => self.keyword("null", Value::Null),
            '-' | '0'..='9' => self.number(),
            _ => None,
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Option<Value> {
        self.skip_ws();
        for expected in word.chars() {
            if self.chars.get(self.at) != Some(&expected) {
                return None;
            }
            self.at += 1;
        }
        Some(v)
    }

    fn number(&mut self) -> Option<Value> {
        self.skip_ws();
        let start = self.at;
        if self.chars.get(self.at) == Some(&'-') {
            self.at += 1;
        }
        while self.chars.get(self.at).is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == start {
            return None;
        }
        let text: String = self.chars[start..self.at].iter().collect();
        text.parse().ok().map(Value::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let c = *self.chars.get(self.at)?;
            self.at += 1;
            match c {
                '"' => return Some(out),
                '\\' => {
                    let esc = *self.chars.get(self.at)?;
                    self.at += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = *self.chars.get(self.at)?;
                                self.at += 1;
                                code = code * 16 + d.to_digit(16)?;
                            }
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat('[')?;
        let mut items = Vec::new();
        if self.peek() == Some(']') {
            self.at += 1;
            return Some(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                ',' => self.at += 1,
                ']' => {
                    self.at += 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat('{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some('}') {
            self.at += 1;
            return Some(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                ',' => self.at += 1,
                '}' => {
                    self.at += 1;
                    return Some(Value::Obj(map));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = obj(vec![
            ("schema", Value::Num(1)),
            ("items", str_arr(&["a\"b".to_string(), "c\\d".to_string()])),
            (
                "inner",
                obj(vec![("n", Value::Num(-7)), ("flag", Value::Bool(true))]),
            ),
            ("nothing", Value::Null),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text), Some(doc));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\": }", "tru", "1 2", "\"\\x\""] {
            assert_eq!(parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\n\t\u0041\"", "n": -12}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\n\tA\""));
        assert_eq!(v.get("n").and_then(Value::as_num), Some(-12));
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = parse(r#"{"a": [1, "x"]}"#).expect("parses");
        assert!(v.get("a").and_then(Value::as_arr).is_some());
        assert!(v.get("a").and_then(Value::as_num).is_none());
        assert!(v.get("missing").is_none());
    }
}
