//! Cross-file workspace analysis: the `cargo xtask analyze` pass.
//!
//! Four rules, each with a machine-readable id (stable — CI, the
//! baseline and the waiver mechanism key on them):
//!
//! | id | invariant |
//! |----|-----------|
//! | `lock_order` | the workspace lock acquisition-order graph is acyclic, and no lock guard is held across a blocking call (`recv`, `sleep`, `wait`, frame reads) |
//! | `unit_flow` | no arithmetic or comparison mixes time units (µs/ns/ms/s as declared by binding names), and no `from_*`/`as_*` conversion is fed an operand of a different unit |
//! | `counter_pairing` | every counter family declared with `// conserve(<family>): <members>` has all members mutated in the declaring crate and rendered on `/metrics`; every registered ledger-suffixed counter belongs to a declared family |
//! | `ipc_exhaustive` | every `Message` variant constructed anywhere is matched non-wildcard on both the coordinator and worker sides of `crates/cluster` |
//!
//! Where `lint` checks one file at a time, this pass parses every
//! `src/` file of the analyzed crates into [`FileFacts`], links them
//! into a workspace symbol graph ([`Graph`](crate::graph::Graph)), and
//! evaluates graph-level rules. Per-file facts are cached in
//! `target/xtask-analyze.cache` keyed by content hash, so a warm run
//! re-parses only changed files. Findings are ratcheted against the
//! checked-in `analyze-baseline.json`: only findings *not* in the
//! baseline fail the pass, and `--update-baseline` rewrites it.
//! Waivers use the same `// lint: allow(<rule>) <reason>` comments as
//! the lint pass.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::time::Instant;

use crate::graph::{lock_cycles, Graph};
use crate::json::{self, obj, Value};
use crate::lint::Finding;
use crate::parse::{content_hash, parse_file, FileFacts};
use crate::workspace;

/// The stable ids of every analyze rule, in report order.
pub const ANALYZE_RULES: [&str; 4] = [
    "lock_order",
    "unit_flow",
    "counter_pairing",
    "ipc_exhaustive",
];

/// Crates whose `src/` trees feed the analysis.
pub const ANALYZED_CRATES: [&str; 4] = ["cluster", "ingest", "monitor", "telemetry"];

/// Bump to invalidate every cached fact set (rule or parser change).
const CACHE_SCHEMA: i64 = 1;

/// Registered counter name tokens that mark a conservation ledger
/// side; any counter carrying one must belong to a `conserve()`
/// family.
const LEDGER_TOKENS: [&str; 7] = [
    "_sent",
    "_acked",
    "_enqueued",
    "_dequeued",
    "_dropped",
    "_lost",
    "_rejected",
];

/// Knobs for one analysis run.
pub struct Options {
    /// Read/write `target/xtask-analyze.cache`.
    pub use_cache: bool,
    /// Run only this rule id, when set.
    pub rule: Option<String>,
}

/// The outcome of one analysis run.
pub struct Analysis {
    /// Every finding, sorted by path/line/rule.
    pub findings: Vec<Finding>,
    /// Findings absent from the baseline — these fail the pass.
    pub new_findings: Vec<Finding>,
    /// Baseline entries that matched a current finding.
    pub baselined: usize,
    /// Baseline entries no current finding matches (ratchet fodder).
    pub stale_baseline: Vec<(String, String, String)>,
    /// Files in scope.
    pub files: usize,
    /// Files parsed fresh this run.
    pub parsed: usize,
    /// Files served from the fact cache.
    pub cached: usize,
    /// `(rule id, wall micros)` for every rule evaluated.
    pub rule_times_us: Vec<(String, u128)>,
}

/// Runs the full analysis over the workspace at `root`.
pub fn run(root: &Path, opts: &Options) -> Result<Analysis, String> {
    let all = workspace::workspace_files(root)
        .map_err(|err| format!("failed to walk {}: {err}", root.display()))?;
    let files: Vec<_> = all
        .into_iter()
        .filter(|(class, _)| {
            ANALYZED_CRATES.contains(&class.crate_dir.as_str()) && class.rel_path.contains("/src/")
        })
        .collect();

    let cache_path = root.join("target").join("xtask-analyze.cache");
    let old_cache = if opts.use_cache {
        load_cache(&cache_path)
    } else {
        BTreeMap::new()
    };

    let mut facts_list: Vec<FileFacts> = Vec::new();
    let mut cache_entries: Vec<(String, Value)> = Vec::new();
    let (mut parsed, mut cached) = (0usize, 0usize);
    for (class, path) in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|err| format!("failed to read {}: {err}", path.display()))?;
        let hash = format!("{:016x}", content_hash(&src));
        let from_cache = old_cache
            .get(&class.rel_path)
            .filter(|(h, _)| *h == hash)
            .and_then(|(_, v)| FileFacts::from_json(v));
        let facts = match from_cache {
            Some(facts) => {
                cached += 1;
                facts
            }
            None => {
                parsed += 1;
                parse_file(class, &src)
            }
        };
        cache_entries.push((
            class.rel_path.clone(),
            obj(vec![("hash", Value::Str(hash)), ("facts", facts.to_json())]),
        ));
        facts_list.push(facts);
    }
    if opts.use_cache {
        write_cache(&cache_path, cache_entries);
    }

    let mut findings = Vec::new();
    let mut rule_times_us = Vec::new();
    for rule in ANALYZE_RULES {
        if opts.rule.as_deref().is_some_and(|only| only != rule) {
            continue;
        }
        let t0 = Instant::now();
        let mut batch = match rule {
            "lock_order" => rule_lock_order(&facts_list),
            "unit_flow" => rule_unit_flow(&facts_list),
            "counter_pairing" => rule_counter_pairing(&facts_list),
            "ipc_exhaustive" => rule_ipc_exhaustive(&facts_list),
            _ => Vec::new(),
        };
        rule_times_us.push((rule.to_string(), t0.elapsed().as_micros()));
        findings.append(&mut batch);
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup();

    let baseline = load_baseline(&root.join("analyze-baseline.json"));
    let current: BTreeSet<(String, String, String)> = findings
        .iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.message.clone()))
        .collect();
    let new_findings: Vec<Finding> = findings
        .iter()
        .filter(|f| !baseline.contains(&(f.rule.to_string(), f.path.clone(), f.message.clone())))
        .cloned()
        .collect();
    let stale_baseline: Vec<_> = baseline
        .iter()
        .filter(|e| !current.contains(e))
        .cloned()
        .collect();
    let baselined = findings.len() - new_findings.len();

    Ok(Analysis {
        findings,
        new_findings,
        baselined,
        stale_baseline,
        files: files.len(),
        parsed,
        cached,
        rule_times_us,
    })
}

/// Rewrites `analyze-baseline.json` to contain exactly `findings`.
pub fn write_baseline(root: &Path, findings: &[Finding]) -> std::io::Result<()> {
    let entries: Vec<Value> = findings
        .iter()
        .map(|f| {
            obj(vec![
                ("rule", Value::Str(f.rule.to_string())),
                ("path", Value::Str(f.path.clone())),
                ("message", Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("schema", Value::Num(1)),
        ("findings", Value::Arr(entries)),
    ]);
    std::fs::write(root.join("analyze-baseline.json"), doc.render() + "\n")
}

/// Baseline entries as `(rule, path, message)` keys. Line numbers are
/// deliberately not part of the key so unrelated edits above a
/// baselined finding do not resurrect it.
fn load_baseline(path: &Path) -> BTreeSet<(String, String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeSet::new();
    };
    let Some(doc) = json::parse(&text) else {
        return BTreeSet::new();
    };
    doc.get("findings")
        .and_then(Value::as_arr)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| {
                    Some((
                        e.get("rule")?.as_str()?.to_string(),
                        e.get("path")?.as_str()?.to_string(),
                        e.get("message")?.as_str()?.to_string(),
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Cached facts keyed by rel path: `(content hash, facts value)`.
fn load_cache(path: &Path) -> BTreeMap<String, (String, Value)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Some(doc) = json::parse(&text) else {
        return BTreeMap::new();
    };
    if doc.get("schema").and_then(Value::as_num) != Some(CACHE_SCHEMA) {
        return BTreeMap::new();
    }
    doc.get("files")
        .and_then(Value::as_obj)
        .map(|files| {
            files
                .iter()
                .filter_map(|(rel, entry)| {
                    let hash = entry.get("hash")?.as_str()?.to_string();
                    let facts = entry.get("facts")?.clone();
                    Some((rel.clone(), (hash, facts)))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Best-effort cache write; failures never fail the pass.
fn write_cache(path: &Path, entries: Vec<(String, Value)>) {
    let doc = obj(vec![
        ("schema", Value::Num(CACHE_SCHEMA)),
        ("files", Value::Obj(entries.into_iter().collect())),
    ]);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, doc.render());
}

fn rule_id(name: &str) -> &'static str {
    ANALYZE_RULES
        .iter()
        .find(|r| **r == name)
        .copied()
        .unwrap_or("lock_order")
}

fn finding(rule: &str, path: &str, line: usize, message: String) -> Finding {
    Finding {
        rule: rule_id(rule),
        path: path.to_string(),
        line,
        message,
    }
}

fn facts_for<'a>(files: &'a [FileFacts], path: &str) -> Option<&'a FileFacts> {
    files.iter().find(|f| f.rel_path == path)
}

// ---------------------------------------------------------------------
// lock_order
// ---------------------------------------------------------------------

fn rule_lock_order(files: &[FileFacts]) -> Vec<Finding> {
    let g = Graph::build(files);
    let mut out = Vec::new();

    for cycle in lock_cycles(&g.lock_edges()) {
        // A waiver on any acquisition site in the cycle breaks it.
        let waived = cycle.iter().any(|e| {
            facts_for(files, &e.rel_path).is_some_and(|f| f.allowed("lock_order", e.line))
        });
        if waived {
            continue;
        }
        let chain = cycle
            .iter()
            .map(|e| match &e.via {
                Some(via) => format!("{} -> {} (via {via})", e.held, e.acquired),
                None => format!("{} -> {}", e.held, e.acquired),
            })
            .collect::<Vec<_>>()
            .join(", ");
        let anchor = &cycle[0];
        out.push(finding(
            "lock_order",
            &anchor.rel_path,
            anchor.line,
            format!("lock acquisition-order cycle (potential deadlock): {chain}"),
        ));
    }

    let mut seen = BTreeSet::new();
    for (lock, block, path, line, via) in g.blocking_while_held() {
        if !seen.insert((lock.clone(), block.clone(), path.clone(), line)) {
            continue;
        }
        if facts_for(files, &path).is_some_and(|f| f.allowed("lock_order", line)) {
            continue;
        }
        let how = match via {
            Some(via) => format!("through `{via}`"),
            None => "directly".to_string(),
        };
        out.push(finding(
            "lock_order",
            &path,
            line,
            format!(
                "lock `{lock}` is held across blocking `{block}()` {how}; \
                 drop the guard before blocking or waive with a reason"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// unit_flow
// ---------------------------------------------------------------------

fn rule_unit_flow(files: &[FileFacts]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        for (line, message) in &f.unit_findings {
            if !f.allowed("unit_flow", *line) {
                out.push(finding("unit_flow", &f.rel_path, *line, message.clone()));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// counter_pairing
// ---------------------------------------------------------------------

fn rule_counter_pairing(files: &[FileFacts]) -> Vec<Finding> {
    let mut out = Vec::new();
    // Registered metric names across every analyzed crate (the
    // "rendered on /metrics" witness).
    let all_metrics: Vec<&(String, usize, bool)> =
        files.iter().flat_map(|f| &f.metric_names).collect();
    // Mutations and declared members, per crate.
    let mut mutated: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut members: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in files {
        for (m, _) in &f.mutations {
            mutated.entry(&f.crate_dir).or_default().insert(m);
        }
        for decl in &f.conserves {
            for m in &decl.members {
                members.entry(&f.crate_dir).or_default().insert(m);
            }
        }
    }

    for f in files {
        for decl in &f.conserves {
            if f.allowed("counter_pairing", decl.line) {
                continue;
            }
            for member in &decl.members {
                let is_mutated = mutated.get(f.crate_dir.as_str()).is_some_and(|set| {
                    set.iter()
                        .any(|m| *m == member || m.contains(member.as_str()))
                });
                if !is_mutated {
                    out.push(finding(
                        "counter_pairing",
                        &f.rel_path,
                        decl.line,
                        format!(
                            "conserve({}) member `{member}` is never incremented in \
                             crate `{}` — one side of the ledger can drift silently",
                            decl.family, f.crate_dir
                        ),
                    ));
                }
                let is_rendered = all_metrics
                    .iter()
                    .any(|(name, _, _)| name.contains(member.as_str()));
                if !is_rendered {
                    out.push(finding(
                        "counter_pairing",
                        &f.rel_path,
                        decl.line,
                        format!(
                            "conserve({}) member `{member}` is not rendered on /metrics \
                             (no registered metric name contains it)",
                            decl.family
                        ),
                    ));
                }
            }
        }
    }

    // Sweep: registered counters that look like ledger sides must be
    // covered by a conserve() declaration in their crate.
    for f in files {
        for (name, line, is_counter) in &f.metric_names {
            if !is_counter {
                continue;
            }
            let Some(token) = LEDGER_TOKENS.iter().find(|t| name.contains(*t)) else {
                continue;
            };
            let covered = members
                .get(f.crate_dir.as_str())
                .is_some_and(|set| set.iter().any(|m| name.contains(*m)));
            if !covered && !f.allowed("counter_pairing", *line) {
                out.push(finding(
                    "counter_pairing",
                    &f.rel_path,
                    *line,
                    format!(
                        "counter `{name}` carries ledger token `{token}` but no \
                         conserve() declaration in crate `{}` covers it — declare \
                         the family or waive with a reason",
                        f.crate_dir
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// ipc_exhaustive
// ---------------------------------------------------------------------

/// `(crate, enum, sides)` triples the rule enforces. Both ends of the
/// cluster IPC must name every constructed `Message` variant.
const IPC_ENUMS: [(&str, &str, [&str; 2]); 1] = [("cluster", "Message", ["coordinator", "worker"])];

fn rule_ipc_exhaustive(files: &[FileFacts]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (crate_dir, enum_name, sides) in IPC_ENUMS {
        // The declaration site anchors findings.
        let decl = files.iter().find_map(|f| {
            if f.crate_dir != crate_dir {
                return None;
            }
            f.enums
                .iter()
                .find(|(name, _, _)| name == enum_name)
                .map(|(_, variants, line)| (f, variants, *line))
        });
        let Some((decl_file, variants, enum_line)) = decl else {
            continue;
        };
        let constructed: BTreeSet<&str> = files
            .iter()
            .flat_map(|f| &f.constructs)
            .filter(|(e, _, _)| e == enum_name)
            .map(|(_, v, _)| v.as_str())
            .collect();
        for variant in variants {
            if !constructed.contains(variant.as_str()) {
                continue;
            }
            let variant_line =
                variant_decl_line(decl_file, enum_name, variant).unwrap_or(enum_line);
            if decl_file.allowed("ipc_exhaustive", variant_line) {
                continue;
            }
            for side in sides {
                let matched = files.iter().any(|f| {
                    f.crate_dir == crate_dir
                        && f.rel_path
                            .rsplit('/')
                            .next()
                            .is_some_and(|file| file.starts_with(side))
                        && f.matches.iter().any(|m| {
                            m.enums.iter().any(|e| e == enum_name)
                                && m.arms.iter().any(|a| a == variant)
                        })
                });
                if !matched {
                    out.push(finding(
                        "ipc_exhaustive",
                        &decl_file.rel_path,
                        variant_line,
                        format!(
                            "{enum_name}::{variant} is constructed but never matched \
                             non-wildcard on the {side} side of crate `{crate_dir}` — \
                             a wildcard arm would silently swallow it"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Line of one variant inside the enum declaration, for precise
/// anchoring (and per-variant waivers).
fn variant_decl_line(f: &FileFacts, enum_name: &str, variant: &str) -> Option<usize> {
    // Re-derivable from facts alone: the enum's line plus the variant
    // index is not reliable, so fall back to construct sites in the
    // declaring file (decode() constructs every variant there).
    f.enums
        .iter()
        .find(|(name, _, _)| name == enum_name)
        .map(|(_, _, line)| *line)?;
    f.constructs
        .iter()
        .find(|(e, v, _)| e == enum_name && v == variant)
        .map(|(_, _, line)| *line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::classify;

    fn facts(path: &str, src: &str) -> FileFacts {
        parse_file(&classify(path), src)
    }

    #[test]
    fn lock_order_flags_cycles_and_blocking() {
        let files = vec![
            facts(
                "crates/monitor/src/a.rs",
                "fn ab(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                     let ga = a.lock().unwrap();\n\
                     let gb = b.lock().unwrap();\n\
                 }\n\
                 fn holds(rx: &Mutex<Receiver<u8>>) {\n\
                     let g = rx.lock().unwrap();\n\
                     let item = g.recv();\n\
                 }\n",
            ),
            facts(
                "crates/monitor/src/b.rs",
                "fn ba(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                     let gb = b.lock().unwrap();\n\
                     let ga = a.lock().unwrap();\n\
                 }\n",
            ),
        ];
        let found = rule_lock_order(&files);
        assert!(
            found.iter().any(|f| f.message.contains("cycle")),
            "{found:?}"
        );
        assert!(found
            .iter()
            .any(|f| f.message.contains("held across blocking `recv()`")));
    }

    #[test]
    fn lock_order_waiver_suppresses() {
        let files = vec![facts(
            "crates/monitor/src/a.rs",
            "fn holds(rx: &Mutex<Receiver<u8>>) {\n\
                 let g = rx.lock().unwrap();\n\
                 // lint: allow(lock_order) shared hand-off; watchdog covers stalls\n\
                 let item = g.recv();\n\
             }\n",
        )];
        assert!(rule_lock_order(&files).is_empty());
    }

    #[test]
    fn counter_pairing_catches_missing_increment_and_render() {
        let files = vec![facts(
            "crates/monitor/src/m.rs",
            "// conserve(queue): enqueued = dequeued + depth\n\
             fn wire(r: &Registry) {\n\
                 r.counter(\"m_enqueued_total\", \"h\");\n\
                 r.counter(\"m_dequeued_total\", \"h\");\n\
             }\n\
             fn bump(s: &S) { s.enqueued.inc(); s.dequeued.inc(); }\n",
        )];
        let found = rule_counter_pairing(&files);
        // `depth` is neither mutated nor rendered: two findings.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("`depth`")));
    }

    #[test]
    fn counter_pairing_sweep_catches_undeclared_ledger_counter() {
        let files = vec![facts(
            "crates/cluster/src/m.rs",
            "fn wire(r: &Registry) {\n\
                 let c = r.counter(\"cluster_frames_dropped_total\", \"h\");\n\
                 c.inc();\n\
             }\n",
        )];
        let found = rule_counter_pairing(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("_dropped"));
    }

    #[test]
    fn counter_pairing_clean_family_is_silent() {
        let files = vec![facts(
            "crates/cluster/src/m.rs",
            "// conserve(frames): frames_sent = frames_acked + frames_dropped\n\
             fn wire(r: &Registry, s: &mut S) {\n\
                 r.counter(\"cluster_frames_sent_total\", \"h\");\n\
                 r.counter(\"cluster_frames_acked_total\", \"h\");\n\
                 r.counter(\"cluster_frames_dropped_total\", \"h\");\n\
                 s.frames_sent += 1;\n\
                 s.frames_acked += 1;\n\
                 s.frames_dropped += 1;\n\
             }\n",
        )];
        assert!(rule_counter_pairing(&files).is_empty());
    }

    #[test]
    fn ipc_exhaustive_requires_both_sides() {
        let message = facts(
            "crates/cluster/src/message.rs",
            "pub enum Message { Ping(u64), Pong(u64) }\n\
             fn decode() -> Message { Message::Ping(0) }\n\
             fn decode2() -> Message { Message::Pong(0) }\n",
        );
        let coordinator = facts(
            "crates/cluster/src/coordinator.rs",
            "fn handle(m: Message) {\n\
                 match m { Message::Ping(s) => {}, Message::Pong(s) => {} }\n\
             }\n",
        );
        // Worker matches Ping but hides Pong behind a wildcard.
        let worker = facts(
            "crates/cluster/src/worker.rs",
            "fn handle(m: Message) {\n\
                 match m { Message::Ping(s) => {}, _ => {} }\n\
             }\n",
        );
        let found = rule_ipc_exhaustive(&[message, coordinator, worker]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("Message::Pong"));
        assert!(found[0].message.contains("worker side"));
    }

    #[test]
    fn ipc_exhaustive_ignores_unconstructed_variants() {
        let message = facts(
            "crates/cluster/src/message.rs",
            "pub enum Message { Ping(u64), Reserved }\n\
             fn decode() -> Message { Message::Ping(0) }\n",
        );
        let coordinator = facts(
            "crates/cluster/src/coordinator.rs",
            "fn handle(m: Message) { match m { Message::Ping(s) => {}, _ => {} } }\n",
        );
        let worker = facts(
            "crates/cluster/src/worker.rs",
            "fn handle(m: Message) { match m { Message::Ping(s) => {}, _ => {} } }\n",
        );
        assert!(rule_ipc_exhaustive(&[message, coordinator, worker]).is_empty());
    }

    #[test]
    fn baseline_round_trips() {
        let dir = std::env::temp_dir().join(format!("xtask-analyze-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = finding("unit_flow", "crates/monitor/src/x.rs", 7, "msg".into());
        write_baseline(&dir, std::slice::from_ref(&f)).unwrap();
        let loaded = load_baseline(&dir.join("analyze-baseline.json"));
        assert!(loaded.contains(&(
            "unit_flow".to_string(),
            "crates/monitor/src/x.rs".to_string(),
            "msg".to_string()
        )));
        std::fs::remove_dir_all(&dir).ok();
    }
}
