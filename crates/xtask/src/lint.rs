//! Token-level lint rules enforcing the workspace invariants.
//!
//! Seven rules, each with a machine-readable id (stable — CI and the
//! allowlist mechanism key on them):
//!
//! | id | invariant |
//! |----|-----------|
//! | `no_panic` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | `micros_math` | no raw integer arithmetic on microsecond values outside `flow::time` |
//! | `ordering_comment` | every atomic `Ordering::*` use carries an `// ordering:` justification |
//! | `bounded_queue` | no unbounded channels in `monitor`; `#[bounded]`-tagged queues grow only through their choke-point method |
//! | `heartbeat_touch` | every `loop` in a `monitor` worker function refreshes the shard heartbeat at the top of each iteration |
//! | `forbid_unsafe` | every crate root declares `#![forbid(unsafe_code)]` |
//! | `bounded_ipc` | boundary-input code (`cluster` IPC, the `scenario` DSL, the `experiments` serve layer) never allocates or reads unboundedly from outside input: no unbounded channels, no `read_to_end`-style reads, every `with_capacity` carries a `.min(..)`/`MAX_*` cap witness |
//!
//! A finding on line `L` is suppressed by a comment on `L` or `L-1` of
//! the form `// lint: allow(<rule>) <reason>` — the reason is
//! mandatory; an empty reason keeps the finding. DESIGN.md §"Static
//! analysis & invariants" documents each rule's rationale.

use crate::lexer::{Lexed, Tok, TokKind};

/// The stable ids of every lint rule, in report order.
pub const RULES: [&str; 7] = [
    "no_panic",
    "micros_math",
    "ordering_comment",
    "bounded_queue",
    "heartbeat_touch",
    "forbid_unsafe",
    "bounded_ipc",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// How a file participates in the lint pass, derived from its path.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Directory name of the owning crate under `crates/`, or `"root"`
    /// for the facade crate.
    pub crate_dir: String,
    /// `true` for code reachable from the crate's library target
    /// (under `src/`, not `main.rs`/`src/bin`); panics and raw µs math
    /// are only forbidden here.
    pub is_library: bool,
    /// `true` for `src/lib.rs` / `src/main.rs` — the files that must
    /// carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Runs every applicable rule over one file. The driver binary lexes
/// once and calls [`run_rule`] per rule instead (for timing); this
/// wrapper keeps the unit tests' entry point.
#[cfg(test)]
pub fn lint_file(class: &FileClass, src: &str) -> Vec<Finding> {
    let lexed = crate::lexer::lex(src);
    let test_mask = test_region_mask(&lexed.toks);
    let mut findings = Vec::new();
    for rule in RULES {
        run_rule(rule, class, &lexed, &test_mask, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup();
    findings
}

/// Runs one rule (by id) over a pre-lexed file, applying the same
/// file-class gating as [`lint_file`]. Lets the driver lex each file
/// once and time rules individually. Unknown ids are a no-op.
pub fn run_rule(
    rule: &str,
    class: &FileClass,
    lexed: &Lexed,
    test_mask: &[bool],
    findings: &mut Vec<Finding>,
) {
    match rule {
        "no_panic" if class.is_library => rule_no_panic(class, lexed, test_mask, findings),
        "micros_math" if class.is_library && class.rel_path != "crates/flow/src/time.rs" => {
            rule_micros_math(class, lexed, test_mask, findings)
        }
        "ordering_comment" => rule_ordering_comment(class, lexed, findings),
        "bounded_queue" if class.crate_dir == "monitor" && class.rel_path.contains("/src/") => {
            rule_bounded_queue(class, lexed, test_mask, findings)
        }
        "heartbeat_touch" if class.crate_dir == "monitor" && class.rel_path.contains("/src/") => {
            rule_heartbeat_touch(class, lexed, test_mask, findings)
        }
        "bounded_ipc" if bounded_ipc_scope(class) => {
            rule_bounded_ipc(class, lexed, test_mask, findings)
        }
        "forbid_unsafe" if class.is_crate_root => rule_forbid_unsafe(class, lexed, findings),
        _ => {}
    }
}

/// Library files whose inputs cross a process or trust boundary and so
/// fall under [`rule_bounded_ipc`]: the `cluster` IPC layer (worker
/// stdout frames), the `scenario` crate (DSL text from files and HTTP
/// bodies), and the `experiments` serve layer (HTTP request bodies,
/// snapshot files, session channels).
fn bounded_ipc_scope(class: &FileClass) -> bool {
    (matches!(class.crate_dir.as_str(), "cluster" | "scenario") && class.rel_path.contains("/src/"))
        || class.rel_path.starts_with("crates/experiments/src/serve")
}

/// `true` when a `// lint: allow(<rule>) <reason>` comment with a
/// non-empty reason covers `line` (same line or the line above).
fn allowed(lexed: &Lexed, rule: &str, line: usize) -> bool {
    let marker = format!("lint: allow({rule})");
    lexed.comments.iter().any(|(l, text)| {
        (*l == line || *l + 1 == line)
            && text
                .find(&marker)
                .map(|at| !text[at + marker.len()..].trim().is_empty())
                == Some(true)
    })
}

fn push(
    findings: &mut Vec<Finding>,
    lexed: &Lexed,
    rule: &'static str,
    class: &FileClass,
    line: usize,
    message: String,
) {
    if !allowed(lexed, rule, line) {
        findings.push(Finding {
            rule,
            path: class.rel_path.clone(),
            line,
            message,
        });
    }
}

/// Marks every token inside a `#[test]` item or `#[cfg(test)]` item
/// body (the attribute's item extends to the matching `}`, or to the
/// first `;` for bodiless items). `#[cfg(not(test))]` is real code and
/// is not masked.
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let close = match_forward(toks, i + 1, '[', ']');
            let attr = &toks[i + 2..close.min(toks.len())];
            let is_test =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            if is_test {
                if let Some(end) = item_end(toks, close + 1) {
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the closing delimiter matching the opener at `open`.
/// Returns `toks.len() - 1` for unbalanced input.
pub(crate) fn match_forward(toks: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Finds where the item starting at `from` ends: the matching `}` of
/// its body, or the first top-level `;` for bodiless items. Leading
/// extra attributes are skipped.
pub(crate) fn item_end(toks: &[Tok], mut from: usize) -> Option<usize> {
    while from < toks.len() {
        if toks[from].is_punct('#') && from + 1 < toks.len() && toks[from + 1].is_punct('[') {
            from = match_forward(toks, from + 1, '[', ']') + 1;
            continue;
        }
        break;
    }
    let mut j = from;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            return Some(match_forward(toks, j, '{', '}'));
        }
        if toks[j].is_punct(';') {
            return Some(j);
        }
        // Skip parenthesised/bracketed groups so a `;` or `{` inside
        // them (e.g. in an array length expression) is not mistaken
        // for the item's own.
        if toks[j].is_punct('(') {
            j = match_forward(toks, j, '(', ')') + 1;
            continue;
        }
        if toks[j].is_punct('[') {
            j = match_forward(toks, j, '[', ']') + 1;
            continue;
        }
        j += 1;
    }
    None
}

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

fn rule_no_panic(class: &FileClass, lexed: &Lexed, mask: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let is_method = PANIC_METHODS.contains(&name)
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(');
        let is_macro =
            PANIC_MACROS.contains(&name) && i + 1 < toks.len() && toks[i + 1].is_punct('!');
        if is_method || is_macro {
            let call = if is_macro {
                format!("{name}!")
            } else {
                format!(".{name}()")
            };
            push(
                findings,
                lexed,
                "no_panic",
                class,
                toks[i].line,
                format!(
                    "`{call}` in non-test library code; return a Result/Option or \
                     justify with `// lint: allow(no_panic) <reason>`"
                ),
            );
        }
    }
}

const ARITH: [char; 5] = ['+', '-', '*', '/', '%'];

fn is_arith(t: &Tok) -> bool {
    ARITH.iter().any(|&c| t.is_punct(c))
}

fn rule_micros_math(class: &FileClass, lexed: &Lexed, mask: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let msg = "raw integer arithmetic on a microsecond value outside `flow::time`; \
               use `Timestamp`/`TimeDelta` operators or justify with \
               `// lint: allow(micros_math) <reason>`";
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `<expr>.as_micros()` adjacent to an arithmetic operator.
        if toks[i].is_ident("as_micros")
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 2 < toks.len()
            && toks[i + 1].is_punct('(')
            && toks[i + 2].is_punct(')')
        {
            let after = toks.get(i + 3);
            let operand_after = after.map(is_arith) == Some(true);
            let start = receiver_start(toks, i - 1);
            let operand_before = start > 0 && is_arith(&toks[start - 1]);
            if operand_after || operand_before {
                push(
                    findings,
                    lexed,
                    "micros_math",
                    class,
                    toks[i].line,
                    msg.to_string(),
                );
            }
        }
        // `from_micros(<expr with top-level arithmetic>)`.
        if toks[i].is_ident("from_micros") && i + 1 < toks.len() && toks[i + 1].is_punct('(') {
            let close = match_forward(toks, i + 1, '(', ')');
            let mut depth = 0usize;
            for (j, tok) in toks.iter().enumerate().take(close).skip(i + 1) {
                match () {
                    _ if tok.is_punct('(') => depth += 1,
                    _ if tok.is_punct(')') => depth -= 1,
                    // A leading unary minus is a sign, not arithmetic.
                    _ if depth == 1 && is_arith(tok) && !(j == i + 2 && tok.is_punct('-')) => {
                        push(
                            findings,
                            lexed,
                            "micros_math",
                            class,
                            tok.line,
                            msg.to_string(),
                        );
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Walks a method-call chain backwards from the `.` at `dot` to the
/// first token of the receiver expression, e.g. from the final `.` of
/// `c * s.timestamp(i).as_micros()` back to `s`.
fn receiver_start(toks: &[Tok], dot: usize) -> usize {
    let mut j = dot;
    loop {
        if j == 0 {
            return 0;
        }
        let mut k = j - 1;
        // Trailing call/index groups of this chain component.
        while toks[k].is_punct(')') || toks[k].is_punct(']') {
            let open = if toks[k].is_punct(')') {
                match_backward(toks, k, '(', ')')
            } else {
                match_backward(toks, k, '[', ']')
            };
            if open == 0 {
                return 0;
            }
            k = open - 1;
        }
        if matches!(toks[k].kind, TokKind::Ident | TokKind::Lit) {
            // The component's name, possibly `path::qualified`.
            let mut s = k;
            while s >= 3
                && toks[s - 1].is_punct(':')
                && toks[s - 2].is_punct(':')
                && toks[s - 3].kind == TokKind::Ident
            {
                s -= 3;
            }
            j = s;
        } else {
            // Bare parenthesised receiver such as `(a + b)`.
            return k + 1;
        }
        if j >= 1 && toks[j - 1].is_punct('.') {
            j -= 1;
            continue;
        }
        return j;
    }
}

/// Index of the opening delimiter matching the closer at `close`.
fn match_backward(toks: &[Tok], close: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if toks[j].is_punct(close_c) {
            depth += 1;
        } else if toks[j].is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn rule_ordering_comment(class: &FileClass, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") || i + 3 >= toks.len() {
            continue;
        }
        if !(toks[i + 1].is_punct(':') && toks[i + 2].is_punct(':')) {
            continue;
        }
        let variant = &toks[i + 3];
        if variant.kind != TokKind::Ident || !ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        let line = toks[i].line;
        let justified =
            (line.saturating_sub(2)..=line).any(|l| lexed.comment_on_line_contains(l, "ordering:"));
        if !justified {
            push(
                findings,
                lexed,
                "ordering_comment",
                class,
                line,
                format!(
                    "`Ordering::{}` without an `// ordering:` justification comment \
                     (same line or up to two lines above)",
                    variant.text
                ),
            );
        }
    }
}

fn rule_bounded_queue(
    class: &FileClass,
    lexed: &Lexed,
    mask: &[bool],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    // (a) Unbounded `mpsc::channel` — monitor queues must be
    // `sync_channel` (bounded) or carry a justification.
    for i in 0..toks.len() {
        if mask[i] || !toks[i].is_ident("channel") {
            continue;
        }
        let call_like = toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
            || (toks.get(i + 1).map(|t| t.is_punct(':')) == Some(true)
                && toks.get(i + 2).map(|t| t.is_punct(':')) == Some(true));
        if call_like {
            push(
                findings,
                lexed,
                "bounded_queue",
                class,
                toks[i].line,
                "unbounded `mpsc::channel` in the monitor crate; use a bounded \
                 `sync_channel` or justify with `// lint: allow(bounded_queue) <reason>`"
                    .to_string(),
            );
        }
    }
    // Collect `#[bounded(via = "method")]` tag comments and the field
    // each one annotates (the first identifier on a following line).
    let mut tags: Vec<(String, String, usize)> = Vec::new(); // (field, via, tag_line)
    for (line, text) in &lexed.comments {
        let Some(at) = text.find("#[bounded(via") else {
            continue;
        };
        let rest = &text[at..];
        let via = rest.split('"').nth(1).unwrap_or_default().to_string();
        let field = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.line > *line && t.line <= *line + 2)
            .map(|t| t.text.clone());
        if let (Some(field), false) = (field, via.is_empty()) {
            tags.push((field, via, *line));
        }
    }
    // (b) Pushes into tagged queue fields outside their choke point.
    let mut fn_stack: Vec<(String, usize)> = Vec::new(); // (fn name, depth of its `{`)
    let mut pending_fn: Option<String> = None;
    let mut depth = 0usize;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("fn") {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokKind::Ident {
                    pending_fn = Some(name.text.clone());
                }
            }
        } else if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                fn_stack.push((name, depth));
            }
        } else if t.is_punct('}') {
            if fn_stack.last().map(|(_, d)| *d) == Some(depth) {
                fn_stack.pop();
            }
            depth = depth.saturating_sub(1);
        } else if !mask[i]
            && t.is_ident("self")
            && i + 5 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 3].is_punct('.')
            && toks[i + 5].is_punct('(')
        {
            let field = &toks[i + 2];
            let method = &toks[i + 4];
            const GROW: [&str; 6] = [
                "push",
                "push_back",
                "push_front",
                "extend",
                "append",
                "insert",
            ];
            if field.kind == TokKind::Ident && GROW.contains(&method.text.as_str()) {
                let tag = tags.iter().find(|(f, _, _)| *f == field.text);
                if let Some((_, via, _)) = tag {
                    if fn_stack.last().map(|(n, _)| n.as_str()) != Some(via.as_str()) {
                        push(
                            findings,
                            lexed,
                            "bounded_queue",
                            class,
                            t.line,
                            format!(
                                "`self.{}.{}(..)` outside `{via}`, the choke point declared \
                                 by its `#[bounded(via = \"{via}\")]` tag",
                                field.text, method.text
                            ),
                        );
                    }
                }
            }
        }
    }
    // (c) Every VecDeque field must carry a tag (or an allow).
    for i in 0..toks.len() {
        if mask[i] || !toks[i].is_ident("struct") {
            continue;
        }
        // Find the struct body `{`, skipping generics; `(` or `;`
        // means a tuple/unit struct with no named fields.
        let mut j = i + 1;
        let mut angle = 0i32;
        let body = loop {
            if j >= toks.len() {
                break None;
            }
            let t = &toks[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 && t.is_punct('{') {
                break Some(j);
            } else if angle == 0 && (t.is_punct('(') || t.is_punct(';')) {
                break None;
            }
            j += 1;
        };
        let Some(open) = body else { continue };
        let close = match_forward(toks, open, '{', '}');
        let mut k = open + 1;
        let mut brace = 1i32;
        while k < close {
            let t = &toks[k];
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
            } else if brace == 1
                && t.kind == TokKind::Ident
                && toks.get(k + 1).map(|n| n.is_punct(':')) == Some(true)
                && toks.get(k + 2).map(|n| n.is_punct(':')) != Some(true)
            {
                // Field `t.text` — scan its type up to the next
                // top-level comma or the struct's closing brace.
                let mut m = k + 2;
                let mut inner = 0i32;
                let mut has_deque = false;
                while m < close {
                    let u = &toks[m];
                    if u.is_punct('<') || u.is_punct('(') || u.is_punct('[') {
                        inner += 1;
                    } else if u.is_punct('>') || u.is_punct(')') || u.is_punct(']') {
                        inner -= 1;
                    } else if inner == 0 && u.is_punct(',') {
                        break;
                    } else if u.is_ident("VecDeque") {
                        has_deque = true;
                    }
                    m += 1;
                }
                if has_deque {
                    let tagged = tags.iter().any(|(f, _, _)| *f == t.text)
                        || (t.line.saturating_sub(2)..=t.line)
                            .any(|l| lexed.comment_on_line_contains(l, "#[bounded(via"));
                    if !tagged {
                        push(
                            findings,
                            lexed,
                            "bounded_queue",
                            class,
                            t.line,
                            format!(
                                "queue field `{}: VecDeque<..>` has no `#[bounded(via = \
                                 \"<method>\")]` tag naming its choke-point method",
                                t.text
                            ),
                        );
                    }
                }
                k = m;
                continue;
            }
            k += 1;
        }
    }
}

/// Boundary-input code decodes bytes that originate outside the
/// process — worker stdout frames in `crates/cluster`, DSL text and
/// HTTP bodies in `crates/scenario`, request bodies and snapshot files
/// in the `experiments` serve layer — and must treat them as hostile
/// (a corrupted or wedged peer must not take the host with it). Three
/// unboundedness vectors are forbidden in that scope (see
/// [`bounded_ipc_scope`]): unbounded `mpsc::channel` (a dead
/// coordinator loop lets a reader thread buffer without limit),
/// `read_to_end`/`read_to_string` (a stuck peer pins memory until the
/// pipe closes, which may be never), and `with_capacity` calls whose
/// size expression shows no `.min(..)` or `MAX_*` cap witness (a forged
/// length prefix must not size an allocation).
fn rule_bounded_ipc(class: &FileClass, lexed: &Lexed, mask: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if name == "channel" {
            let call_like = toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
                || (toks.get(i + 1).map(|t| t.is_punct(':')) == Some(true)
                    && toks.get(i + 2).map(|t| t.is_punct(':')) == Some(true));
            if call_like {
                push(
                    findings,
                    lexed,
                    "bounded_ipc",
                    class,
                    toks[i].line,
                    "unbounded `mpsc::channel` in boundary-input code; use a bounded \
                     `sync_channel` or justify with `// lint: allow(bounded_ipc) <reason>`"
                        .to_string(),
                );
            }
        }
        if (name == "read_to_end" || name == "read_to_string")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
        {
            push(
                findings,
                lexed,
                "bounded_ipc",
                class,
                toks[i].line,
                format!(
                    "`.{name}()` reads unboundedly from the pipe; read length-prefixed \
                     frames into fixed-size buffers or justify with \
                     `// lint: allow(bounded_ipc) <reason>`"
                ),
            );
        }
        if name == "with_capacity" && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true) {
            let close = match_forward(toks, i + 1, '(', ')');
            let witnessed = toks[i + 2..close.min(toks.len())].iter().any(|t| {
                t.is_ident("min") || (t.kind == TokKind::Ident && t.text.contains("MAX_"))
            });
            if !witnessed {
                push(
                    findings,
                    lexed,
                    "bounded_ipc",
                    class,
                    toks[i].line,
                    "`with_capacity` sized without a `.min(..)`/`MAX_*` cap witness; a \
                     wire-derived length must be clamped before it sizes an allocation, \
                     or justify with `// lint: allow(bounded_ipc) <reason>`"
                        .to_string(),
                );
            }
        }
    }
}

/// A stall watchdog is only as honest as the heartbeats feeding it: a
/// worker iteration path that forgets to refresh its shard heartbeat
/// shows up as a false "stalled" flag under load. Every `loop` inside a
/// `fn worker*` in the monitor crate must therefore call
/// `touch_heartbeat` *as its first statement*, so each arm of the loop
/// body — dequeue, fault handling, decode — passes through the refresh
/// on every iteration.
fn rule_heartbeat_touch(
    class: &FileClass,
    lexed: &Lexed,
    mask: &[bool],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    let mut i = 0;
    while i < toks.len() {
        let named_worker = toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .map(|t| t.kind == TokKind::Ident && t.text.starts_with("worker"))
                == Some(true);
        if mask[i] || !named_worker {
            i += 1;
            continue;
        }
        let Some(body_end) = item_end(toks, i) else {
            i += 1;
            continue;
        };
        let Some(open) = (i..body_end).find(|&j| toks[j].is_punct('{')) else {
            i = body_end + 1;
            continue;
        };
        for j in open + 1..body_end {
            if !(toks[j].is_ident("loop") && toks.get(j + 1).map(|t| t.is_punct('{')) == Some(true))
            {
                continue;
            }
            let close = match_forward(toks, j + 1, '{', '}');
            // The refresh must come before the first statement boundary
            // (`;`) or nested block (`{`) — i.e. be the loop's first
            // statement — so no iteration path can skip it.
            let touched = toks[j + 2..close]
                .iter()
                .take_while(|t| !t.is_punct(';') && !t.is_punct('{'))
                .any(|t| t.is_ident("touch_heartbeat"));
            if !touched {
                push(
                    findings,
                    lexed,
                    "heartbeat_touch",
                    class,
                    toks[j].line,
                    "worker loop does not refresh its shard heartbeat; call \
                     `touch_heartbeat()` as the loop's first statement or justify \
                     with `// lint: allow(heartbeat_touch) <reason>`"
                        .to_string(),
                );
            }
        }
        i = body_end + 1;
    }
}

fn rule_forbid_unsafe(class: &FileClass, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let present = (0..toks.len()).any(|i| {
        toks[i].is_ident("forbid")
            && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
            && toks.get(i + 2).map(|t| t.is_ident("unsafe_code")) == Some(true)
    });
    if !present {
        push(
            findings,
            lexed,
            "forbid_unsafe",
            class,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class() -> FileClass {
        FileClass {
            rel_path: "crates/demo/src/lib.rs".to_string(),
            crate_dir: "demo".to_string(),
            is_library: true,
            is_crate_root: true,
        }
    }

    fn monitor_class() -> FileClass {
        FileClass {
            rel_path: "crates/monitor/src/engine.rs".to_string(),
            crate_dir: "monitor".to_string(),
            is_library: true,
            is_crate_root: false,
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn no_panic_flags_unwrap_expect_and_macros() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   pub fn g(x: Option<u8>) -> u8 { x.expect(\"msg\") }\n\
                   pub fn h() { panic!(\"boom\") }\n\
                   pub fn t() { todo!() }\n";
        let findings = lint_file(&lib_class(), src);
        assert_eq!(rules_of(&findings), vec!["no_panic"; 4]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn no_panic_respects_allow_and_tests() {
        let src = "#![forbid(unsafe_code)]\n\
                   // lint: allow(no_panic) capacity checked two lines up\n\
                   pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
                   }\n";
        assert!(lint_file(&lib_class(), src).is_empty());
    }

    #[test]
    fn no_panic_requires_a_reason() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(no_panic)\n";
        assert_eq!(rules_of(&lint_file(&lib_class(), src)), vec!["no_panic"]);
    }

    #[test]
    fn no_panic_ignores_unwrap_or_variants() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
                   pub fn g(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }\n";
        assert!(lint_file(&lib_class(), src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#![forbid(unsafe_code)]\n\
                   #[cfg(not(test))]\n\
                   pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint_file(&lib_class(), src)), vec!["no_panic"]);
    }

    #[test]
    fn micros_math_flags_raw_arithmetic() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(a: TimeDelta, step: i64) -> i64 { a.as_micros() * step / 12 }\n\
                   pub fn g(a: TimeDelta, b: TimeDelta) -> i64 { a.as_micros() + b.as_micros() }\n\
                   pub fn h(x: i64) -> TimeDelta { TimeDelta::from_micros(x * 1000) }\n";
        let findings = lint_file(&lib_class(), src);
        assert_eq!(
            findings.iter().filter(|f| f.rule == "micros_math").count(),
            3
        );
    }

    #[test]
    fn micros_math_allows_plain_reads_and_negative_literals() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(a: TimeDelta) -> i64 { a.as_micros() }\n\
                   pub fn g() -> TimeDelta { TimeDelta::from_micros(-7_000) }\n\
                   pub fn h(a: TimeDelta) -> f64 { a.as_micros() as f64 }\n\
                   pub fn k(r: &mut Rng, j: TimeDelta) -> i64 { r.gen_range(0..=j.as_micros()) }\n";
        assert!(lint_file(&lib_class(), src).is_empty());
    }

    #[test]
    fn micros_math_sees_operand_before_a_chain() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(c: i64, s: &Flow, i: usize) -> i64 { c * s.timestamp(i).as_micros() }\n";
        assert_eq!(rules_of(&lint_file(&lib_class(), src)), vec!["micros_math"]);
    }

    #[test]
    fn ordering_requires_justification() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n\
                   // ordering: independent counter, no other memory is published\n\
                   pub fn g(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }\n\
                   pub fn h(a: &AtomicU64) { a.store(1, Ordering::SeqCst); // ordering: total order needed\n\
                   }\n";
        let findings = lint_file(&lib_class(), src);
        assert_eq!(rules_of(&findings), vec!["ordering_comment"]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn cmp_ordering_is_exempt() {
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn f(a: u8, b: u8) -> Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n";
        assert!(lint_file(&lib_class(), src).is_empty());
    }

    #[test]
    fn bounded_queue_flags_unbounded_channel() {
        let src = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n\
                   fn g() { let (tx, rx) = channel(); }\n\
                   fn h(cap: usize) { let (tx, rx) = sync_channel::<u8>(cap); }\n";
        let findings = lint_file(&monitor_class(), src);
        assert_eq!(rules_of(&findings), vec!["bounded_queue"; 2]);
    }

    #[test]
    fn bounded_queue_enforces_choke_point() {
        let src = "struct Q {\n\
                       // #[bounded(via = \"emit\")] drained by the caller\n\
                       verdicts: VecDeque<u8>,\n\
                   }\n\
                   impl Q {\n\
                       fn emit(&mut self, v: u8) { self.verdicts.push_back(v); }\n\
                       fn sneak(&mut self, v: u8) { self.verdicts.push_back(v); }\n\
                   }\n";
        let findings = lint_file(&monitor_class(), src);
        assert_eq!(rules_of(&findings), vec!["bounded_queue"]);
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn bounded_queue_requires_tag_on_vecdeque_fields() {
        let src = "struct Q { backlog: VecDeque<u8>, names: Vec<String> }\n";
        let findings = lint_file(&monitor_class(), src);
        assert_eq!(rules_of(&findings), vec!["bounded_queue"]);
        assert!(findings[0].message.contains("backlog"));
    }

    #[test]
    fn bounded_queue_only_applies_to_monitor() {
        let src = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n";
        assert!(lint_file(
            &FileClass {
                rel_path: "crates/flow/src/x.rs".to_string(),
                crate_dir: "flow".to_string(),
                is_library: true,
                is_crate_root: false,
            },
            src
        )
        .is_empty());
    }

    fn cluster_class() -> FileClass {
        FileClass {
            rel_path: "crates/cluster/src/wire.rs".to_string(),
            crate_dir: "cluster".to_string(),
            is_library: true,
            is_crate_root: false,
        }
    }

    #[test]
    fn bounded_ipc_flags_unbounded_channel_and_reads() {
        let src = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n\
                   fn g(r: &mut impl Read) { let mut b = Vec::new(); r.read_to_end(&mut b); }\n\
                   fn h(cap: usize) { let (tx, rx) = sync_channel::<u8>(cap); }\n";
        let findings = lint_file(&cluster_class(), src);
        assert_eq!(rules_of(&findings), vec!["bounded_ipc"; 2]);
    }

    #[test]
    fn bounded_ipc_requires_a_cap_witness_on_with_capacity() {
        let src = "fn f(len: u32) -> Vec<u8> { Vec::with_capacity(len as usize) }\n\
                   fn g(len: u32) -> Vec<u8> { Vec::with_capacity((len as usize).min(1024)) }\n\
                   fn h(len: u32) -> Vec<u8> { Vec::with_capacity(len.min(MAX_FRAME) as usize) }\n";
        let findings = lint_file(&cluster_class(), src);
        assert_eq!(rules_of(&findings), vec!["bounded_ipc"]);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn bounded_ipc_respects_allow_and_other_crates() {
        let src = "// lint: allow(bounded_ipc) reads a local spec file, not the pipe\n\
                   fn f(r: &mut impl Read) { let mut b = Vec::new(); r.read_to_end(&mut b); }\n";
        assert!(lint_file(&cluster_class(), src).is_empty());
        let src = "fn f(len: u32) -> Vec<u8> { Vec::with_capacity(len as usize) }\n";
        assert!(lint_file(&monitor_class(), src).is_empty());
    }

    #[test]
    fn bounded_ipc_covers_scenario_and_serve_sources() {
        let src = "fn f(len: u32) -> Vec<u8> { Vec::with_capacity(len as usize) }\n";
        for (rel_path, crate_dir) in [
            ("crates/scenario/src/spec.rs", "scenario"),
            ("crates/experiments/src/serve/mod.rs", "experiments"),
            ("crates/experiments/src/serve/snapshot.rs", "experiments"),
        ] {
            let class = FileClass {
                rel_path: rel_path.to_string(),
                crate_dir: crate_dir.to_string(),
                is_library: true,
                is_crate_root: false,
            };
            assert_eq!(
                rules_of(&lint_file(&class, src)),
                vec!["bounded_ipc"],
                "{rel_path} must be in scope"
            );
        }
        // The rest of `experiments` (one-shot CLI paths reading local
        // files the operator named) stays out of scope.
        let class = FileClass {
            rel_path: "crates/experiments/src/matrix.rs".to_string(),
            crate_dir: "experiments".to_string(),
            is_library: true,
            is_crate_root: false,
        };
        assert!(lint_file(&class, src).is_empty());
    }

    #[test]
    fn heartbeat_touch_flags_a_loop_that_skips_the_beat() {
        let src = "fn worker_loop(ctx: &Ctx) {\n\
                       loop {\n\
                           let job = ctx.recv();\n\
                           ctx.touch_heartbeat();\n\
                       }\n\
                   }\n";
        let findings = lint_file(&monitor_class(), src);
        assert_eq!(rules_of(&findings), vec!["heartbeat_touch"]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn heartbeat_touch_accepts_a_top_of_loop_refresh() {
        let src = "fn worker_loop(ctx: &Ctx) {\n\
                       loop {\n\
                           ctx.touch_heartbeat();\n\
                           let job = ctx.recv();\n\
                       }\n\
                   }\n";
        assert!(lint_file(&monitor_class(), src).is_empty());
    }

    #[test]
    fn heartbeat_touch_only_audits_worker_functions() {
        let src = "fn control_loop(ctx: &Ctx) { loop { ctx.step(); } }\n";
        assert!(lint_file(&monitor_class(), src).is_empty());
    }

    #[test]
    fn heartbeat_touch_respects_allow() {
        let src = "// lint: allow(heartbeat_touch) drains a closed queue, no watchdog armed\n\
                   fn worker_drain(ctx: &Ctx) { loop { ctx.step(); } }\n";
        assert!(lint_file(&monitor_class(), src).is_empty());
    }

    #[test]
    fn heartbeat_touch_only_applies_to_monitor() {
        let src = "fn worker_loop(ctx: &Ctx) { loop { ctx.step(); } }\n";
        assert!(lint_file(
            &FileClass {
                rel_path: "crates/flow/src/x.rs".to_string(),
                crate_dir: "flow".to_string(),
                is_library: true,
                is_crate_root: false,
            },
            src
        )
        .is_empty());
    }

    #[test]
    fn forbid_unsafe_missing_is_flagged() {
        let src = "pub fn f() {}\n";
        let findings = lint_file(
            &FileClass {
                rel_path: "crates/demo/src/lib.rs".to_string(),
                crate_dir: "demo".to_string(),
                is_library: false,
                is_crate_root: true,
            },
            src,
        );
        assert_eq!(rules_of(&findings), vec!["forbid_unsafe"]);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn non_library_files_skip_panic_rules() {
        let src = "fn main() { std::env::args().next().unwrap(); }\n";
        let findings = lint_file(
            &FileClass {
                rel_path: "crates/demo/src/main.rs".to_string(),
                crate_dir: "demo".to_string(),
                is_library: false,
                is_crate_root: true,
            },
            src,
        );
        assert_eq!(rules_of(&findings), vec!["forbid_unsafe"]);
    }
}
