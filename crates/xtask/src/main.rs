//! `cargo xtask` — workspace automation.
//!
//! ```text
//! cargo xtask lint [--format text|json] [--root DIR]
//! ```
//!
//! `lint` runs the seven invariant rules (see [`lint`] module docs and
//! DESIGN.md §"Static analysis & invariants") over every Rust source
//! file in the workspace. Exit codes: 0 clean, 1 findings, 2 usage or
//! I/O error. There is deliberately no `--fix`: CI runs deny-by-default
//! and violations are fixed (or justified inline) by hand.

#![forbid(unsafe_code)]

mod lexer;
mod lint;
mod report;
mod workspace;

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cmd(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--format text|json] [--root DIR]");
            ExitCode::from(2)
        }
    }
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root expects a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => match default_root() {
            Some(r) => r,
            None => {
                eprintln!("could not locate the workspace root; pass --root");
                return ExitCode::from(2);
            }
        },
    };

    let files = match workspace::workspace_files(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("failed to walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for (class, path) in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("failed to read {}: {err}", path.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        findings.extend(lint::lint_file(class, &src));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));

    let rendered = match format {
        Format::Text => report::text(&findings, scanned),
        Format::Json => report::json(&findings, scanned),
    };
    print!("{rendered}");
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via
/// `cargo xtask`, else the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn default_root() -> Option<PathBuf> {
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(&manifest_dir).join("../..");
        if let Ok(canon) = candidate.canonicalize() {
            return Some(canon);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
