//! `cargo xtask` — workspace automation.
//!
//! ```text
//! cargo xtask lint    [--format text|json|sarif] [--root DIR] [--rule ID]
//! cargo xtask analyze [--format text|json|sarif] [--root DIR] [--rule ID]
//!                     [--update-baseline] [--no-cache]
//! ```
//!
//! `lint` runs the seven per-file invariant rules (see [`lint`] module
//! docs and DESIGN.md §"Static analysis & invariants") over every Rust
//! source file in the workspace. `analyze` runs the four cross-file
//! rules (see [`analyze`] module docs and DESIGN.md §"Cross-file
//! analysis") over the `monitor`, `cluster`, `telemetry` and `ingest`
//! crates, with an incremental fact cache and a checked-in finding
//! baseline. Exit codes for both: 0 clean, 1 findings (for `analyze`:
//! findings not in the baseline), 2 usage or I/O error. There is
//! deliberately no `--fix`: CI runs deny-by-default and violations are
//! fixed (or justified inline) by hand.

#![forbid(unsafe_code)]

mod analyze;
mod graph;
mod json;
mod lexer;
mod lint;
mod parse;
mod report;
mod workspace;

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

const USAGE: &str = "usage: cargo xtask <lint|analyze> [--format text|json|sarif] \
                     [--root DIR] [--rule ID] [--update-baseline] [--no-cache]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cmd(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Flags shared by both subcommands, parsed from `args`.
struct CommonArgs {
    format: Format,
    root: Option<PathBuf>,
    rule: Option<String>,
    update_baseline: bool,
    no_cache: bool,
}

fn parse_args(args: &[String], allow_baseline_flags: bool) -> Result<CommonArgs, String> {
    let mut parsed = CommonArgs {
        format: Format::Text,
        root: None,
        rule: None,
        update_baseline: false,
        no_cache: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => parsed.format = Format::Text,
                Some("json") => parsed.format = Format::Json,
                Some("sarif") => parsed.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json` or `sarif`, got {other:?}"
                    ))
                }
            },
            "--root" => match it.next() {
                Some(dir) => parsed.root = Some(PathBuf::from(dir)),
                None => return Err("--root expects a directory".to_string()),
            },
            "--rule" => match it.next() {
                Some(id) => parsed.rule = Some(id.clone()),
                None => return Err("--rule expects a rule id".to_string()),
            },
            "--update-baseline" if allow_baseline_flags => parsed.update_baseline = true,
            "--no-cache" if allow_baseline_flags => parsed.no_cache = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, String> {
    match root {
        Some(r) => Ok(r),
        None => default_root()
            .ok_or_else(|| "could not locate the workspace root; pass --root".to_string()),
    }
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args, false) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let rules: Vec<&'static str> = match &parsed.rule {
        None => lint::RULES.to_vec(),
        Some(id) => match lint::RULES.iter().find(|r| *r == id) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "unknown lint rule {id:?}; known rules: {}",
                    lint::RULES.join(", ")
                );
                return ExitCode::from(2);
            }
        },
    };
    let root = match resolve_root(parsed.root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let files = match workspace::workspace_files(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("failed to walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    // Lex every file once, then run rules one at a time so each can be
    // timed individually.
    let mut lexed_files = Vec::new();
    for (class, path) in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("failed to read {}: {err}", path.display());
                return ExitCode::from(2);
            }
        };
        let lexed = lexer::lex(&src);
        let mask = lint::test_region_mask(&lexed.toks);
        lexed_files.push((class.clone(), lexed, mask));
    }
    let scanned = lexed_files.len();
    let mut findings = Vec::new();
    let mut rule_times_us = Vec::new();
    for rule in &rules {
        let t0 = Instant::now();
        for (class, lexed, mask) in &lexed_files {
            lint::run_rule(rule, class, lexed, mask, &mut findings);
        }
        rule_times_us.push((rule.to_string(), t0.elapsed().as_micros()));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup();

    let rendered = match parsed.format {
        Format::Text => report::text("lint", &findings, scanned),
        Format::Json => report::json("lint", &rules, &findings, scanned, &rule_times_us, &[]),
        Format::Sarif => report::sarif("lint", &rules, &findings),
    };
    print!("{rendered}");
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn analyze_cmd(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args, true) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = &parsed.rule {
        if !analyze::ANALYZE_RULES.contains(&id.as_str()) {
            eprintln!(
                "unknown analyze rule {id:?}; known rules: {}",
                analyze::ANALYZE_RULES.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let root = match resolve_root(parsed.root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let opts = analyze::Options {
        use_cache: !parsed.no_cache,
        rule: parsed.rule.clone(),
    };
    let analysis = match analyze::run(&root, &opts) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if parsed.update_baseline {
        if let Err(err) = analyze::write_baseline(&root, &analysis.findings) {
            eprintln!("failed to write analyze-baseline.json: {err}");
            return ExitCode::from(2);
        }
        eprintln!(
            "analyze-baseline.json updated with {} finding(s)",
            analysis.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    for (rule, path, message) in &analysis.stale_baseline {
        eprintln!("warning: stale baseline entry (no longer reported): [{rule}] {path}: {message}");
    }

    let rules: Vec<&'static str> = match &parsed.rule {
        None => analyze::ANALYZE_RULES.to_vec(),
        Some(id) => analyze::ANALYZE_RULES
            .iter()
            .filter(|r| *r == id)
            .copied()
            .collect(),
    };
    let rendered = match parsed.format {
        Format::Text => {
            let mut out = report::finding_lines(&analysis.findings);
            out.push_str(&format!(
                "xtask analyze: {} finding(s) ({} new, {} baselined) across {} file(s) \
                 ({} parsed, {} cached)\n",
                analysis.findings.len(),
                analysis.new_findings.len(),
                analysis.baselined,
                analysis.files,
                analysis.parsed,
                analysis.cached
            ));
            out
        }
        Format::Json => report::json(
            "analyze",
            &rules,
            &analysis.findings,
            analysis.files,
            &analysis.rule_times_us,
            &[
                ("new_findings", analysis.new_findings.len()),
                ("baselined", analysis.baselined),
                ("files_parsed", analysis.parsed),
                ("files_cached", analysis.cached),
            ],
        ),
        Format::Sarif => report::sarif("analyze", &rules, &analysis.findings),
    };
    print!("{rendered}");
    if analysis.new_findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via
/// `cargo xtask`, else the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn default_root() -> Option<PathBuf> {
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(&manifest_dir).join("../..");
        if let Ok(canon) = candidate.canonicalize() {
            return Some(canon);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
