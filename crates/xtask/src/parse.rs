//! Item-level parsing: one file → [`FileFacts`].
//!
//! The second analysis layer (see [`analyze`](crate::analyze)) needs
//! more structure than the token-scan lint rules: which functions
//! exist, what they call, which locks they take and still hold at each
//! call site, which enum variants are constructed vs. matched, where
//! counters are declared, mutated and rendered. This module extracts
//! exactly those facts from the [`lexer`](crate::lexer) token stream —
//! a lightweight item parser, not a real Rust front end. Known
//! approximations are documented in DESIGN.md §"Cross-file analysis";
//! the guiding rule is: *over*-approximate lock lifetimes (safe for
//! deadlock detection) and *under*-approximate name resolution (an
//! unresolved call produces no edge, never a wrong one).
//!
//! Facts are serializable to/from the [`json`](crate::json) value
//! model so the analyze pass can cache them per file, keyed by content
//! hash.

use crate::json::{obj, str_arr, Value};
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::lint::{item_end, match_forward, test_region_mask, FileClass};

/// Time units the `unit_flow` rule distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    Micros,
    Nanos,
    Millis,
    Seconds,
}

impl Unit {
    /// Short human name, used in findings.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Micros => "µs",
            Unit::Nanos => "ns",
            Unit::Millis => "ms",
            Unit::Seconds => "s",
        }
    }

    /// Classifies an identifier by its naming convention, the same
    /// convention the workspace already uses (`ts_micros`, `idle_us`,
    /// `ts_usec`, `if_tsresol` nanosecond fields, …).
    pub fn of_ident(name: &str) -> Option<Unit> {
        let is = |suffixes: &[&str], whole: &[&str]| {
            whole.contains(&name) || suffixes.iter().any(|s| name.ends_with(s))
        };
        if is(&["_micros", "_us", "_usec", "_usecs"], &["micros"]) {
            Some(Unit::Micros)
        } else if is(&["_nanos", "_ns", "_nsec", "_nsecs"], &["nanos"]) {
            Some(Unit::Nanos)
        } else if is(&["_millis", "_ms", "_msec", "_msecs"], &["millis"]) {
            Some(Unit::Millis)
        } else if is(&["_secs", "_seconds", "_sec"], &["secs", "seconds"]) {
            Some(Unit::Seconds)
        } else {
            None
        }
    }

    /// Classifies a `from_*`/`as_*` conversion method by name.
    pub fn of_conversion(name: &str) -> Option<Unit> {
        match name {
            "from_micros" | "as_micros" => Some(Unit::Micros),
            "from_nanos" | "as_nanos" => Some(Unit::Nanos),
            "from_millis" | "as_millis" => Some(Unit::Millis),
            "from_secs" | "as_secs" => Some(Unit::Seconds),
            _ => None,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq)]
pub struct CallFacts {
    /// `Foo` in `Foo::bar(..)`, if path-qualified.
    pub qualifier: Option<String>,
    /// The called name (`bar`); for method calls, the method name.
    pub name: String,
    /// `true` for `.name(..)` method-call syntax.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: usize,
    /// Lock ids (see [`FnFacts::acquires`]) held at this call site.
    pub held: Vec<String>,
}

/// Everything the graph rules need to know about one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnFacts {
    /// `name` for free functions, `Type::name` for impl methods.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Calls made in the body, with locks held at each site.
    pub calls: Vec<CallFacts>,
    /// Lock acquisition sites: `(lock id, line)`. A lock id is the
    /// receiver's final field/binding name (`rx` in `ctx.rx.lock()`),
    /// crate-qualified by the analyzer.
    pub acquires: Vec<(String, usize)>,
    /// `(held, then_acquired, line)` — intra-function acquisition
    /// order observed while the first lock's guard was live.
    pub ordered: Vec<(String, String, usize)>,
    /// `(lock, blocking call, line)` — a blocking primitive reached
    /// while the lock's guard was live.
    pub blocking_holding: Vec<(String, String, usize)>,
    /// Blocking primitives reached anywhere in the body.
    pub blocking: Vec<(String, usize)>,
}

/// A `match` expression's variant coverage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchFacts {
    /// Enum names appearing in arm patterns (usually one).
    pub enums: Vec<String>,
    /// Variants named by non-wildcard arms (`Enum::Variant` patterns).
    pub arms: Vec<String>,
    /// `true` when any arm is `_` or a bare binding.
    pub has_wildcard: bool,
    /// 1-based line of the `match` keyword.
    pub line: usize,
}

/// A `// conserve(<family>): <members>` declaration: the named
/// counters form one conservation ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ConserveDecl {
    pub family: String,
    pub members: Vec<String>,
    pub line: usize,
}

/// All facts extracted from one file. Test regions (`#[test]` items,
/// `#[cfg(test)]` modules) contribute nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileFacts {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate directory under `crates/`, or `"root"`.
    pub crate_dir: String,
    pub fns: Vec<FnFacts>,
    /// Declared enums: `(name, variants, line)`.
    pub enums: Vec<(String, Vec<String>, usize)>,
    /// `Enum::Variant` uses outside pattern position: `(enum, variant,
    /// line)`.
    pub constructs: Vec<(String, String, usize)>,
    /// `match` expressions with enum-variant arms.
    pub matches: Vec<MatchFacts>,
    /// Metric names registered on a telemetry registry: `(name, line,
    /// is_counter)`.
    pub metric_names: Vec<(String, usize, bool)>,
    /// Conservation-ledger declarations.
    pub conserves: Vec<ConserveDecl>,
    /// Counter mutation sites: `(counter name, line)` for
    /// `.inc()/.add()/.fetch_add()/.set()/+=` and friends.
    pub mutations: Vec<(String, usize)>,
    /// Mixed-unit findings, computed per file: `(line, message)`.
    pub unit_findings: Vec<(usize, String)>,
    /// `// lint: allow(<rule>) <reason>` waivers: `(line, rule)`.
    pub allows: Vec<(usize, String)>,
}

impl FileFacts {
    /// `true` when a waiver for `rule` covers `line` (same line or the
    /// line above, matching the lint pass's convention).
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }
}

/// Methods that acquire a lock guard when called with no arguments.
const LOCK_METHODS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Counter/gauge mutation method names.
const MUTATORS: [&str; 8] = [
    "inc",
    "dec",
    "add",
    "sub",
    "fetch_add",
    "fetch_sub",
    "set",
    "observe",
];

/// Registry registration method names; the leading `counter` variants
/// register monotone counters (the ones conservation sweeps care
/// about).
const REGISTRATIONS: [&str; 7] = [
    "counter",
    "counter_with",
    "counter_fn",
    "gauge",
    "gauge_with",
    "gauge_fn",
    "histogram",
];

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "let", "fn", "move", "as", "in", "ref",
    "break", "else",
];

/// Parses one file into its fact set.
pub fn parse_file(class: &FileClass, src: &str) -> FileFacts {
    let lexed = lex(src);
    let mask = test_region_mask(&lexed.toks);
    let mut facts = FileFacts {
        rel_path: class.rel_path.clone(),
        crate_dir: class.crate_dir.clone(),
        ..FileFacts::default()
    };
    collect_comments(&lexed, &mut facts);
    let toks = &lexed.toks;
    let pattern = pattern_mask(toks, &mask, &mut facts);
    collect_items(toks, &mask, &pattern, &mut facts);
    collect_counters(toks, &mask, &mut facts);
    collect_variant_uses(toks, &mask, &pattern, &mut facts);
    collect_unit_findings(toks, &mask, &mut facts);
    facts
}

/// Waivers and `conserve(..)` declarations live in comments.
fn collect_comments(lexed: &Lexed, facts: &mut FileFacts) {
    for (line, text) in &lexed.comments {
        if let Some(at) = text.find("lint: allow(") {
            let rest = &text[at + "lint: allow(".len()..];
            if let Some(close) = rest.find(')') {
                let rule = rest[..close].trim().to_string();
                if !rest[close + 1..].trim().is_empty() && !rule.is_empty() {
                    facts.allows.push((*line, rule));
                }
            }
        }
        if let Some(at) = text.find("conserve(") {
            let rest = &text[at + "conserve(".len()..];
            if let (Some(close), Some(colon)) = (rest.find(')'), rest.find(':')) {
                if close < colon {
                    let family = rest[..close].trim().to_string();
                    let members: Vec<String> = rest[colon + 1..]
                        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .filter(|m| !m.is_empty())
                        .map(str::to_string)
                        .collect();
                    if !family.is_empty() && !members.is_empty() {
                        facts.conserves.push(ConserveDecl {
                            family,
                            members,
                            line: *line,
                        });
                    }
                }
            }
        }
    }
}

/// Marks every token in pattern position — `match` arm patterns (up to
/// each `=>`), `if let`/`while let` patterns (up to the `=`), and the
/// pattern argument of `matches!`. Also records [`MatchFacts`] for
/// real `match` expressions.
fn pattern_mask(toks: &[Tok], mask: &[bool], facts: &mut FileFacts) -> Vec<bool> {
    let mut pat = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("match") && !mask[i] {
            if let Some(body) = match_body_open(toks, i) {
                let close = match_forward(toks, body, '{', '}');
                let mut m = MatchFacts {
                    line: toks[i].line,
                    ..MatchFacts::default()
                };
                mark_match_arms(toks, body, close, &mut pat, &mut m);
                if !m.enums.is_empty() {
                    facts.matches.push(m);
                }
                i += 1;
                continue;
            }
        }
        // `if let PAT =` / `while let PAT =`: mark up to the `=`.
        if toks[i].is_ident("let")
            && i > 0
            && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"))
        {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('=') {
                    break;
                }
                pat[j] = true;
                j += 1;
            }
            i = j;
            continue;
        }
        // `matches!(expr, PAT)`: mark from the top-level `,` on.
        if toks[i].is_ident("matches")
            && toks.get(i + 1).map(|t| t.is_punct('!')) == Some(true)
            && toks.get(i + 2).map(|t| t.is_punct('(')) == Some(true)
        {
            let close = match_forward(toks, i + 2, '(', ')');
            let mut depth = 0i32;
            let mut in_pat = false;
            for j in i + 3..close.min(toks.len()) {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') && !in_pat {
                    in_pat = true;
                    continue;
                }
                if in_pat {
                    pat[j] = true;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    pat
}

/// Finds the `{` opening a `match` body: the first `{` after the
/// scrutinee at bracket/paren depth 0. Scrutinee struct literals are
/// not supported (Rust itself requires parens there).
fn match_body_open(toks: &[Tok], match_kw: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(match_kw + 1) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return Some(j);
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Walks the arms of one `match` body, marking pattern tokens and
/// collecting variant coverage.
fn mark_match_arms(toks: &[Tok], body: usize, close: usize, pat: &mut [bool], m: &mut MatchFacts) {
    let mut j = body + 1;
    while j < close {
        // Pattern region: from `j` to the `=>` at depth 0.
        let start = j;
        let mut depth = 0i32;
        let mut arrow = None;
        while j < close {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0
                && t.is_punct('=')
                && toks.get(j + 1).map(|n| n.is_punct('>')) == Some(true)
            {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        // Guards (`PAT if cond =>`) are expression, not pattern; stop
        // the pattern region at a depth-0 `if`.
        let mut pat_end = arrow;
        for (k, t) in toks.iter().enumerate().take(arrow).skip(start) {
            if t.is_ident("if") {
                pat_end = k;
                break;
            }
        }
        for slot in pat.iter_mut().take(pat_end).skip(start) {
            *slot = true;
        }
        // Variant coverage for this arm.
        let mut named_variant = false;
        let mut k = start;
        while k + 2 < pat_end {
            if toks[k].kind == TokKind::Ident
                && toks[k + 1].is_punct(':')
                && toks[k + 2].is_punct(':')
            {
                if let Some(v) = toks.get(k + 3) {
                    if v.kind == TokKind::Ident && is_type_like(&toks[k].text) {
                        if !m.enums.contains(&toks[k].text) {
                            m.enums.push(toks[k].text.clone());
                        }
                        if !m.arms.contains(&v.text) {
                            m.arms.push(v.text.clone());
                        }
                        named_variant = true;
                    }
                }
                k += 4;
                continue;
            }
            k += 1;
        }
        if !named_variant {
            // `_`, a bare binding, a literal, `Some(x)` with no
            // qualified variant — treat as a wildcard-ish arm.
            let first = &toks[start];
            if first.is_punct('_') || first.kind == TokKind::Ident {
                m.has_wildcard = true;
            }
        }
        // Skip the arm expression: a block, or tokens to the next
        // depth-0 `,`.
        j = arrow + 2;
        let mut depth = 0i32;
        while j < close {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth == 0 && t.is_punct('}') {
                    j += 1;
                    break;
                }
            } else if depth == 0 && t.is_punct(',') {
                j += 1;
                break;
            }
            j += 1;
        }
        // Skip a trailing comma after a block arm.
        if j < close && toks[j].is_punct(',') {
            j += 1;
        }
    }
}

/// Uppercase-initial identifiers are treated as type/enum names.
fn is_type_like(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Enum declarations plus per-function lock/call/blocking facts.
fn collect_items(toks: &[Tok], mask: &[bool], pattern: &[bool], facts: &mut FileFacts) {
    // Impl spans, so methods get `Type::name` symbols.
    let mut impls: Vec<(String, usize, usize)> = Vec::new(); // (type, open, close)
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") && !mask[i] {
            let mut ty = None;
            let mut angle = 0i32;
            let mut j = i + 1;
            let mut after_for = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if angle == 0 && t.is_punct('{') {
                    break;
                } else if angle == 0 && t.is_punct(';') {
                    j = toks.len();
                    break;
                } else if angle == 0 && t.is_ident("for") {
                    after_for = true;
                    ty = None;
                } else if angle == 0
                    && t.kind == TokKind::Ident
                    && is_type_like(&t.text)
                    && (ty.is_none() || after_for)
                {
                    ty = Some(t.text.clone());
                    after_for = false;
                }
                j += 1;
            }
            if j < toks.len() {
                let close = match_forward(toks, j, '{', '}');
                if let Some(ty) = ty {
                    impls.push((ty, j, close));
                }
            }
        }
        if toks[i].is_ident("enum") && !mask[i] {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                if let Some(open) = (i + 2..toks.len()).find(|&j| toks[j].is_punct('{')) {
                    let close = match_forward(toks, open, '{', '}');
                    let mut variants = Vec::new();
                    let mut k = open + 1;
                    while k < close {
                        // Skip attributes on the variant.
                        while toks[k].is_punct('#')
                            && toks.get(k + 1).map(|t| t.is_punct('[')) == Some(true)
                        {
                            k = match_forward(toks, k + 1, '[', ']') + 1;
                        }
                        if k >= close {
                            break;
                        }
                        if toks[k].kind == TokKind::Ident {
                            variants.push(toks[k].text.clone());
                        }
                        // Skip the variant payload up to the next
                        // depth-0 comma.
                        let mut depth = 0i32;
                        while k < close {
                            let t = &toks[k];
                            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                                depth += 1;
                            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                                depth -= 1;
                            } else if depth == 0 && t.is_punct(',') {
                                k += 1;
                                break;
                            }
                            k += 1;
                        }
                    }
                    facts
                        .enums
                        .push((name.text.clone(), variants, toks[i].line));
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    // Functions. Each `fn` is parsed independently; nested fn bodies
    // are excluded from the enclosing function's facts below.
    let mut fn_spans: Vec<(usize, usize, usize)> = Vec::new(); // (kw, open, close)
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && !mask[i]
            && toks.get(i + 1).map(|t| t.kind == TokKind::Ident) == Some(true)
        {
            if let Some(end) = item_end(toks, i) {
                if let Some(open) = (i..=end).find(|&j| toks[j].is_punct('{')) {
                    if toks[end].is_punct('}') {
                        fn_spans.push((i, open, end));
                    }
                }
            }
        }
        i += 1;
    }
    for &(kw, open, close) in &fn_spans {
        let name = &toks[kw + 1].text;
        let qualified = impls
            .iter()
            .find(|(_, io, ic)| kw > *io && close <= *ic)
            .map(|(ty, _, _)| format!("{ty}::{name}"))
            .unwrap_or_else(|| name.clone());
        let nested: Vec<(usize, usize)> = fn_spans
            .iter()
            .filter(|&&(k, _, c)| k > kw && c < close)
            .map(|&(k, _, c)| (k, c))
            .collect();
        let mut f = FnFacts {
            name: qualified,
            line: toks[kw].line,
            ..FnFacts::default()
        };
        scan_fn_body(toks, mask, pattern, open, close, &nested, &mut f);
        facts.fns.push(f);
    }
}

/// A live lock guard while scanning a function body.
struct Guard {
    lock: String,
    /// Brace depth at acquisition; the guard dies when the depth drops
    /// below this (end of enclosing block).
    depth: usize,
    /// Temporary guards (no binding) die at the next `;` at or below
    /// their depth instead.
    temp: bool,
    /// The binding name, so `drop(name)` releases it.
    binding: Option<String>,
}

/// Blocking primitives: `(name, requires_empty_parens)`. Empty-parens
/// gating keeps `Vec::join(", ")`-style false positives out.
const BLOCKING: [(&str, bool); 9] = [
    ("recv", true),
    ("recv_timeout", false),
    ("sleep", false),
    ("park", true),
    ("wait", false),
    ("wait_timeout", false),
    ("join", true),
    ("read_from", false),
    ("read_frame", false),
];

fn scan_fn_body(
    toks: &[Tok],
    mask: &[bool],
    pattern: &[bool],
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
    f: &mut FnFacts,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i <= close {
        if let Some(&(_, nc)) = nested.iter().find(|&&(k, _)| k == i) {
            i = nc + 1;
            continue;
        }
        let t = &toks[i];
        if mask[i] || pattern[i] {
            // Patterns and test code contribute no body facts, but
            // braces inside them still shape scopes.
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !(g.temp && g.depth >= depth));
            i += 1;
            continue;
        }
        if mask[i] || pattern[i] || t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();

        // `drop(binding)` releases a named guard early.
        if name == "drop"
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
            && toks.get(i + 3).map(|n| n.is_punct(')')) == Some(true)
        {
            if let Some(arg) = toks.get(i + 2) {
                guards.retain(|g| g.binding.as_deref() != Some(arg.text.as_str()));
            }
        }

        // Lock acquisition: `.lock()` / `.read()` / `.write()` etc.
        // with empty parens (argument-taking `read`/`write` are I/O).
        if LOCK_METHODS.contains(&name)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
            && toks.get(i + 2).map(|n| n.is_punct(')')) == Some(true)
        {
            if let Some(lock) = receiver_tail(toks, i - 1) {
                let line = t.line;
                for g in &guards {
                    f.ordered.push((g.lock.clone(), lock.clone(), line));
                }
                f.acquires.push((lock.clone(), line));
                let (temp, binding) = statement_binding(toks, open, i);
                guards.push(Guard {
                    lock,
                    depth,
                    temp,
                    binding,
                });
                i += 3;
                continue;
            }
        }

        // Blocking primitives.
        if let Some(&(bname, needs_empty)) = BLOCKING.iter().find(|(b, _)| *b == name) {
            let called = toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true);
            let empty_ok = !needs_empty || toks.get(i + 2).map(|n| n.is_punct(')')) == Some(true);
            if called && empty_ok {
                let line = t.line;
                f.blocking.push((bname.to_string(), line));
                for g in &guards {
                    f.blocking_holding
                        .push((g.lock.clone(), bname.to_string(), line));
                }
            }
        }

        // Call sites (for the call graph). Skip keywords, macros, the
        // lock/blocking primitives just handled, and definitions.
        let is_def = i > 0 && toks[i - 1].is_ident("fn");
        if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NON_CALL_KEYWORDS.contains(&name)
            && !is_def
            && !LOCK_METHODS.contains(&name)
        {
            let is_method = i > 0 && toks[i - 1].is_punct('.');
            let qualifier = if i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].kind == TokKind::Ident
            {
                Some(toks[i - 3].text.clone())
            } else {
                None
            };
            f.calls.push(CallFacts {
                qualifier,
                name: name.to_string(),
                is_method,
                line: t.line,
                held: guards.iter().map(|g| g.lock.clone()).collect(),
            });
        }
        i += 1;
    }
}

/// The receiver's final field/binding name for the method call whose
/// `.` sits at `dot` — `rx` in `ctx.rx.lock()`, `entries` in
/// `self.entries.lock()`.
fn receiver_tail(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut k = dot - 1;
    // Skip a trailing call/index group: `shards[i].lock()`.
    while toks[k].is_punct(')') || toks[k].is_punct(']') {
        let (open_c, close_c) = if toks[k].is_punct(')') {
            ('(', ')')
        } else {
            ('[', ']')
        };
        let mut depth = 0usize;
        loop {
            if toks[k].is_punct(close_c) {
                depth += 1;
            } else if toks[k].is_punct(open_c) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    if toks[k].kind == TokKind::Ident && !toks[k].is_ident("self") {
        Some(toks[k].text.clone())
    } else {
        None
    }
}

/// Whether the statement containing token `at` binds its value
/// (`let g = …` / `match …` / `if let` / `while let`) — a scoped
/// guard — or discards it at the next `;` (a temporary). Returns
/// `(temp, binding_name)`.
fn statement_binding(toks: &[Tok], body_open: usize, at: usize) -> (bool, Option<String>) {
    let mut j = at;
    while j > body_open {
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("match") || t.is_ident("if") || t.is_ident("while") {
            return (false, None);
        }
        if t.is_ident("let") {
            let mut k = j + 1;
            while k < at && toks[k].is_ident("mut") {
                k += 1;
            }
            let binding = toks
                .get(k)
                .filter(|b| b.kind == TokKind::Ident)
                .map(|b| b.text.clone());
            return (false, binding);
        }
        j -= 1;
    }
    (true, None)
}

/// Counter registrations and mutations.
fn collect_counters(toks: &[Tok], mask: &[bool], facts: &mut FileFacts) {
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        // Registration: `.counter("name", ..)` and friends — record
        // the first string literal inside the call.
        if REGISTRATIONS.contains(&name)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
        {
            let close = match_forward(toks, i + 1, '(', ')');
            if let Some(lit) = toks[i + 2..close.min(toks.len())]
                .iter()
                .find(|t| t.kind == TokKind::Lit && t.text.starts_with('"'))
            {
                let metric = lit.text.trim_matches('"').to_string();
                facts
                    .metric_names
                    .push((metric, toks[i].line, name.starts_with("counter")));
            }
        }
        // Mutation: `.inc()` etc. on a named receiver.
        if MUTATORS.contains(&name)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
        {
            if let Some(tail) = receiver_tail(toks, i - 1) {
                facts.mutations.push((tail, toks[i].line));
            }
        }
        // Mutation: `name += …` / `name -= …`.
        if toks.get(i + 1).map(|n| n.is_punct('+') || n.is_punct('-')) == Some(true)
            && toks.get(i + 2).map(|n| n.is_punct('=')) == Some(true)
        {
            facts.mutations.push((name.to_string(), toks[i].line));
        }
    }
}

/// `Enum::Variant` uses outside pattern position (constructions,
/// expression mentions).
fn collect_variant_uses(toks: &[Tok], mask: &[bool], pattern: &[bool], facts: &mut FileFacts) {
    for i in 0..toks.len().saturating_sub(3) {
        if mask[i] || pattern[i] {
            continue;
        }
        if toks[i].kind == TokKind::Ident
            && is_type_like(&toks[i].text)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
            && is_type_like(&toks[i + 3].text)
        {
            facts.constructs.push((
                toks[i].text.clone(),
                toks[i + 3].text.clone(),
                toks[i + 3].line,
            ));
        }
    }
}

/// Mixed-unit arithmetic, computed per file. Purely lexical: an
/// identifier carries the unit its name declares; direct `a op b`
/// between different units is flagged, as are `from_X(y)` / `as_X()`
/// conversions whose operand names a different unit. `ident op
/// literal` is left alone — that is how intentional conversions
/// (`ts_sec * 1_000_000`) are written.
fn collect_unit_findings(toks: &[Tok], mask: &[bool], facts: &mut FileFacts) {
    let unit_of = |t: &Tok| -> Option<Unit> {
        if t.kind == TokKind::Ident {
            Unit::of_ident(&t.text)
        } else {
            None
        }
    };
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        // `a_us + b_ns`, `a_us < b_ms`, `a_us == b_ns`, `a_us <= b_ns`.
        if let Some(ua) = unit_of(&toks[i]) {
            let (op_len, op_text): (usize, Option<String>) = match toks.get(i + 1) {
                Some(op) if op.is_punct('+') || op.is_punct('-') => (1, Some(op.text.clone())),
                Some(op) if op.is_punct('<') || op.is_punct('>') => {
                    if toks.get(i + 2).map(|n| n.is_punct('=')) == Some(true) {
                        (2, Some(format!("{}=", op.text)))
                    } else {
                        (1, Some(op.text.clone()))
                    }
                }
                Some(op)
                    if op.is_punct('=')
                        && toks.get(i + 2).map(|n| n.is_punct('=')) == Some(true) =>
                {
                    (2, Some("==".to_string()))
                }
                _ => (0, None),
            };
            if let Some(op) = op_text {
                if let Some(other) = toks.get(i + 1 + op_len) {
                    if let Some(ub) = unit_of(other) {
                        if ua != ub {
                            facts.unit_findings.push((
                                toks[i].line,
                                format!(
                                    "mixed-unit arithmetic: `{}` ({}) {op} `{}` ({})",
                                    toks[i].text,
                                    ua.name(),
                                    other.text,
                                    ub.name()
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // `from_micros(x_ns …)` — conversion fed an operand whose name
        // declares a different unit.
        if toks[i].kind == TokKind::Ident {
            if let Some(uc) = Unit::of_conversion(&toks[i].text) {
                if toks[i].text.starts_with("from_")
                    && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                {
                    if let Some(arg) = toks.get(i + 2) {
                        if let Some(ua) = unit_of(arg) {
                            if ua != uc {
                                facts.unit_findings.push((
                                    toks[i].line,
                                    format!(
                                        "unit mismatch: `{}` expects {} but `{}` is {}",
                                        toks[i].text,
                                        uc.name(),
                                        arg.text,
                                        ua.name()
                                    ),
                                ));
                            }
                        }
                    }
                }
                // `….as_micros() op x_ns`.
                if toks[i].text.starts_with("as_")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                    && toks.get(i + 2).map(|n| n.is_punct(')')) == Some(true)
                {
                    let after = toks.get(i + 3);
                    let is_cmp_or_arith = after.map(|t| {
                        t.is_punct('+') || t.is_punct('-') || t.is_punct('<') || t.is_punct('>')
                    }) == Some(true);
                    if is_cmp_or_arith {
                        if let Some(operand) = toks.get(i + 4) {
                            if let Some(ua) = unit_of(operand) {
                                if ua != uc {
                                    facts.unit_findings.push((
                                        toks[i].line,
                                        format!(
                                            "unit mismatch: `{}()` ({}) combined with `{}` ({})",
                                            toks[i].text,
                                            uc.name(),
                                            operand.text,
                                            ua.name()
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// JSON (de)serialization for the fact cache.
// ---------------------------------------------------------------------

impl FileFacts {
    /// Serializes the facts for the per-file cache.
    pub fn to_json(&self) -> Value {
        let fns = self
            .fns
            .iter()
            .map(|f| {
                obj(vec![
                    ("name", Value::Str(f.name.clone())),
                    ("line", Value::Num(f.line as i64)),
                    (
                        "calls",
                        Value::Arr(
                            f.calls
                                .iter()
                                .map(|c| {
                                    obj(vec![
                                        (
                                            "q",
                                            c.qualifier
                                                .clone()
                                                .map(Value::Str)
                                                .unwrap_or(Value::Null),
                                        ),
                                        ("name", Value::Str(c.name.clone())),
                                        ("method", Value::Bool(c.is_method)),
                                        ("line", Value::Num(c.line as i64)),
                                        ("held", str_arr(&c.held)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("acquires", pairs_json(&f.acquires)),
                    ("ordered", triples_json(&f.ordered)),
                    ("blocking_holding", triples_json(&f.blocking_holding)),
                    ("blocking", pairs_json(&f.blocking)),
                ])
            })
            .collect();
        let enums = self
            .enums
            .iter()
            .map(|(name, variants, line)| {
                obj(vec![
                    ("name", Value::Str(name.clone())),
                    ("variants", str_arr(variants)),
                    ("line", Value::Num(*line as i64)),
                ])
            })
            .collect();
        let matches = self
            .matches
            .iter()
            .map(|m| {
                obj(vec![
                    ("enums", str_arr(&m.enums)),
                    ("arms", str_arr(&m.arms)),
                    ("wildcard", Value::Bool(m.has_wildcard)),
                    ("line", Value::Num(m.line as i64)),
                ])
            })
            .collect();
        let conserves = self
            .conserves
            .iter()
            .map(|c| {
                obj(vec![
                    ("family", Value::Str(c.family.clone())),
                    ("members", str_arr(&c.members)),
                    ("line", Value::Num(c.line as i64)),
                ])
            })
            .collect();
        obj(vec![
            ("rel_path", Value::Str(self.rel_path.clone())),
            ("crate_dir", Value::Str(self.crate_dir.clone())),
            ("fns", Value::Arr(fns)),
            ("enums", Value::Arr(enums)),
            ("constructs", triples_json(&self.constructs)),
            ("matches", Value::Arr(matches)),
            (
                "metric_names",
                Value::Arr(
                    self.metric_names
                        .iter()
                        .map(|(n, l, c)| {
                            Value::Arr(vec![
                                Value::Str(n.clone()),
                                Value::Num(*l as i64),
                                Value::Bool(*c),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("conserves", Value::Arr(conserves)),
            ("mutations", pairs_json(&self.mutations)),
            (
                "unit_findings",
                Value::Arr(
                    self.unit_findings
                        .iter()
                        .map(|(l, m)| {
                            Value::Arr(vec![Value::Num(*l as i64), Value::Str(m.clone())])
                        })
                        .collect(),
                ),
            ),
            (
                "allows",
                Value::Arr(
                    self.allows
                        .iter()
                        .map(|(l, r)| {
                            Value::Arr(vec![Value::Num(*l as i64), Value::Str(r.clone())])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes facts from the cache; `None` on shape mismatch.
    pub fn from_json(v: &Value) -> Option<FileFacts> {
        let mut facts = FileFacts {
            rel_path: v.get("rel_path")?.as_str()?.to_string(),
            crate_dir: v.get("crate_dir")?.as_str()?.to_string(),
            ..FileFacts::default()
        };
        for f in v.get("fns")?.as_arr()? {
            let mut func = FnFacts {
                name: f.get("name")?.as_str()?.to_string(),
                line: f.get("line")?.as_num()? as usize,
                ..FnFacts::default()
            };
            for c in f.get("calls")?.as_arr()? {
                func.calls.push(CallFacts {
                    qualifier: c.get("q").and_then(Value::as_str).map(str::to_string),
                    name: c.get("name")?.as_str()?.to_string(),
                    is_method: matches!(c.get("method"), Some(Value::Bool(true))),
                    line: c.get("line")?.as_num()? as usize,
                    held: str_vec(c.get("held")?)?,
                });
            }
            func.acquires = pairs_from(f.get("acquires")?)?;
            func.ordered = triples_from(f.get("ordered")?)?;
            func.blocking_holding = triples_from(f.get("blocking_holding")?)?;
            func.blocking = pairs_from(f.get("blocking")?)?;
            facts.fns.push(func);
        }
        for e in v.get("enums")?.as_arr()? {
            facts.enums.push((
                e.get("name")?.as_str()?.to_string(),
                str_vec(e.get("variants")?)?,
                e.get("line")?.as_num()? as usize,
            ));
        }
        facts.constructs = triples_from(v.get("constructs")?)?;
        for m in v.get("matches")?.as_arr()? {
            facts.matches.push(MatchFacts {
                enums: str_vec(m.get("enums")?)?,
                arms: str_vec(m.get("arms")?)?,
                has_wildcard: matches!(m.get("wildcard"), Some(Value::Bool(true))),
                line: m.get("line")?.as_num()? as usize,
            });
        }
        for (name, line, is_counter) in v.get("metric_names")?.as_arr()?.iter().filter_map(|e| {
            let arr = e.as_arr()?;
            Some((
                arr.first()?.as_str()?.to_string(),
                arr.get(1)?.as_num()? as usize,
                matches!(arr.get(2), Some(Value::Bool(true))),
            ))
        }) {
            facts.metric_names.push((name, line, is_counter));
        }
        for c in v.get("conserves")?.as_arr()? {
            facts.conserves.push(ConserveDecl {
                family: c.get("family")?.as_str()?.to_string(),
                members: str_vec(c.get("members")?)?,
                line: c.get("line")?.as_num()? as usize,
            });
        }
        facts.mutations = pairs_from(v.get("mutations")?)?;
        for e in v.get("unit_findings")?.as_arr()? {
            let arr = e.as_arr()?;
            facts.unit_findings.push((
                arr.first()?.as_num()? as usize,
                arr.get(1)?.as_str()?.to_string(),
            ));
        }
        for e in v.get("allows")?.as_arr()? {
            let arr = e.as_arr()?;
            facts.allows.push((
                arr.first()?.as_num()? as usize,
                arr.get(1)?.as_str()?.to_string(),
            ));
        }
        Some(facts)
    }
}

fn pairs_json(items: &[(String, usize)]) -> Value {
    Value::Arr(
        items
            .iter()
            .map(|(s, l)| Value::Arr(vec![Value::Str(s.clone()), Value::Num(*l as i64)]))
            .collect(),
    )
}

fn pairs_from(v: &Value) -> Option<Vec<(String, usize)>> {
    v.as_arr()?
        .iter()
        .map(|e| {
            let arr = e.as_arr()?;
            Some((
                arr.first()?.as_str()?.to_string(),
                arr.get(1)?.as_num()? as usize,
            ))
        })
        .collect()
}

fn triples_json(items: &[(String, String, usize)]) -> Value {
    Value::Arr(
        items
            .iter()
            .map(|(a, b, l)| {
                Value::Arr(vec![
                    Value::Str(a.clone()),
                    Value::Str(b.clone()),
                    Value::Num(*l as i64),
                ])
            })
            .collect(),
    )
}

fn triples_from(v: &Value) -> Option<Vec<(String, String, usize)>> {
    v.as_arr()?
        .iter()
        .map(|e| {
            let arr = e.as_arr()?;
            Some((
                arr.first()?.as_str()?.to_string(),
                arr.get(1)?.as_str()?.to_string(),
                arr.get(2)?.as_num()? as usize,
            ))
        })
        .collect()
}

fn str_vec(v: &Value) -> Option<Vec<String>> {
    v.as_arr()?
        .iter()
        .map(|e| e.as_str().map(str::to_string))
        .collect()
}

/// FNV-1a 64 over the file contents — the cache key.
pub fn content_hash(src: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in src.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(path: &str) -> FileClass {
        crate::workspace::classify(path)
    }

    fn parse(src: &str) -> FileFacts {
        parse_file(&class("crates/monitor/src/demo.rs"), src)
    }

    #[test]
    fn extracts_fns_with_impl_qualification() {
        let src = "struct S;\n\
                   impl S {\n\
                       fn method(&self) { helper(); }\n\
                   }\n\
                   fn helper() {}\n";
        let facts = parse(src);
        let names: Vec<_> = facts.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["S::method", "helper"]);
        assert_eq!(facts.fns[0].calls.len(), 1);
        assert_eq!(facts.fns[0].calls[0].name, "helper");
    }

    #[test]
    fn lock_acquisition_and_ordering() {
        let src = "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                       let ga = a.lock().unwrap();\n\
                       let gb = b.lock().unwrap();\n\
                   }\n";
        let facts = parse(src);
        let f = &facts.fns[0];
        assert_eq!(f.acquires.len(), 2);
        assert_eq!(f.ordered, vec![("a".to_string(), "b".to_string(), 3)]);
    }

    #[test]
    fn temporary_guards_die_at_the_statement() {
        let src = "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                       *a.lock().unwrap() += 1;\n\
                       let gb = b.lock().unwrap();\n\
                   }\n";
        let facts = parse(src);
        assert!(facts.fns[0].ordered.is_empty());
    }

    #[test]
    fn dropped_guards_stop_ordering() {
        let src = "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                       let ga = a.lock().unwrap();\n\
                       drop(ga);\n\
                       let gb = b.lock().unwrap();\n\
                   }\n";
        let facts = parse(src);
        assert!(facts.fns[0].ordered.is_empty());
    }

    #[test]
    fn scoped_guards_end_with_their_block() {
        let src = "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                       { let ga = a.lock().unwrap(); }\n\
                       let gb = b.lock().unwrap();\n\
                   }\n";
        let facts = parse(src);
        assert!(facts.fns[0].ordered.is_empty());
    }

    #[test]
    fn blocking_while_holding_is_recorded() {
        let src = "fn f(rx: &Mutex<Receiver<u8>>) {\n\
                       let guard = rx.lock().unwrap();\n\
                       let job = guard.recv();\n\
                   }\n";
        let facts = parse(src);
        let f = &facts.fns[0];
        assert_eq!(
            f.blocking_holding,
            vec![("rx".to_string(), "recv".to_string(), 3)]
        );
    }

    #[test]
    fn join_with_arguments_is_not_blocking() {
        let src = "fn f(v: Vec<String>) -> String { v.join(\", \") }\n";
        let facts = parse(src);
        assert!(facts.fns[0].blocking.is_empty());
    }

    #[test]
    fn io_read_with_arguments_is_not_a_lock() {
        let src = "fn f(r: &mut impl Read, buf: &mut [u8]) { r.read(buf); }\n";
        let facts = parse(src);
        assert!(facts.fns[0].acquires.is_empty());
    }

    #[test]
    fn enum_and_variant_extraction() {
        let src = "pub enum Message {\n\
                       Hello { worker: u32 },\n\
                       Ping(u64),\n\
                       Shutdown,\n\
                   }\n";
        let facts = parse(src);
        assert_eq!(facts.enums.len(), 1);
        assert_eq!(facts.enums[0].0, "Message");
        assert_eq!(facts.enums[0].1, vec!["Hello", "Ping", "Shutdown"]);
    }

    #[test]
    fn constructions_and_matches_are_distinguished() {
        let src = "fn send() -> Message { Message::Ping(1) }\n\
                   fn handle(m: Message) {\n\
                       match m {\n\
                           Message::Ping(_) => {}\n\
                           Message::Hello { .. } | Message::Shutdown => {}\n\
                           _ => {}\n\
                       }\n\
                   }\n";
        let facts = parse(src);
        assert_eq!(
            facts.constructs,
            vec![("Message".to_string(), "Ping".to_string(), 1)]
        );
        assert_eq!(facts.matches.len(), 1);
        let m = &facts.matches[0];
        assert_eq!(m.enums, vec!["Message"]);
        assert_eq!(m.arms, vec!["Ping", "Hello", "Shutdown"]);
        assert!(m.has_wildcard);
    }

    #[test]
    fn if_let_is_a_pattern_not_a_construction() {
        let src = "fn f(m: Message) {\n\
                       if let Message::Ping(seq) = m { use_seq(seq); }\n\
                   }\n";
        let facts = parse(src);
        assert!(facts.constructs.is_empty());
    }

    #[test]
    fn metric_registration_and_mutations() {
        let src = "fn wire(r: &Registry, stats: &mut Stats) {\n\
                       let c = r.counter(\"cluster_batches_sent_total\", \"help\");\n\
                       let g = r.gauge(\"cluster_depth\", \"help\");\n\
                       c.inc();\n\
                       stats.batches_sent += 1;\n\
                   }\n";
        let facts = parse(src);
        assert_eq!(facts.metric_names.len(), 2);
        assert!(facts.metric_names[0].2, "counter registration");
        assert!(!facts.metric_names[1].2, "gauge registration");
        assert!(facts.mutations.iter().any(|(m, _)| m == "batches_sent"));
        assert!(facts.mutations.iter().any(|(m, _)| m == "c"));
    }

    #[test]
    fn conserve_declarations_parse() {
        let src = "// conserve(shard_queue): enqueued = dequeued + depth; dropped\n\
                   fn f() {}\n";
        let facts = parse(src);
        assert_eq!(facts.conserves.len(), 1);
        assert_eq!(facts.conserves[0].family, "shard_queue");
        assert_eq!(
            facts.conserves[0].members,
            vec!["enqueued", "dequeued", "depth", "dropped"]
        );
    }

    #[test]
    fn unit_findings_flag_mixed_arithmetic_only() {
        let src = "fn f(ts_micros: i64, skew_ns: i64, lag_ms: i64) -> i64 {\n\
                       let bad = ts_micros + skew_ns;\n\
                       let also_bad = ts_micros < lag_ms;\n\
                       let fine = ts_micros + ts_micros;\n\
                       let conversion = skew_ns / 1_000;\n\
                       bad\n\
                   }\n";
        let facts = parse(src);
        assert_eq!(facts.unit_findings.len(), 2, "{:?}", facts.unit_findings);
        assert_eq!(facts.unit_findings[0].0, 2);
        assert_eq!(facts.unit_findings[1].0, 3);
    }

    #[test]
    fn unit_findings_flag_conversion_mismatches() {
        let src = "fn f(skew_ns: i64) -> TimeDelta { TimeDelta::from_micros(skew_ns) }\n";
        let facts = parse(src);
        assert_eq!(facts.unit_findings.len(), 1);
    }

    #[test]
    fn test_regions_contribute_no_facts() {
        let src = "fn live() { real_call(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper(a: &Mutex<u8>) { let g = a.lock().unwrap(); }\n\
                       #[test]\n\
                       fn t() { Message::Ping(1); }\n\
                   }\n";
        let facts = parse(src);
        assert_eq!(facts.fns.len(), 1);
        assert!(facts.constructs.is_empty());
    }

    #[test]
    fn facts_round_trip_through_json() {
        let src = "// conserve(ledger): sent = acked + lost\n\
                   // lint: allow(lock_order) documented hand-off design\n\
                   pub enum E { A, B }\n\
                   fn f(a: &Mutex<u8>, rx: &Mutex<Receiver<u8>>, sent_us: i64, lag_ns: i64) {\n\
                       let g = a.lock().unwrap();\n\
                       let r = rx.lock().unwrap();\n\
                       let x = r.recv();\n\
                       let bad = sent_us + lag_ns;\n\
                       let e = E::A;\n\
                       match e { E::A => {}, E::B => {} }\n\
                       helper(1);\n\
                   }\n";
        let facts = parse(src);
        let round =
            FileFacts::from_json(&crate::json::parse(&facts.to_json().render()).unwrap()).unwrap();
        assert_eq!(facts, round);
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash("abc"), content_hash("abc"));
        assert_ne!(content_hash("abc"), content_hash("abd"));
    }
}
