//! Workspace discovery: which `.rs` files exist and how each one
//! participates in the lint pass.

use std::path::{Path, PathBuf};

use crate::lint::FileClass;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 6] = [
    "target",
    "vendor",
    ".git",
    ".github",
    "results",
    "node_modules",
];

/// Walks `root` and classifies every Rust source file found.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(FileClass, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.rel_path.cmp(&b.0.rel_path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(FileClass, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((classify(&rel), path));
        }
    }
    Ok(())
}

/// Derives a [`FileClass`] from a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_dir = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        "root".to_string()
    };
    let in_src = (crate_dir != "root" && parts.get(2) == Some(&"src"))
        || (crate_dir == "root" && parts.first() == Some(&"src"));
    let file = parts.last().copied().unwrap_or_default();
    // `xtask` is the lint driver itself — a dev tool, not library code
    // shipped to correlation paths, so the panic/µs rules don't apply.
    let is_library = in_src
        && file != "main.rs"
        && file != "tests.rs"
        && !rel.contains("/src/bin/")
        && crate_dir != "xtask"
        && crate_dir != "bench";
    // Crate roots: `src/lib.rs`, `src/main.rs`, and every `src/bin/*`
    // binary root — all must carry `#![forbid(unsafe_code)]`.
    let is_crate_root = (in_src && (file == "lib.rs" || file == "main.rs") && {
        let depth = if crate_dir == "root" { 2 } else { 4 };
        parts.len() == depth
    }) || rel.contains("/src/bin/");
    FileClass {
        rel_path: rel.to_string(),
        crate_dir,
        is_library,
        is_crate_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_crate_library_files() {
        let c = classify("crates/flow/src/time.rs");
        assert_eq!(c.crate_dir, "flow");
        assert!(c.is_library);
        assert!(!c.is_crate_root);
    }

    #[test]
    fn classifies_crate_roots() {
        assert!(classify("crates/flow/src/lib.rs").is_crate_root);
        assert!(classify("src/lib.rs").is_crate_root);
        assert!(classify("crates/xtask/src/main.rs").is_crate_root);
        assert!(!classify("crates/flow/src/window.rs").is_crate_root);
        assert!(classify("crates/experiments/src/bin/repro.rs").is_crate_root);
    }

    #[test]
    fn classifies_the_ingest_crate_like_any_library() {
        // The auto-discovered ingest crate gets the full library rule
        // set (no_panic, micros_math, forbid_unsafe at the root).
        let parser = classify("crates/ingest/src/pcap.rs");
        assert_eq!(parser.crate_dir, "ingest");
        assert!(parser.is_library);
        assert!(!parser.is_crate_root);
        assert!(classify("crates/ingest/src/lib.rs").is_crate_root);
        assert!(!classify("crates/ingest/tests/roundtrip.rs").is_library);
    }

    #[test]
    fn classifies_the_telemetry_crate_like_any_library() {
        // Telemetry sits on the hottest paths of all; its src files
        // get the full library rule set (no_panic, ordering_comment,
        // micros_math, forbid_unsafe at the root).
        let counter = classify("crates/telemetry/src/metrics.rs");
        assert_eq!(counter.crate_dir, "telemetry");
        assert!(counter.is_library);
        assert!(!counter.is_crate_root);
        assert!(classify("crates/telemetry/src/lib.rs").is_crate_root);
        assert!(!classify("crates/telemetry/tests/histogram_props.rs").is_library);
    }

    #[test]
    fn non_library_paths() {
        assert!(!classify("crates/monitor/tests/props.rs").is_library);
        assert!(!classify("tests/pipeline.rs").is_library);
        assert!(!classify("examples/demo.rs").is_library);
        assert!(!classify("crates/experiments/src/bin/repro.rs").is_library);
        assert!(!classify("crates/xtask/src/lint.rs").is_library);
        assert!(classify("src/lib.rs").is_library);
    }
}
