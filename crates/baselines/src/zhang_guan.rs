//! The passive deviation-based scheme of ref \[11\].

use stepstone_flow::{Flow, TimeDelta};
use stepstone_matching::{CostMeter, Matcher};

/// Outcome of the passive deviation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviationOutcome {
    /// `true` when a complete order-consistent matching exists whose
    /// delay spread is within the threshold.
    pub correlated: bool,
    /// The smallest delay spread found (`max delay − min delay` over the
    /// chosen matching); `None` when no complete matching exists.
    pub deviation: Option<TimeDelta>,
    /// Packet accesses (matching + scoring) — comparable to the active
    /// algorithms' cost metric.
    pub cost: u64,
}

/// The passive scheme the paper compares against: find possible
/// corresponding packets under the timing constraint, compute the
/// smallest delay *deviation*, and report a stepping stone when it is
/// below a threshold (Table 1: 3 seconds).
///
/// Our instantiation (the original is an unpublished tech report; see
/// DESIGN.md §3): a complete order-preserving matching is built greedily
/// with *delay tracking* — each upstream packet takes the candidate
/// whose delay is closest to the running mean of the delays chosen so
/// far (ties toward the earlier packet, to keep room for successors).
/// The deviation is the spread of the chosen delays. Correlated flows
/// under `U(0, maxdelay)` perturbation yield spreads around the
/// perturbation range; unrelated flows only score well when chaff and a
/// large `Δ` offer enough candidates — reproducing the published
/// detection/false-positive shapes.
///
/// Being passive, it needs no watermark and no traffic manipulation —
/// the trade-off the paper discusses in §5.
///
/// # Example
///
/// ```
/// use stepstone_baselines::ZhangGuanDetector;
/// use stepstone_flow::{Flow, TimeDelta, Timestamp};
///
/// # fn main() -> Result<(), stepstone_flow::FlowError> {
/// let up = Flow::from_timestamps((0..50).map(Timestamp::from_secs))?;
/// let down = up.shifted(TimeDelta::from_millis(400)); // constant delay
/// let d = ZhangGuanDetector::new(TimeDelta::from_secs(7), TimeDelta::from_secs(3));
/// let out = d.correlate(&up, &down);
/// assert!(out.correlated);
/// assert_eq!(out.deviation, Some(TimeDelta::ZERO));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZhangGuanDetector {
    delta: TimeDelta,
    threshold: TimeDelta,
}

impl ZhangGuanDetector {
    /// Creates a detector with maximum delay `Δ` and deviation
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if either bound is negative.
    pub fn new(delta: TimeDelta, threshold: TimeDelta) -> Self {
        assert!(!delta.is_negative(), "maximum delay must be non-negative");
        assert!(
            !threshold.is_negative(),
            "deviation threshold must be non-negative"
        );
        ZhangGuanDetector { delta, threshold }
    }

    /// The paper's configuration: `Δ` as given, 3-second threshold.
    pub fn paper(delta: TimeDelta) -> Self {
        ZhangGuanDetector::new(delta, TimeDelta::from_secs(3))
    }

    /// The maximum delay bound.
    pub const fn delta(&self) -> TimeDelta {
        self.delta
    }

    /// The deviation threshold.
    pub const fn threshold(&self) -> TimeDelta {
        self.threshold
    }

    /// Scores `suspicious` against `upstream`.
    pub fn correlate(&self, upstream: &Flow, suspicious: &Flow) -> DeviationOutcome {
        let mut meter = CostMeter::new();
        let Some(mut sets) =
            Matcher::new(self.delta).matching_sets(upstream, suspicious, &mut meter)
        else {
            return DeviationOutcome {
                correlated: false,
                deviation: None,
                cost: meter.count(),
            };
        };
        if !sets.tighten(&mut meter) {
            return DeviationOutcome {
                correlated: false,
                deviation: None,
                cost: meter.count(),
            };
        }
        if sets.is_empty() {
            return DeviationOutcome {
                correlated: false,
                deviation: None,
                cost: meter.count(),
            };
        }

        // Smallest-deviation search: a stepping-stone relay delays every
        // packet by roughly the same amount plus bounded jitter, so a
        // correlated pair admits a complete matching whose delays all
        // fall in one narrow *band* [L, L + threshold]. Slide the band's
        // lower edge over [0, Δ − threshold] and test each band with
        // earliest-first-fit (the feasibility-maximizing order for
        // interval problems); the deviation is the realized delay spread
        // of the best feasible band. The grid density trades accuracy
        // for cost — this is why the passive scheme's cost tops the
        // active algorithms', as in Figs 7–10.
        const GRID: i64 = 12;
        let slack = (self.delta - self.threshold).max(TimeDelta::ZERO);
        let mut best_deviation: Option<TimeDelta> = None;
        for step in 0..=GRID {
            let lo = slack * step / GRID;
            let band = (lo, lo + self.threshold);
            if let Some(dev) = self.band_first_fit(upstream, suspicious, &sets, band, &mut meter) {
                if best_deviation.is_none_or(|b| dev < b) {
                    best_deviation = Some(dev);
                }
            }
            if slack == TimeDelta::ZERO {
                break; // Δ ≤ threshold: a single all-covering band
            }
        }
        if let Some(dev) = best_deviation {
            return DeviationOutcome {
                correlated: dev <= self.threshold,
                deviation: Some(dev),
                cost: meter.count(),
            };
        }
        // No narrow band is feasible: report the spread of the plain
        // first-fit matching (which exists — tightening succeeded).
        let dev = self
            .band_first_fit(
                upstream,
                suspicious,
                &sets,
                (TimeDelta::ZERO, self.delta),
                &mut meter,
            )
            // lint: allow(no_panic) tighten() already proved a feasible matching exists in this band
            .expect("tightened sets admit the earliest-first-fit matching");
        DeviationOutcome {
            correlated: dev <= self.threshold,
            deviation: Some(dev),
            cost: meter.count(),
        }
    }

    /// Fraction of upstream packets allowed to fall outside the band,
    /// in percent — a robustified deviation: a handful of burst packets
    /// squeezed out of the band should not hide an otherwise coherent
    /// relay, and symmetrically lets the scheme be fooled when chaff is
    /// dense (its published false-positive behaviour).
    pub const OUTLIER_TOLERANCE_PCT: usize = 10;

    /// Earliest-first-fit within a delay band: each upstream packet
    /// takes the earliest order-consistent candidate whose delay lies in
    /// `[band.0, band.1]`, falling back to the earliest feasible
    /// candidate when the band offers none (an *outlier*). The pass
    /// succeeds when outliers stay within
    /// [`OUTLIER_TOLERANCE_PCT`](Self::OUTLIER_TOLERANCE_PCT). Returns
    /// the in-band delay spread, or `None` when the pass starves or
    /// exceeds the tolerance.
    fn band_first_fit(
        &self,
        upstream: &Flow,
        suspicious: &Flow,
        sets: &stepstone_matching::MatchingSets,
        band: (TimeDelta, TimeDelta),
        meter: &mut CostMeter,
    ) -> Option<TimeDelta> {
        if sets.is_empty() {
            return Some(TimeDelta::ZERO);
        }
        let allowed_outliers = sets.len() * Self::OUTLIER_TOLERANCE_PCT / 100;
        let mut outliers = 0usize;
        let mut min_delay = TimeDelta::MAX;
        let mut max_delay = -TimeDelta::MAX;
        let mut prev: Option<u32> = None;
        for i in 0..sets.len() {
            let set = sets.set(i);
            let t_up = upstream.timestamp(i);
            // Candidates are index-sorted and delay grows with the
            // index, so the in-band packets form a contiguous subrange.
            let lo_idx = set.partition_point(|&c| {
                meter.charge_one();
                suspicious.timestamp(c as usize) - t_up < band.0
            });
            let after_prev = match prev {
                Some(p) => set.partition_point(|&c| c <= p),
                None => 0,
            };
            let start = lo_idx.max(after_prev);
            let (c, in_band) = if start < set.len() {
                meter.charge_one();
                let c = set[start];
                let delay = suspicious.timestamp(c as usize) - t_up;
                (c, delay <= band.1)
            } else if after_prev < set.len() {
                // No in-band candidate: take the earliest feasible one.
                (set[after_prev], false)
            } else {
                return None; // starvation
            };
            if in_band {
                let delay = suspicious.timestamp(c as usize) - t_up;
                min_delay = min_delay.min(delay);
                max_delay = max_delay.max(delay);
            } else {
                outliers += 1;
                if outliers > allowed_outliers {
                    return None;
                }
            }
            prev = Some(c);
        }
        if min_delay > max_delay {
            return None; // everything was an outlier
        }
        Some(max_delay - min_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;
    use stepstone_adversary::{ChaffInjector, ChaffModel, Transform, UniformPerturbation};
    use stepstone_flow::Timestamp;
    use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};

    fn interactive(n: usize, seed: u64) -> Flow {
        SessionGenerator::new(InteractiveProfile::ssh()).generate(
            n,
            Timestamp::ZERO,
            &mut Seed::new(seed).rng(0),
        )
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        Seed::new(seed).rng(3)
    }

    #[test]
    fn constant_shift_has_zero_deviation() {
        let up = interactive(300, 1);
        let down = up.shifted(TimeDelta::from_millis(900));
        let d = ZhangGuanDetector::paper(TimeDelta::from_secs(7));
        let out = d.correlate(&up, &down);
        assert!(out.correlated);
        assert_eq!(out.deviation, Some(TimeDelta::ZERO));
    }

    #[test]
    fn small_perturbation_is_detected() {
        let up = interactive(300, 2);
        let d = ZhangGuanDetector::paper(TimeDelta::from_secs(7));
        let down = UniformPerturbation::new(TimeDelta::from_secs(2)).apply_with(&up, &mut rng(2));
        let out = d.correlate(&up, &down);
        assert!(out.correlated, "{out:?}");
        assert!(out.deviation.unwrap() <= TimeDelta::from_secs(2));
    }

    #[test]
    fn large_perturbation_defeats_the_threshold() {
        // With U(0, 7s) perturbation the spread of true delays is ~7s,
        // far over the 3s threshold — the paper's "fails to reach 100%".
        let mut detected = 0;
        for seed in 0..8 {
            let up = interactive(400, 10 + seed);
            let down =
                UniformPerturbation::new(TimeDelta::from_secs(7)).apply_with(&up, &mut rng(seed));
            let d = ZhangGuanDetector::paper(TimeDelta::from_secs(7));
            if d.correlate(&up, &down).correlated {
                detected += 1;
            }
        }
        // Well below the active schemes' 100% (the exact value moves
        // with the outlier tolerance; the paper only requires "fails to
        // reach 100%" and "significantly lower without chaff").
        assert!(detected <= 6, "detected {detected}/8 at 7s perturbation");
    }

    #[test]
    fn chaff_does_not_break_detection_of_small_perturbation() {
        let up = interactive(300, 3);
        let perturbed =
            UniformPerturbation::new(TimeDelta::from_secs(1)).apply_with(&up, &mut rng(4));
        let down = ChaffInjector::new(ChaffModel::Poisson { rate: 3.0 })
            .apply_with(&perturbed, &mut rng(5));
        let d = ZhangGuanDetector::paper(TimeDelta::from_secs(7));
        let out = d.correlate(&up, &down);
        assert!(out.correlated, "{out:?}");
    }

    #[test]
    fn disjoint_flows_fail_matching() {
        let up = interactive(100, 6);
        let far = up.shifted(TimeDelta::from_secs(100_000));
        let d = ZhangGuanDetector::paper(TimeDelta::from_secs(7));
        let out = d.correlate(&up, &far);
        assert!(!out.correlated);
        assert_eq!(out.deviation, None);
    }

    #[test]
    fn unrelated_sparse_flows_rarely_correlate() {
        let d = ZhangGuanDetector::paper(TimeDelta::from_secs(7));
        let up = interactive(300, 7);
        let mut fps = 0;
        for seed in 0..10 {
            let other = interactive(300, 100 + seed);
            if d.correlate(&up, &other).correlated {
                fps += 1;
            }
        }
        assert!(fps <= 3, "{fps}/10 unrelated flows correlated");
    }

    #[test]
    fn cost_scales_with_candidates() {
        let up = interactive(200, 8);
        let down = up.shifted(TimeDelta::from_millis(100));
        let chaffed =
            ChaffInjector::new(ChaffModel::Poisson { rate: 5.0 }).apply_with(&down, &mut rng(9));
        let d = ZhangGuanDetector::paper(TimeDelta::from_secs(7));
        let plain = d.correlate(&up, &down).cost;
        let noisy = d.correlate(&up, &chaffed).cost;
        assert!(noisy > plain, "noisy {noisy} <= plain {plain}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_threshold() {
        let _ = ZhangGuanDetector::new(TimeDelta::from_secs(1), TimeDelta::from_micros(-1));
    }
}
