//! The basic IPD watermark scheme of ref \[7\] as a detector.

use stepstone_core::Correlation;
use stepstone_flow::Flow;
use stepstone_watermark::{BitLayout, IpdWatermarker, Watermark, WatermarkError};

/// Detects a watermark by position-aligned decoding: packet `i` of the
/// upstream flow is assumed to be packet `i` of the suspicious flow.
///
/// This is the scheme the paper builds on — robust against random
/// timing perturbation (the embedded shift survives zero-mean noise)
/// but defenceless against chaff, which shifts every packet position
/// and turns the decode into coin flips. Cost is constant: two packet
/// accesses per embedding pair.
///
/// # Example
///
/// ```
/// use stepstone_baselines::BasicWatermarkDetector;
/// use stepstone_flow::{Flow, Timestamp};
/// use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let flow = Flow::from_timestamps((0..200).map(Timestamp::from_secs))?;
/// let marker = IpdWatermarker::new(WatermarkKey::new(1), WatermarkParams::small());
/// let w = Watermark::random(8, &mut WatermarkKey::new(2).rng(1));
/// let marked = marker.embed(&flow, &w)?;
///
/// let detector = BasicWatermarkDetector::new(marker, w, &flow)?;
/// assert!(detector.correlate(&marked).correlated);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BasicWatermarkDetector {
    marker: IpdWatermarker,
    watermark: Watermark,
    layout: BitLayout,
}

impl BasicWatermarkDetector {
    /// Creates a detector for the watermark embedded into `original`
    /// (the unmarked upstream flow, from which the layout re-derives).
    ///
    /// # Errors
    ///
    /// Returns [`WatermarkError::FlowTooShort`] if `original` cannot
    /// host the layout and [`WatermarkError::LengthMismatch`] if the
    /// watermark length does not match the marker's parameters.
    pub fn new(
        marker: IpdWatermarker,
        watermark: Watermark,
        original: &Flow,
    ) -> Result<Self, WatermarkError> {
        if watermark.len() != marker.params().bits {
            return Err(WatermarkError::LengthMismatch {
                expected: marker.params().bits,
                actual: watermark.len(),
            });
        }
        let layout = marker.layout_for_flow(original)?;
        Ok(BasicWatermarkDetector {
            marker,
            watermark,
            layout,
        })
    }

    /// The constant decode cost in packet accesses (two per pair).
    pub fn decode_cost(&self) -> u64 {
        (self.marker.params().pairs_needed() * 2) as u64
    }

    /// Position-aligned detection. A suspicious flow too short to index
    /// is immediately not correlated.
    pub fn correlate(&self, suspicious: &Flow) -> Correlation {
        match self.marker.decode_aligned(suspicious, &self.layout) {
            Ok(decoded) => {
                let hamming = self.watermark.hamming_distance(&decoded);
                Correlation {
                    correlated: hamming <= self.marker.params().threshold,
                    hamming: Some(hamming),
                    best: Some(decoded),
                    cost: self.decode_cost(),
                    matching_cost: 0,
                    completed: true,
                    robust: None,
                }
            }
            Err(_) => Correlation {
                correlated: false,
                hamming: None,
                best: None,
                cost: 0,
                matching_cost: 0,
                completed: true,
                robust: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use stepstone_flow::Timestamp;
    use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};
    use stepstone_watermark::{WatermarkKey, WatermarkParams};

    fn interactive(n: usize, seed: u64) -> Flow {
        SessionGenerator::new(InteractiveProfile::ssh()).generate(
            n,
            Timestamp::ZERO,
            &mut Seed::new(seed).rng(0),
        )
    }

    fn setup(seed: u64) -> (BasicWatermarkDetector, Flow) {
        let flow = interactive(600, seed);
        let marker = IpdWatermarker::new(WatermarkKey::new(seed), WatermarkParams::paper());
        let w = Watermark::random(24, &mut WatermarkKey::new(seed).rng(1));
        let marked = marker.embed(&flow, &w).unwrap();
        (
            BasicWatermarkDetector::new(marker, w, &flow).unwrap(),
            marked,
        )
    }

    #[test]
    fn detects_clean_marked_flow() {
        let (d, marked) = setup(1);
        let out = d.correlate(&marked);
        assert!(out.correlated);
        assert!(out.hamming.unwrap() <= 2);
        assert_eq!(out.cost, d.decode_cost());
    }

    #[test]
    fn short_flow_is_not_correlated_at_zero_cost() {
        let (d, marked) = setup(2);
        let out = d.correlate(&marked.subsequence(0..10).unwrap());
        assert!(!out.correlated);
        assert_eq!(out.hamming, None);
        assert_eq!(out.cost, 0);
    }

    #[test]
    fn rejects_wrong_watermark_length() {
        let flow = interactive(600, 3);
        let marker = IpdWatermarker::new(WatermarkKey::new(3), WatermarkParams::paper());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let w = Watermark::random(8, &mut rng);
        assert!(matches!(
            BasicWatermarkDetector::new(marker, w, &flow),
            Err(WatermarkError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn cost_is_constant_in_suspicious_length() {
        let (d, marked) = setup(4);
        let a = d.correlate(&marked).cost;
        let longer =
            marked.merged_with(
                &Flow::from_packets((0..500).map(|i| {
                    stepstone_flow::Packet::chaff(Timestamp::from_millis(i * 100 + 7), 48)
                }))
                .unwrap(),
            );
        let b = d.correlate(&longer).cost;
        assert_eq!(a, b);
    }
}
