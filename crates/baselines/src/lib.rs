//! Baseline stepping-stone correlation schemes the paper compares
//! against (§4, §5).
//!
//! * [`BasicWatermarkDetector`] — the unmodified IPD watermark scheme of
//!   ref \[7\]: position-aligned decoding with no packet matching. Robust
//!   to timing perturbation, destroyed by any chaff (the paper's
//!   motivating observation).
//! * [`ZhangGuanDetector`] — the passive scheme of ref \[11\] (Zhang,
//!   Persaud, Johnson & Guan): order-preserving packet matching under a
//!   maximum delay bound, scored by the *smallest delay deviation* and
//!   thresholded (Table 1 uses 3 seconds). The exact algorithm was an
//!   unpublished tech report; DESIGN.md §3 documents our instantiation.
//! * [`IpdCorrelationDetector`] — Wang, Reeves & Wu (ESORICS'02, ref
//!   \[8\]): passive correlation of inter-packet-delay vectors; an
//!   extension baseline from related work.
//! * [`PacketCountingDetector`] — Blum, Song & Venkataraman (RAID'04,
//!   ref \[1\]): bounded packet-count difference monitoring; an extension
//!   baseline from related work.
//!
//! All baselines meter cost in the same packets-accessed unit as the
//! core algorithms so the paper's cost figures are comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basic_wm;
mod blum;
mod ipd_corr;
mod zhang_guan;

pub use basic_wm::BasicWatermarkDetector;
pub use blum::{CountingOutcome, PacketCountingDetector};
pub use ipd_corr::{IpdCorrelationDetector, IpdCorrelationOutcome};
pub use zhang_guan::{DeviationOutcome, ZhangGuanDetector};
