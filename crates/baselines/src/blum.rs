//! Packet-count monitoring (Blum, Song & Venkataraman, RAID'04 — ref \[1\]).

use stepstone_flow::{Flow, TimeDelta};

/// Outcome of the packet-counting monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingOutcome {
    /// `true` when the count difference stayed within the bound.
    pub correlated: bool,
    /// The largest observed |upstream count − downstream count| over all
    /// event times.
    pub max_difference: u64,
    /// Packet accesses (each event advances one cursor).
    pub cost: u64,
}

/// Detects stepping stones by watching cumulative packet counts.
///
/// Blum et al. observe that if `f′` relays `f` with delay at most `Δ`,
/// then at any time `t` the counts satisfy
/// `C_up(t − Δ) ≤ C_down(t) ≤ C_up(t) + chaff(t)`; for chaff-free
/// relays the running difference `|C_up(t) − C_down(t)|` is bounded by
/// the packets in flight, roughly `λ·Δ`. This monitor computes the
/// maximum difference over all packet events and compares it to a
/// bound. Chaff inflates the downstream count without bound — the
/// scheme's documented blind spot, and part of the motivation for
/// watermark-based correlation.
///
/// # Example
///
/// ```
/// use stepstone_baselines::PacketCountingDetector;
/// use stepstone_flow::{Flow, TimeDelta, Timestamp};
///
/// # fn main() -> Result<(), stepstone_flow::FlowError> {
/// let up = Flow::from_timestamps((0..50).map(Timestamp::from_secs))?;
/// let down = up.shifted(TimeDelta::from_millis(300));
/// let out = PacketCountingDetector::new(4).correlate(&up, &down);
/// assert!(out.correlated);
/// assert!(out.max_difference <= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCountingDetector {
    bound: u64,
}

impl PacketCountingDetector {
    /// Creates a monitor that tolerates count differences up to `bound`
    /// (≈ expected packets in flight, `λ·Δ`, plus slack).
    pub const fn new(bound: u64) -> Self {
        PacketCountingDetector { bound }
    }

    /// A bound derived from an arrival-rate estimate and the maximum
    /// delay: `⌈λ·Δ⌉ + 2`.
    pub fn for_rate(rate: f64, delta: TimeDelta) -> Self {
        PacketCountingDetector {
            bound: (rate * delta.as_secs_f64()).ceil() as u64 + 2,
        }
    }

    /// The difference bound.
    pub const fn bound(&self) -> u64 {
        self.bound
    }

    /// Monitors the two flows over their merged event sequence.
    pub fn correlate(&self, upstream: &Flow, suspicious: &Flow) -> CountingOutcome {
        // Merge the event streams, tracking cumulative counts.
        let mut max_diff = 0u64;
        let mut cost = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        let (n, m) = (upstream.len(), suspicious.len());
        let up_t = |k: usize| upstream.timestamp(k);
        let down_t = |k: usize| suspicious.timestamp(k);
        while i < n || j < m {
            cost += 1;
            let take_up = match (i < n, j < m) {
                (true, true) => up_t(i) <= down_t(j),
                (true, false) => true,
                (false, true) => false,
                (false, false) => unreachable!("loop condition"),
            };
            if take_up {
                i += 1;
            } else {
                j += 1;
            }
            max_diff = max_diff.max(i.abs_diff(j) as u64);
        }
        // The final imbalance (|n − m|) is included by the loop above.
        CountingOutcome {
            correlated: max_diff <= self.bound,
            max_difference: max_diff,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;
    use stepstone_adversary::{ChaffInjector, ChaffModel, Transform, UniformPerturbation};
    use stepstone_flow::Timestamp;
    use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};

    fn interactive(n: usize, seed: u64) -> Flow {
        SessionGenerator::new(InteractiveProfile::ssh()).generate(
            n,
            Timestamp::ZERO,
            &mut Seed::new(seed).rng(0),
        )
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        Seed::new(seed).rng(5)
    }

    #[test]
    fn relayed_flow_stays_within_bound() {
        let up = interactive(500, 1);
        let down = UniformPerturbation::new(TimeDelta::from_secs(2)).apply_with(&up, &mut rng(1));
        // Interactive traffic is bursty: the in-flight count during a
        // keystroke burst tracks the burst rate (~7 pkt/s), not the mean
        // rate, so size the bound from the burst rate.
        let d = PacketCountingDetector::for_rate(7.0, TimeDelta::from_secs(2));
        let out = d.correlate(&up, &down);
        assert!(out.correlated, "{out:?}");
    }

    #[test]
    fn chaff_blows_the_count_difference() {
        let up = interactive(500, 2);
        let down =
            ChaffInjector::new(ChaffModel::Poisson { rate: 3.0 }).apply_with(&up, &mut rng(2));
        let d = PacketCountingDetector::for_rate(up.mean_rate(), TimeDelta::from_secs(2));
        let out = d.correlate(&up, &down);
        assert!(!out.correlated, "{out:?}");
        assert!(out.max_difference > d.bound());
    }

    #[test]
    fn unrelated_flows_usually_diverge() {
        let d = PacketCountingDetector::new(6);
        let up = interactive(500, 3);
        let mut fps = 0;
        for seed in 0..10 {
            let other = interactive(500, 50 + seed);
            if d.correlate(&up, &other).correlated {
                fps += 1;
            }
        }
        assert!(fps <= 3, "{fps}/10");
    }

    #[test]
    fn cost_is_one_pass() {
        let up = interactive(100, 4);
        let down = up.shifted(TimeDelta::from_millis(10));
        let out = PacketCountingDetector::new(4).correlate(&up, &down);
        assert_eq!(out.cost, 200);
    }

    #[test]
    fn empty_flows_trivially_correlate() {
        let out = PacketCountingDetector::new(0).correlate(&Flow::new(), &Flow::new());
        assert!(out.correlated);
        assert_eq!(out.max_difference, 0);
        assert_eq!(out.cost, 0);
    }
}
