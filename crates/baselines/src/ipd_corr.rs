//! IPD-vector correlation (Wang, Reeves & Wu, ESORICS'02 — ref \[8\]).

use stepstone_flow::Flow;

/// Outcome of IPD-vector correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpdCorrelationOutcome {
    /// `true` when the correlation coefficient reaches the threshold.
    pub correlated: bool,
    /// Pearson correlation coefficient of the aligned IPD vectors
    /// (`None` for flows too short to correlate).
    pub coefficient: Option<f64>,
    /// Packet accesses.
    pub cost: u64,
}

/// Correlates the inter-packet-delay sequences of two flows.
///
/// Wang et al. showed that IPDs of interactive connections are largely
/// preserved across stepping stones and correlate strongly even after
/// encryption. This implementation computes the Pearson correlation of
/// the leading `min(n, m) − 1` IPDs; the full ESORICS'02 scheme adds
/// sliding alignment windows, which matter only for partially
/// overlapping captures. Like all pre-2004 timing schemes it assumes no
/// chaff and little perturbation — the experiments show it collapsing
/// under either, which is the gap the paper's contribution fills.
///
/// # Example
///
/// ```
/// use stepstone_baselines::IpdCorrelationDetector;
/// use stepstone_flow::{Flow, TimeDelta, Timestamp};
///
/// # fn main() -> Result<(), stepstone_flow::FlowError> {
/// let up = Flow::from_timestamps([0.0, 0.3, 1.4, 1.5, 4.0].map(Timestamp::from_secs_f64))?;
/// let down = up.shifted(TimeDelta::from_millis(250));
/// let out = IpdCorrelationDetector::new(0.8).correlate(&up, &down);
/// assert!(out.correlated);
/// assert!(out.coefficient.unwrap() > 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpdCorrelationDetector {
    threshold: f64,
}

impl IpdCorrelationDetector {
    /// Creates a detector with the given correlation threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "correlation threshold must be in [0, 1], got {threshold}"
        );
        IpdCorrelationDetector { threshold }
    }

    /// The detection threshold.
    pub const fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Correlates the IPD sequences of the two flows.
    pub fn correlate(&self, upstream: &Flow, suspicious: &Flow) -> IpdCorrelationOutcome {
        let len = upstream.len().min(suspicious.len());
        if len < 3 {
            return IpdCorrelationOutcome {
                correlated: false,
                coefficient: None,
                cost: len as u64,
            };
        }
        let xs: Vec<f64> = upstream
            .ipds()
            .take(len - 1)
            .map(|d| d.as_secs_f64())
            .collect();
        let ys: Vec<f64> = suspicious
            .ipds()
            .take(len - 1)
            .map(|d| d.as_secs_f64())
            .collect();
        let cost = (2 * len) as u64;
        let coefficient = pearson(&xs, &ys);
        IpdCorrelationOutcome {
            correlated: coefficient.is_some_and(|c| c >= self.threshold),
            coefficient,
            cost,
        }
    }
}

/// Pearson correlation coefficient; `None` when either vector is
/// constant (zero variance).
fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        None
    } else {
        Some(sxy / (sxx * syy).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;
    use stepstone_adversary::{ChaffInjector, ChaffModel, Transform, UniformPerturbation};
    use stepstone_flow::{TimeDelta, Timestamp};
    use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};

    fn interactive(n: usize, seed: u64) -> Flow {
        SessionGenerator::new(InteractiveProfile::telnet()).generate(
            n,
            Timestamp::ZERO,
            &mut Seed::new(seed).rng(0),
        )
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        Seed::new(seed).rng(4)
    }

    #[test]
    fn identical_flows_correlate_perfectly() {
        let f = interactive(300, 1);
        let out = IpdCorrelationDetector::new(0.8).correlate(&f, &f);
        assert!(out.correlated);
        assert!((out.coefficient.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mild_perturbation_survives() {
        let f = interactive(300, 2);
        let g = UniformPerturbation::new(TimeDelta::from_millis(200)).apply_with(&f, &mut rng(2));
        let out = IpdCorrelationDetector::new(0.8).correlate(&f, &g);
        assert!(out.correlated, "{out:?}");
    }

    #[test]
    fn chaff_destroys_the_alignment() {
        let f = interactive(300, 3);
        let g = ChaffInjector::new(ChaffModel::Poisson { rate: 2.0 }).apply_with(&f, &mut rng(3));
        let out = IpdCorrelationDetector::new(0.8).correlate(&f, &g);
        assert!(!out.correlated, "{out:?}");
    }

    #[test]
    fn unrelated_flows_do_not_correlate() {
        let f = interactive(300, 4);
        let g = interactive(300, 5);
        let out = IpdCorrelationDetector::new(0.8).correlate(&f, &g);
        assert!(!out.correlated, "{out:?}");
    }

    #[test]
    fn short_flows_are_rejected() {
        let f = interactive(2, 6);
        let out = IpdCorrelationDetector::new(0.8).correlate(&f, &f);
        assert!(!out.correlated);
        assert_eq!(out.coefficient, None);
    }

    #[test]
    fn constant_ipds_have_no_defined_coefficient() {
        let f = Flow::from_timestamps((0..10).map(Timestamp::from_secs)).unwrap();
        let out = IpdCorrelationDetector::new(0.8).correlate(&f, &f);
        assert_eq!(out.coefficient, None);
        assert!(!out.correlated);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn rejects_bad_threshold() {
        let _ = IpdCorrelationDetector::new(1.5);
    }
}
