//! Shared fixtures for the benchmark harness.
//!
//! Each bench target regenerates part of the paper's evaluation:
//!
//! * `figures` — every table/figure runner (Figs 3–10, §4.2, Table 1);
//! * `algorithms` — per-algorithm correlation micro-benchmarks
//!   (correlated and uncorrelated pairs at the headline grid point);
//! * `ablations` — design-choice sweeps (phase-1 scope, adjustment `a`,
//!   redundancy `r`, Optimal cost bound);
//! * `substrates` — traffic generation, the chain simulator, matching,
//!   embedding and decoding in isolation.
//!
//! Run with `cargo bench -p stepstone-bench [--bench <target>]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_flow::{Flow, TimeDelta, Timestamp};
use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

/// A deterministic watermarked session plus attacked flows, shared by
/// the bench targets.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// The unmarked origin flow.
    pub original: Flow,
    /// The watermarked flow.
    pub marked: Flow,
    /// The watermarker (key + paper parameters).
    pub marker: IpdWatermarker,
    /// The embedded watermark.
    pub watermark: Watermark,
    /// The marked flow after Δ = 7 s perturbation and λc = 3 chaff.
    pub correlated: Flow,
    /// An unrelated flow under the same attack.
    pub uncorrelated: Flow,
}

impl Fixture {
    /// Builds the standard fixture (1000-packet session, paper
    /// parameters, headline attack point).
    pub fn standard() -> Self {
        Fixture::with_params(WatermarkParams::paper(), 1000)
    }

    /// Builds a fixture with custom watermark parameters.
    pub fn with_params(params: WatermarkParams, packets: usize) -> Self {
        let seed = Seed::new(0xBE7C);
        let gen = SessionGenerator::new(InteractiveProfile::ssh());
        let original = gen.generate(packets, Timestamp::ZERO, &mut seed.child(0).rng(0));
        let marker = IpdWatermarker::new(WatermarkKey::new(0xB0B), params);
        let watermark = Watermark::random(params.bits, &mut WatermarkKey::new(1).rng(1));
        let marked = marker
            .embed(&original, &watermark)
            .expect("fixture flows host the layout");
        let attack = |flow: &Flow, label: u64| {
            AdversaryPipeline::new()
                .then(UniformPerturbation::new(TimeDelta::from_secs(7)))
                .then(ChaffInjector::new(ChaffModel::Poisson { rate: 3.0 }))
                .apply(flow, seed.child(label))
        };
        let correlated = attack(&marked, 1);
        let other = gen.generate(packets, Timestamp::ZERO, &mut seed.child(2).rng(0));
        let uncorrelated = attack(&other, 3);
        Fixture {
            original,
            marked,
            marker,
            watermark,
            correlated,
            uncorrelated,
        }
    }

    /// The headline maximum delay (7 s).
    pub fn delta(&self) -> TimeDelta {
        TimeDelta::from_secs(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_well_formed() {
        let a = Fixture::standard();
        let b = Fixture::standard();
        assert_eq!(a.marked, b.marked);
        assert_eq!(a.correlated, b.correlated);
        assert!(a.correlated.chaff_count() > 0);
        assert_eq!(a.original.len(), 1000);
    }
}
