//! Online-engine throughput: replaying a fixed event stream through
//! the monitor at 1, 8 and 64 concurrent candidate pairs, with a
//! single shard and with one shard per available core.
//!
//! The event stream, flows and correlators are prepared outside the
//! measured section; each iteration replays the whole stream through a
//! fresh engine (ingest + flush), so time/iter divided by the event
//! count is the packet throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_core::{Algorithm, BoundCorrelator, WatermarkCorrelator};
use stepstone_flow::{Flow, Packet, TimeDelta, Timestamp};
use stepstone_monitor::{
    DecodeFault, FaultHook, FlowId, Monitor, MonitorConfig, PairId, UpstreamId,
};
use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

/// A small scheme keeps a single decode cheap enough that the 64-pair
/// point stays in benchmark territory.
fn bench_params() -> WatermarkParams {
    WatermarkParams {
        bits: 8,
        redundancy: 2,
        offset: 1,
        adjustment: TimeDelta::from_millis(500),
        threshold: 2,
    }
}

/// One registered upstream plus `pairs` suspicious flows (the true
/// downstream and `pairs - 1` decoys), merged into a time-ordered
/// event stream.
fn scenario(pairs: usize) -> (BoundCorrelator, Vec<(FlowId, Packet)>) {
    let seed = Seed::new(0x90_17_08);
    let params = bench_params();
    let gen = SessionGenerator::new(InteractiveProfile::ssh());
    let interactive =
        |label: u64| gen.generate(300, Timestamp::ZERO, &mut seed.child(label).rng(0));
    let attack = |flow: &Flow, label: u64| {
        AdversaryPipeline::new()
            .then(UniformPerturbation::new(TimeDelta::from_secs(2)))
            .then(ChaffInjector::new(ChaffModel::Poisson { rate: 1.0 }))
            .apply(flow, seed.child(label))
    };
    let original = interactive(0);
    let marker = IpdWatermarker::new(WatermarkKey::new(0xB0B), params);
    let watermark = Watermark::random(params.bits, &mut WatermarkKey::new(1).rng(1));
    let marked = marker.embed(&original, &watermark).unwrap();
    let bound = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(2),
        Algorithm::GreedyPlus,
    )
    .bind(&original, &marked)
    .unwrap();

    let mut flows: Vec<(FlowId, Flow)> = vec![(FlowId(0), attack(&marked, 1))];
    for d in 1..pairs {
        flows.push((
            FlowId(d as u64),
            attack(&interactive(100 + d as u64), 200 + d as u64),
        ));
    }
    let mut events: Vec<(FlowId, Packet)> = flows
        .iter()
        .flat_map(|(id, flow)| flow.packets().iter().map(move |&p| (*id, p)))
        .collect();
    events.sort_by_key(|&(_, p)| p.timestamp());
    (bound, events)
}

/// Replays the prepared stream through a fresh engine, optionally with
/// a fault hook armed.
fn replay_hooked(
    bound: &BoundCorrelator,
    events: &[(FlowId, Packet)],
    shards: usize,
    hook: Option<FaultHook>,
) -> u64 {
    // Queue capacity is sized so no decode is ever dropped: both shard
    // counts then run the same decode work and the comparison isolates
    // scheduling overhead vs. parallelism.
    let mut config = MonitorConfig::default()
        .with_shards(shards)
        .with_decode_batch(64)
        .with_queue_capacity(256);
    if let Some(hook) = hook {
        config = config.with_fault_hook(hook);
    }
    let mut monitor = Monitor::new(config);
    monitor.register_upstream(UpstreamId(0), bound.clone());
    for &(flow, packet) in events {
        monitor.ingest(flow, packet);
    }
    monitor.finish().stats.decodes_run
}

/// Replays the prepared stream through a fresh engine.
fn replay(bound: &BoundCorrelator, events: &[(FlowId, Packet)], shards: usize) -> u64 {
    replay_hooked(bound, events, shards, None)
}

fn monitor_throughput(c: &mut Criterion) {
    let max_shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let mut group = c.benchmark_group("monitor_throughput");
    group.sample_size(10);
    for pairs in [1usize, 8, 64] {
        let (bound, events) = scenario(pairs);
        for shards in [1usize, max_shards] {
            group.bench_with_input(
                BenchmarkId::new(format!("pairs{pairs}"), format!("shards{shards}")),
                &(pairs, shards),
                |b, &(_, shards)| b.iter(|| replay(&bound, &events, shards)),
            );
        }
        println!(
            "monitor_throughput: pairs{pairs} stream = {} packets/iter",
            events.len()
        );
    }
    group.finish();
}

/// Chaos-off vs chaos-armed-but-idle: the same 8-pair replay with no
/// hook installed and with a [`FaultHook`] that always answers
/// [`DecodeFault::None`]. The armed hook exercises the full injection
/// seam — one `Option` check plus one `Arc<dyn Fn>` dispatch per
/// decode — without firing a single fault, so the pair of numbers
/// bounds what the seams cost a production (chaos-off) deployment.
fn chaos_seam_overhead(c: &mut Criterion) {
    let (bound, events) = scenario(8);
    let mut group = c.benchmark_group("chaos_seam_overhead");
    // Worker spawn/join jitter dominates a single replay; a larger
    // sample keeps the median stable enough to bound a percent-level
    // difference.
    group.sample_size(40);
    group.bench_function("pairs8/chaos_off", |b| {
        b.iter(|| replay_hooked(&bound, &events, 1, None))
    });
    group.bench_function("pairs8/chaos_armed_idle", |b| {
        b.iter(|| {
            let idle = FaultHook::new(|_, _| DecodeFault::None);
            replay_hooked(&bound, &events, 1, Some(idle))
        })
    });
    // The seam in isolation: one armed-but-idle oracle consultation,
    // exactly what each decode pays over the unarmed `Option` check.
    // The end-to-end pair above sits inside worker spawn/join noise, so
    // this is the number that actually bounds the per-decode cost.
    group.bench_function("hook_dispatch", |b| {
        let idle = FaultHook::new(|_, _| DecodeFault::None);
        let pair = PairId {
            upstream: UpstreamId(0),
            flow: FlowId(0),
        };
        let mut seq = 0u64;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            std::hint::black_box(idle.fault(std::hint::black_box(seq), pair))
        })
    });
    group.finish();
}

criterion_group!(benches, monitor_throughput, chaos_seam_overhead);
criterion_main!(benches);
