//! Telemetry hot-path overhead: counter increments, histogram records
//! and the `time!`/`span!` macros against an uninstrumented baseline.
//!
//! The baseline workload is the exact code the `disabled` cargo
//! feature compiles the macros down to, so `timed_sum/baseline` vs
//! `timed_sum/instrumented` is the enabled-vs-disabled comparison
//! without needing two feature builds of the same binary.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stepstone_telemetry::{time, Counter, Gauge, Histogram, Registry, SpanLog, Timer};

/// A small arithmetic workload standing in for "real work": cheap
/// enough that instrumentation overhead would show, real enough that
/// the optimizer cannot delete it.
fn workload(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn hot_path_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");

    let counter = Counter::new();
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = Gauge::new();
    group.bench_function("gauge_add", |b| b.iter(|| gauge.add(black_box(1))));

    let histogram = Histogram::new();
    let mut v = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_add(997) & 0xFFFF;
            histogram.record(black_box(v));
        })
    });

    let log = SpanLog::new(1024);
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| {
            stepstone_telemetry::span!(log, "bench");
        })
    });

    // Registered handles go through the same atomics; a lookup is the
    // cold path and should stay out of any hot loop.
    let registry = Registry::new();
    let handle = registry.counter("bench_total", "bench");
    group.bench_function("registered_counter_inc", |b| b.iter(|| handle.inc()));
    group.bench_function("registry_lookup", |b| {
        b.iter(|| registry.counter("bench_total", "bench"))
    });

    group.finish();
}

fn timed_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("timed_sum");
    let n = 256u64;

    group.bench_function("baseline", |b| b.iter(|| workload(black_box(n))));

    let histogram = Arc::new(Histogram::new());
    group.bench_function("instrumented", |b| {
        b.iter(|| time!(histogram, workload(black_box(n))))
    });

    // Timer alone, to separate clock cost from record cost.
    group.bench_function("timer_only", |b| {
        b.iter(|| {
            let t = Timer::start();
            let r = workload(black_box(n));
            black_box(t);
            r
        })
    });

    group.finish();
}

criterion_group!(benches, hot_path_primitives, timed_workload);
criterion_main!(benches);
