//! One benchmark per reproduced table/figure: how long each experiment
//! takes to regenerate at quick scale (the rows/series themselves are
//! printed by the `repro` binary; see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use stepstone_experiments::{figures, ExperimentConfig, Scale};

fn bench_figures(c: &mut Criterion) {
    let cfg = ExperimentConfig::new(Scale::Quick);
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("table1", |b| b.iter(|| figures::table1(&cfg)));
    group.bench_function("fig3_detection_vs_chaff", |b| {
        b.iter(|| figures::fig3(&cfg))
    });
    group.bench_function("fig4_detection_vs_delay", |b| {
        b.iter(|| figures::fig4(&cfg))
    });
    group.bench_function("fig5_fpr_vs_chaff", |b| b.iter(|| figures::fig5(&cfg)));
    group.bench_function("fig6_fpr_vs_delay", |b| b.iter(|| figures::fig6(&cfg)));
    group.bench_function("fig7_cost_vs_chaff_corr", |b| {
        b.iter(|| figures::fig7(&cfg))
    });
    group.bench_function("fig8_cost_vs_delay_corr", |b| {
        b.iter(|| figures::fig8(&cfg))
    });
    group.bench_function("fig9_cost_vs_chaff_uncorr", |b| {
        b.iter(|| figures::fig9(&cfg))
    });
    group.bench_function("fig10_cost_vs_delay_uncorr", |b| {
        b.iter(|| figures::fig10(&cfg))
    });
    group.finish();

    let mut group = c.benchmark_group("sections");
    group.sample_size(10);
    group.bench_function("synthetic_tcplib", |b| {
        b.iter(|| figures::synthetic_all(&cfg))
    });
    group.bench_function("summary", |b| b.iter(|| figures::summary(&cfg)));
    group.bench_function("future_loss", |b| b.iter(|| figures::future_loss(&cfg)));
    group.bench_function("future_repack", |b| b.iter(|| figures::future_repack(&cfg)));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
