//! Wire-ingestion throughput: parsing a classic-pcap capture and
//! demultiplexing it into flows, measured separately so header parsing
//! and flow-table cost are distinguishable.
//!
//! The capture is built once outside the measured section: 64
//! interleaved UDP flows of 3,125 packets each (200,000 packets,
//! ~16 MB). Each iteration walks the whole capture, so time/iter
//! divided by 200,000 is the per-packet cost; the ISSUE acceptance
//! floor is 500k packets/sec in release.

use criterion::{criterion_group, criterion_main, Criterion};
use stepstone_flow::{Flow, FlowBuilder, Packet, Timestamp};
use stepstone_ingest::{parse_capture, write_flows, FiveTuple, FlowDemux};

const FLOWS: usize = 64;
const PACKETS_PER_FLOW: usize = 3_125;
const TOTAL_PACKETS: usize = FLOWS * PACKETS_PER_FLOW;

/// 64 flows with interleaved, strictly staggered timestamps: flow `f`
/// sends at `t = f*127 µs + i*10 ms`, so the merged capture alternates
/// flows the way a real tap would.
fn build_capture() -> Vec<u8> {
    let flows: Vec<(FiveTuple, Flow)> = (0..FLOWS)
        .map(|f| {
            let tuple = FiveTuple::udp_v4(
                [10, 0, (f >> 8) as u8, (f & 0xFF) as u8],
                40_000 + f as u16,
                [192, 0, 2, 1],
                4_000,
            );
            let mut b = FlowBuilder::new();
            for i in 0..PACKETS_PER_FLOW {
                let micros = (f as i64) * 127 + (i as i64) * 10_000;
                b.push(Packet::new(Timestamp::from_micros(micros), 64))
                    .expect("timestamps increase");
            }
            (tuple, b.finish())
        })
        .collect();
    let tagged: Vec<(FiveTuple, &Flow)> = flows.iter().map(|(t, f)| (*t, f)).collect();
    let mut bytes = Vec::new();
    let written = write_flows(&mut bytes, &tagged).expect("in-memory write cannot fail");
    assert_eq!(written as usize, TOTAL_PACKETS);
    bytes
}

fn ingest_throughput(c: &mut Criterion) {
    let bytes = build_capture();
    println!(
        "ingest_throughput: capture = {} packets, {} bytes",
        TOTAL_PACKETS,
        bytes.len()
    );
    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);
    group.bench_function("parse_200k", |b| {
        b.iter(|| {
            let mut records = 0u64;
            for r in parse_capture(&bytes).expect("capture header is valid") {
                r.expect("capture body is valid");
                records += 1;
            }
            assert_eq!(records as usize, TOTAL_PACKETS);
            records
        })
    });
    group.bench_function("parse_demux_200k", |b| {
        b.iter(|| {
            let mut demux = FlowDemux::new();
            for r in parse_capture(&bytes).expect("capture header is valid") {
                demux.push(&r.expect("capture body is valid"));
            }
            let (flows, stats) = demux.finish();
            assert_eq!(flows.len(), FLOWS);
            assert_eq!(stats.packets as usize, TOTAL_PACKETS);
            flows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, ingest_throughput);
criterion_main!(benches);
