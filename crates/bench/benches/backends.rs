//! Backend decode cost: one full-window batch decode of every
//! suspicious flow against one bound upstream, at 1, 8 and 64 candidate
//! pairs, for each [`BackendKind`].
//!
//! Flows and correlators are prepared outside the measured section;
//! each iteration decodes the whole candidate set, so time/iter divided
//! by the pair count is the per-pair decode latency. The first flow is
//! the true downstream, the rest are decoys — the same mix the monitor
//! sees, so the paper backend's early-exit asymmetry (cheap clears,
//! expensive confirms) is represented in proportion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_core::{Algorithm, BackendKind, BoundCorrelator, WatermarkCorrelator};
use stepstone_flow::{Flow, TimeDelta, Timestamp};
use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

/// A small scheme keeps a single decode cheap enough that the 64-pair
/// point stays in benchmark territory.
fn bench_params() -> WatermarkParams {
    WatermarkParams {
        bits: 8,
        redundancy: 2,
        offset: 1,
        adjustment: TimeDelta::from_millis(500),
        threshold: 2,
    }
}

const DELTA: TimeDelta = TimeDelta::from_secs(2);
const CHAFF: f64 = 1.0;

/// One bound correlator per backend over the same upstream, plus the
/// suspicious flows (true downstream first, then decoys).
fn scenario(pairs: usize) -> (Vec<BoundCorrelator>, Vec<Flow>) {
    let seed = Seed::new(0x90_17_08);
    let params = bench_params();
    let gen = SessionGenerator::new(InteractiveProfile::ssh());
    let interactive =
        |label: u64| gen.generate(300, Timestamp::ZERO, &mut seed.child(label).rng(0));
    let attack = |flow: &Flow, label: u64| {
        AdversaryPipeline::new()
            .then(UniformPerturbation::new(DELTA))
            .then(ChaffInjector::new(ChaffModel::Poisson { rate: CHAFF }))
            .apply(flow, seed.child(label))
    };
    let original = interactive(0);
    let marker = IpdWatermarker::new(WatermarkKey::new(0xB0B), params);
    let watermark = Watermark::random(params.bits, &mut WatermarkKey::new(1).rng(1));
    let marked = marker.embed(&original, &watermark).unwrap();
    let correlators = BackendKind::ALL
        .map(|kind| {
            WatermarkCorrelator::new(marker, watermark.clone(), DELTA, Algorithm::GreedyPlus)
                .bind_backend(kind, CHAFF, &original, &marked)
                .unwrap()
        })
        .to_vec();
    let mut flows = vec![attack(&marked, 1)];
    for d in 1..pairs {
        flows.push(attack(&interactive(100 + d as u64), 200 + d as u64));
    }
    (correlators, flows)
}

fn backend_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_decode");
    for pairs in [1usize, 8, 64] {
        let (correlators, flows) = scenario(pairs);
        for bound in &correlators {
            group.bench_with_input(
                BenchmarkId::new(bound.backend().name(), format!("pairs{pairs}")),
                &pairs,
                |b, _| {
                    b.iter(|| {
                        let mut correlated = 0usize;
                        for flow in &flows {
                            correlated +=
                                usize::from(std::hint::black_box(bound.correlate(flow)).correlated);
                        }
                        correlated
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, backend_decode);
criterion_main!(benches);
