//! Design-choice ablations: how the choices DESIGN.md calls out affect
//! correlation runtime. The matching quality ablations (detection/FPR
//! tables for the same sweeps) are produced by
//! `repro ablations` — these benches cover the cost axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stepstone_bench::Fixture;
use stepstone_core::{Algorithm, Phase1Scope, WatermarkCorrelator};
use stepstone_flow::TimeDelta;
use stepstone_watermark::WatermarkParams;

/// Phase-1 scope: all-packets simplification (the paper's rule) vs
/// embedding-packets-only (cheaper, more permissive).
fn ablation_tightening(c: &mut Criterion) {
    let fx = Fixture::standard();
    let mut group = c.benchmark_group("ablation_tightening");
    for (name, scope) in [
        ("all_packets", Phase1Scope::AllPackets),
        ("embedding_only", Phase1Scope::EmbeddingOnly),
    ] {
        let correlator = WatermarkCorrelator::new(
            fx.marker,
            fx.watermark.clone(),
            fx.delta(),
            Algorithm::GreedyPlus,
        )
        .with_phase1_scope(scope);
        let prepared = correlator.prepare(&fx.original, &fx.marked).unwrap();
        group.bench_function(BenchmarkId::new("correlated", name), |b| {
            b.iter(|| prepared.correlate(&fx.correlated))
        });
        group.bench_function(BenchmarkId::new("uncorrelated", name), |b| {
            b.iter(|| prepared.correlate(&fx.uncorrelated))
        });
    }
    group.finish();
}

/// Watermark adjustment `a`: smaller adjustments leave more mismatched
/// bits for the later phases to chase.
fn ablation_wm_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wm_delay");
    group.sample_size(20);
    for millis in [300i64, 600, 1200, 2400] {
        let params = WatermarkParams::paper().with_adjustment(TimeDelta::from_millis(millis));
        let fx = Fixture::with_params(params, 1000);
        let correlator = WatermarkCorrelator::new(
            fx.marker,
            fx.watermark.clone(),
            fx.delta(),
            Algorithm::GreedyPlus,
        );
        let prepared = correlator.prepare(&fx.original, &fx.marked).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(millis), &fx, |b, fx| {
            b.iter(|| prepared.correlate(&fx.correlated))
        });
    }
    group.finish();
}

/// Redundancy `r`: endpoint count scales linearly with `r`.
fn ablation_redundancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_redundancy");
    group.sample_size(20);
    for r in [2usize, 4, 6] {
        let params = WatermarkParams::paper().with_redundancy(r);
        let fx = Fixture::with_params(params, 1500);
        let correlator = WatermarkCorrelator::new(
            fx.marker,
            fx.watermark.clone(),
            fx.delta(),
            Algorithm::GreedyPlus,
        );
        let prepared = correlator.prepare(&fx.original, &fx.marked).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(r), &fx, |b, fx| {
            b.iter(|| prepared.correlate(&fx.correlated))
        });
    }
    group.finish();
}

/// Optimal's cost bound: the paper's 10⁶ vs a tight and a loose bound.
fn ablation_cost_bound(c: &mut Criterion) {
    let fx = Fixture::standard();
    let mut group = c.benchmark_group("ablation_cost_bound");
    for bound in [10_000u64, 1_000_000, 100_000_000] {
        let correlator = WatermarkCorrelator::new(
            fx.marker,
            fx.watermark.clone(),
            fx.delta(),
            Algorithm::Optimal { cost_bound: bound },
        )
        // The permissive phase-1 scope pushes work into the bounded
        // search so the bound actually matters.
        .with_phase1_scope(Phase1Scope::EmbeddingOnly);
        let prepared = correlator.prepare(&fx.original, &fx.marked).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bound), &fx, |b, fx| {
            b.iter(|| prepared.correlate(&fx.uncorrelated))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_tightening,
    ablation_wm_delay,
    ablation_redundancy,
    ablation_cost_bound
);
criterion_main!(benches);
