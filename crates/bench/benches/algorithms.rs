//! Per-algorithm correlation micro-benchmarks at the headline grid
//! point (Δ = 7 s, λc = 3) — wall-clock companions to the paper's
//! packets-accessed cost metric (Figs 7–10).

use criterion::{criterion_group, criterion_main, Criterion};
use stepstone_baselines::{BasicWatermarkDetector, ZhangGuanDetector};
use stepstone_bench::Fixture;
use stepstone_core::{Algorithm, WatermarkCorrelator};

fn bench_algorithms(c: &mut Criterion) {
    let fx = Fixture::standard();
    let algorithms = [
        ("greedy", Algorithm::Greedy),
        ("greedy_plus", Algorithm::GreedyPlus),
        ("optimal", Algorithm::optimal_paper()),
    ];

    let mut group = c.benchmark_group("correlated");
    for (name, alg) in algorithms {
        let correlator = WatermarkCorrelator::new(fx.marker, fx.watermark.clone(), fx.delta(), alg);
        let prepared = correlator.prepare(&fx.original, &fx.marked).unwrap();
        group.bench_function(name, |b| b.iter(|| prepared.correlate(&fx.correlated)));
    }
    {
        let basic =
            BasicWatermarkDetector::new(fx.marker, fx.watermark.clone(), &fx.original).unwrap();
        group.bench_function("basic_wm", |b| b.iter(|| basic.correlate(&fx.correlated)));
        let zhang = ZhangGuanDetector::paper(fx.delta());
        group.bench_function("zhang", |b| {
            b.iter(|| zhang.correlate(&fx.marked, &fx.correlated))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("uncorrelated");
    for (name, alg) in algorithms {
        let correlator = WatermarkCorrelator::new(fx.marker, fx.watermark.clone(), fx.delta(), alg);
        let prepared = correlator.prepare(&fx.original, &fx.marked).unwrap();
        group.bench_function(name, |b| b.iter(|| prepared.correlate(&fx.uncorrelated)));
    }
    {
        let zhang = ZhangGuanDetector::paper(fx.delta());
        group.bench_function("zhang", |b| {
            b.iter(|| zhang.correlate(&fx.marked, &fx.uncorrelated))
        });
    }
    group.finish();

    // Preparation (layout derivation + endpoint flattening), amortized
    // across a false-positive sweep in practice.
    let mut group = c.benchmark_group("prepare");
    let correlator = WatermarkCorrelator::new(
        fx.marker,
        fx.watermark.clone(),
        fx.delta(),
        Algorithm::GreedyPlus,
    );
    group.bench_function("greedy_plus", |b| {
        b.iter(|| correlator.prepare(&fx.original, &fx.marked).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
