//! Substrate micro-benchmarks: every subsystem the correlation pipeline
//! sits on, in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use stepstone_adversary::{ChaffInjector, ChaffModel, Transform, UniformPerturbation};
use stepstone_bench::Fixture;
use stepstone_flow::{TimeDelta, Timestamp};
use stepstone_matching::{CostMeter, Matcher};
use stepstone_netsim::SteppingStoneChain;
use stepstone_traffic::{tcplib::TelnetModel, InteractiveProfile, Seed, SessionGenerator};

fn bench_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic");
    group.bench_function("interactive_1000", |b| {
        let gen = SessionGenerator::new(InteractiveProfile::ssh());
        let mut rng = Seed::new(1).rng(0);
        b.iter(|| gen.generate(1000, Timestamp::ZERO, &mut rng))
    });
    group.bench_function("tcplib_1000", |b| {
        let model = TelnetModel::new();
        let mut rng = Seed::new(2).rng(0);
        b.iter(|| model.generate(1000, Timestamp::ZERO, &mut rng))
    });
    group.finish();
}

fn bench_netsim(c: &mut Criterion) {
    let fx = Fixture::standard();
    let chain = SteppingStoneChain::builder()
        .hop(TimeDelta::from_millis(40), TimeDelta::from_millis(20))
        .hop(TimeDelta::from_millis(60), TimeDelta::from_millis(30))
        .build();
    c.bench_function("netsim/two_hop_1000", |b| {
        b.iter(|| chain.simulate(&fx.marked, Seed::new(3)))
    });
}

fn bench_adversary(c: &mut Criterion) {
    let fx = Fixture::standard();
    let mut group = c.benchmark_group("adversary");
    group.bench_function("perturb_7s", |b| {
        let t = UniformPerturbation::new(TimeDelta::from_secs(7));
        let mut rng = Seed::new(4).rng(0);
        b.iter(|| t.apply_with(&fx.marked, &mut rng))
    });
    group.bench_function("chaff_poisson_3", |b| {
        let t = ChaffInjector::new(ChaffModel::Poisson { rate: 3.0 });
        let mut rng = Seed::new(5).rng(0);
        b.iter(|| t.apply_with(&fx.marked, &mut rng))
    });
    group.finish();
}

fn bench_watermark(c: &mut Criterion) {
    let fx = Fixture::standard();
    let mut group = c.benchmark_group("watermark");
    group.bench_function("embed_paper_1000", |b| {
        b.iter(|| fx.marker.embed(&fx.original, &fx.watermark).unwrap())
    });
    group.bench_function("layout_derive", |b| {
        b.iter(|| fx.marker.layout_for_flow(&fx.original).unwrap())
    });
    let layout = fx.marker.layout_for_flow(&fx.original).unwrap();
    group.bench_function("decode_aligned", |b| {
        b.iter(|| fx.marker.decode_aligned(&fx.marked, &layout).unwrap())
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let fx = Fixture::standard();
    let matcher = Matcher::new(fx.delta());
    let mut group = c.benchmark_group("matching");
    group.bench_function("matching_sets", |b| {
        b.iter(|| {
            let mut meter = CostMeter::new();
            matcher
                .matching_sets(&fx.marked, &fx.correlated, &mut meter)
                .unwrap()
        })
    });
    group.bench_function("tighten", |b| {
        let mut meter = CostMeter::new();
        let sets = matcher
            .matching_sets(&fx.marked, &fx.correlated, &mut meter)
            .unwrap();
        b.iter(|| {
            let mut s = sets.clone();
            let mut meter = CostMeter::new();
            assert!(s.tighten(&mut meter));
            s
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_traffic,
    bench_netsim,
    bench_adversary,
    bench_watermark,
    bench_matching
);
criterion_main!(benches);
