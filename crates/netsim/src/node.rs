//! Network elements: wires, FIFO relay hosts and observation taps.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use stepstone_flow::{Flow, FlowBuilder, Packet, TimeDelta, Timestamp};

/// Identifies a node within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// What a node does with a delivered packet: forward it (after a delay)
/// to another node, and/or record it.
///
/// Implementations must be causal: the returned forwarding delay must be
/// non-negative.
pub trait Node: std::fmt::Debug {
    /// Handles `packet` arriving at simulated time `now`. Returns the
    /// forwarding delay and the packet to forward (usually the same
    /// packet), or `None` if the node absorbs it.
    fn receive(
        &mut self,
        packet: Packet,
        now: Timestamp,
        rng: &mut ChaCha8Rng,
    ) -> Option<(TimeDelta, Packet)>;
}

/// A propagation link with fixed latency plus uniform jitter in
/// `[0, jitter]`.
///
/// Jitter alone may reorder packets; in a real network, reordering of an
/// interactive TCP stream is hidden from the application by the
/// receiver, and the next hop's [`RelayHost`] restores FIFO order — the
/// simulation mirrors that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    latency: TimeDelta,
    jitter: TimeDelta,
}

impl Wire {
    /// Creates a wire.
    ///
    /// # Panics
    ///
    /// Panics if `latency` or `jitter` is negative.
    pub fn new(latency: TimeDelta, jitter: TimeDelta) -> Self {
        assert!(!latency.is_negative(), "wire latency must be non-negative");
        assert!(!jitter.is_negative(), "wire jitter must be non-negative");
        Wire { latency, jitter }
    }

    /// The fixed propagation latency.
    pub const fn latency(&self) -> TimeDelta {
        self.latency
    }

    /// The maximum uniform jitter.
    pub const fn jitter(&self) -> TimeDelta {
        self.jitter
    }

    /// An upper bound on the delay this wire can add to one packet.
    pub fn max_delay(&self) -> TimeDelta {
        self.latency + self.jitter
    }
}

impl Node for Wire {
    fn receive(
        &mut self,
        packet: Packet,
        _now: Timestamp,
        rng: &mut ChaCha8Rng,
    ) -> Option<(TimeDelta, Packet)> {
        let jitter = if self.jitter == TimeDelta::ZERO {
            TimeDelta::ZERO
        } else {
            TimeDelta::from_micros(rng.gen_range(0..=self.jitter.as_micros()))
        };
        Some((self.latency + jitter, packet))
    }
}

/// A stepping-stone host: a FIFO queue with a per-packet service time.
///
/// The host cannot release a packet before it has finished serving the
/// previous one, which is exactly the paper's order-preservation
/// assumption. Service time is `base + U(0, jitter)` (decryption,
/// re-encryption, scheduling noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayHost {
    service: TimeDelta,
    jitter: TimeDelta,
    /// Time the previous packet finished service.
    busy_until: Option<Timestamp>,
}

impl RelayHost {
    /// Creates a relay host.
    ///
    /// # Panics
    ///
    /// Panics if `service` or `jitter` is negative.
    pub fn new(service: TimeDelta, jitter: TimeDelta) -> Self {
        assert!(!service.is_negative(), "service time must be non-negative");
        assert!(!jitter.is_negative(), "service jitter must be non-negative");
        RelayHost {
            service,
            jitter,
            busy_until: None,
        }
    }

    /// The base per-packet service time.
    pub const fn service(&self) -> TimeDelta {
        self.service
    }

    /// The maximum uniform service jitter.
    pub const fn jitter(&self) -> TimeDelta {
        self.jitter
    }
}

impl Node for RelayHost {
    fn receive(
        &mut self,
        packet: Packet,
        now: Timestamp,
        rng: &mut ChaCha8Rng,
    ) -> Option<(TimeDelta, Packet)> {
        let jitter = if self.jitter == TimeDelta::ZERO {
            TimeDelta::ZERO
        } else {
            TimeDelta::from_micros(rng.gen_range(0..=self.jitter.as_micros()))
        };
        // Service starts when both the packet has arrived and the relay
        // is free (FIFO).
        let start = match self.busy_until {
            Some(busy) => now.max(busy),
            None => now,
        };
        let done = start + self.service + jitter;
        self.busy_until = Some(done);
        Some((done - now, packet))
    }
}

/// Records every packet it sees, in arrival order, and forwards it
/// unchanged with zero delay.
#[derive(Debug, Clone, Default)]
pub struct Tap {
    packets: Vec<Packet>,
}

impl Tap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        Tap::default()
    }

    /// Number of packets observed so far.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The observed flow.
    ///
    /// Arrival order at a tap is delivery order of the engine, which is
    /// time-sorted, so this cannot fail.
    pub fn flow(&self) -> Flow {
        let b: FlowBuilder = self.packets.iter().copied().collect();
        b.finish()
    }
}

impl Node for Tap {
    fn receive(
        &mut self,
        packet: Packet,
        now: Timestamp,
        _rng: &mut ChaCha8Rng,
    ) -> Option<(TimeDelta, Packet)> {
        self.packets.push(packet.at(now));
        Some((TimeDelta::ZERO, packet.at(now)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_traffic::Seed;

    fn rng() -> ChaCha8Rng {
        Seed::new(1).rng(0)
    }

    fn pkt(secs: i64) -> Packet {
        Packet::new(Timestamp::from_secs(secs), 64)
    }

    #[test]
    fn wire_adds_latency_within_bounds() {
        let mut w = Wire::new(TimeDelta::from_millis(50), TimeDelta::from_millis(20));
        let mut r = rng();
        for _ in 0..200 {
            let (d, _) = w.receive(pkt(0), Timestamp::ZERO, &mut r).unwrap();
            assert!(
                d >= TimeDelta::from_millis(50) && d <= TimeDelta::from_millis(70),
                "{d}"
            );
        }
        assert_eq!(w.max_delay(), TimeDelta::from_millis(70));
    }

    #[test]
    fn zero_jitter_wire_is_deterministic() {
        let mut w = Wire::new(TimeDelta::from_millis(10), TimeDelta::ZERO);
        let mut r = rng();
        let (d, _) = w.receive(pkt(0), Timestamp::ZERO, &mut r).unwrap();
        assert_eq!(d, TimeDelta::from_millis(10));
    }

    #[test]
    fn relay_serializes_back_to_back_packets() {
        let mut h = RelayHost::new(TimeDelta::from_millis(100), TimeDelta::ZERO);
        let mut r = rng();
        let now = Timestamp::ZERO;
        let (d1, _) = h.receive(pkt(0), now, &mut r).unwrap();
        let (d2, _) = h.receive(pkt(0), now, &mut r).unwrap();
        assert_eq!(d1, TimeDelta::from_millis(100));
        // Second packet waits for the first to finish service.
        assert_eq!(d2, TimeDelta::from_millis(200));
    }

    #[test]
    fn relay_is_idle_after_a_gap() {
        let mut h = RelayHost::new(TimeDelta::from_millis(100), TimeDelta::ZERO);
        let mut r = rng();
        let (_, _) = h.receive(pkt(0), Timestamp::ZERO, &mut r).unwrap();
        let (d2, _) = h.receive(pkt(0), Timestamp::from_secs(10), &mut r).unwrap();
        assert_eq!(d2, TimeDelta::from_millis(100));
    }

    #[test]
    fn tap_records_in_arrival_order() {
        let mut t = Tap::new();
        let mut r = rng();
        assert!(t.is_empty());
        t.receive(pkt(0), Timestamp::from_secs(1), &mut r);
        t.receive(pkt(0), Timestamp::from_secs(2), &mut r);
        assert_eq!(t.len(), 2);
        let f = t.flow();
        assert_eq!(f.timestamp(0), Timestamp::from_secs(1));
        assert_eq!(f.timestamp(1), Timestamp::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn wire_rejects_negative_latency() {
        let _ = Wire::new(TimeDelta::from_micros(-1), TimeDelta::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn relay_rejects_negative_service() {
        let _ = RelayHost::new(TimeDelta::from_micros(-1), TimeDelta::ZERO);
    }
}
