//! A minimal deterministic discrete-event engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use stepstone_flow::{Packet, Timestamp};

use crate::node::NodeId;

/// A packet delivery scheduled for a node at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated delivery time.
    pub time: Timestamp,
    /// Destination node.
    pub node: NodeId,
    /// The packet being delivered.
    pub packet: Packet,
    /// Monotone sequence number assigned by the queue; makes event
    /// ordering total and the simulation deterministic.
    seq: u64,
}

impl Event {
    /// The tie-breaking sequence number assigned at scheduling time.
    pub const fn seq(&self) -> u64 {
        self.seq
    }
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// breaking time ties by insertion order (FIFO).
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use stepstone_netsim::{EventQueue, NodeId};
/// use stepstone_flow::{Packet, Timestamp};
///
/// let mut q = EventQueue::new();
/// q.schedule(Timestamp::from_secs(2), NodeId::new(0), Packet::new(Timestamp::ZERO, 64));
/// q.schedule(Timestamp::from_secs(1), NodeId::new(1), Packet::new(Timestamp::ZERO, 64));
/// assert_eq!(q.pop().unwrap().time, Timestamp::from_secs(1));
/// assert_eq!(q.pop().unwrap().time, Timestamp::from_secs(2));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    now: Timestamp,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules delivery of `packet` to `node` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current simulation time — the
    /// engine does not support causality violations.
    pub fn schedule(&mut self, time: Timestamp, node: NodeId, packet: Packet) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            node,
            packet,
            seq,
        });
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// The current simulation time (time of the last popped event).
    pub const fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::new(Timestamp::ZERO, 64)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for secs in [5, 1, 3, 2, 4] {
            q.schedule(Timestamp::from_secs(secs), NodeId::new(0), pkt());
        }
        let times: Vec<i64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_secs(1);
        q.schedule(t, NodeId::new(10), pkt());
        q.schedule(t, NodeId::new(20), pkt());
        q.schedule(t, NodeId::new(30), pkt());
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| e.node.index())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_secs(2), NodeId::new(0), pkt());
        assert_eq!(q.now(), Timestamp::ZERO);
        q.pop();
        assert_eq!(q.now(), Timestamp::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_scheduling_into_the_past() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_secs(2), NodeId::new(0), pkt());
        q.pop();
        q.schedule(Timestamp::from_secs(1), NodeId::new(0), pkt());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Timestamp::ZERO, NodeId::new(0), pkt());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
