//! Discrete-event simulation of stepping-stone connection chains.
//!
//! The paper's threat model is a chain `h₁ → h₂ → … → hₙ` of hosts
//! relaying an interactive session (§2). This crate provides the
//! substrate that turns an *origin* flow into the flows observed on each
//! hop of such a chain:
//!
//! * [`engine`] — a small deterministic discrete-event engine
//!   ([`EventQueue`], [`Event`]) with stable tie-breaking;
//! * [`node`] — network elements implementing [`Node`]: jittery
//!   [`Wire`]s and FIFO [`RelayHost`]s with service times;
//! * [`chain`] — [`SteppingStoneChain`], a builder that assembles
//!   `source → wire → relay → … → tap` and returns the flow observed
//!   after every hop.
//!
//! Relays are FIFO, so the paper's assumptions 1–3 (every packet
//! forwarded exactly once, bounded delay, order preserved) hold by
//! construction; the per-hop delay bound is checked in tests. A
//! compromised stepping stone can inject cover traffic in-line
//! ([`ChainBuilder::with_chaff`]); the adversary's *deliberate*
//! perturbation and post-hoc chaff live in `stepstone-adversary` and
//! compose with this simulator.
//!
//! # Example
//!
//! ```
//! use stepstone_netsim::SteppingStoneChain;
//! use stepstone_flow::{Flow, TimeDelta, Timestamp};
//! use stepstone_traffic::Seed;
//!
//! # fn main() -> Result<(), stepstone_flow::FlowError> {
//! let origin = Flow::from_timestamps((0..50).map(Timestamp::from_secs))?;
//! let observed = SteppingStoneChain::builder()
//!     .hop(TimeDelta::from_millis(40), TimeDelta::from_millis(15))
//!     .hop(TimeDelta::from_millis(80), TimeDelta::from_millis(30))
//!     .build()
//!     .simulate(&origin, Seed::new(7));
//! assert_eq!(observed.hops(), 2);
//! let last = observed.at_hop(1);
//! assert_eq!(last.len(), origin.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod engine;
pub mod node;

pub use chain::{ChainBuilder, ChainObservation, SteppingStoneChain};
pub use engine::{Event, EventQueue};
pub use node::{Node, NodeId, RelayHost, Tap, Wire};
