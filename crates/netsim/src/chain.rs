//! Assembling and running whole stepping-stone chains.

use rand_chacha::ChaCha8Rng;
use stepstone_flow::{Flow, Packet, TimeDelta};
use stepstone_traffic::{PoissonProcess, Seed};

use crate::engine::EventQueue;
use crate::node::{Node, NodeId, RelayHost, Tap, Wire};

/// One hop of a chain: the wire into a stepping stone plus the
/// stepping-stone host itself, and optionally the chaff that host
/// injects.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Hop {
    wire: Wire,
    relay: RelayHost,
    /// Poisson chaff the stepping stone mixes into its output flow,
    /// in packets/second (a compromised relay generating cover
    /// traffic in-line, rather than post-hoc).
    chaff_rate: f64,
}

/// Builder for [`SteppingStoneChain`].
///
/// Produced by [`SteppingStoneChain::builder`].
#[derive(Debug, Clone, Default)]
pub struct ChainBuilder {
    hops: Vec<Hop>,
}

impl ChainBuilder {
    /// Adds a hop with the given wire latency and jitter, and a default
    /// relay (1 ms service, jitter equal to one tenth of the wire
    /// jitter).
    #[must_use]
    pub fn hop(mut self, latency: TimeDelta, jitter: TimeDelta) -> Self {
        self.hops.push(Hop {
            wire: Wire::new(latency, jitter),
            relay: RelayHost::new(TimeDelta::from_millis(1), jitter / 10),
            chaff_rate: 0.0,
        });
        self
    }

    /// Adds a hop with explicit wire and relay elements.
    #[must_use]
    pub fn hop_with(mut self, wire: Wire, relay: RelayHost) -> Self {
        self.hops.push(Hop {
            wire,
            relay,
            chaff_rate: 0.0,
        });
        self
    }

    /// Makes the most recently added stepping stone inject Poisson
    /// chaff at `rate` packets/second into its output flow — a
    /// compromised relay generating cover traffic in-line. The chaff is
    /// observed at this hop's tap and travels down the rest of the
    /// chain like any other packet.
    ///
    /// # Panics
    ///
    /// Panics if no hop was added yet, or `rate` is negative or not
    /// finite.
    #[must_use]
    pub fn with_chaff(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "chaff rate must be non-negative and finite, got {rate}"
        );
        self.hops
            .last_mut()
            // lint: allow(no_panic) builder misuse (with_chaff before any hop); documented panic contract
            .expect("with_chaff must follow a hop")
            .chaff_rate = rate;
        self
    }

    /// Finalizes the chain.
    ///
    /// # Panics
    ///
    /// Panics if no hops were added — a chain needs at least one
    /// stepping stone.
    pub fn build(self) -> SteppingStoneChain {
        assert!(
            !self.hops.is_empty(),
            "a stepping-stone chain needs at least one hop"
        );
        SteppingStoneChain { hops: self.hops }
    }
}

/// A configured chain `h₁ → h₂ → … → hₙ` ready to relay flows.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct SteppingStoneChain {
    hops: Vec<Hop>,
}

impl SteppingStoneChain {
    /// Starts building a chain.
    pub fn builder() -> ChainBuilder {
        ChainBuilder::default()
    }

    /// Number of hops (stepping stones).
    pub fn hops(&self) -> usize {
        self.hops.len()
    }

    /// An upper bound on the total delay the chain can add to a packet
    /// that never queues behind another (propagation + jitter + service).
    ///
    /// Queueing behind earlier packets can exceed this for bursts; the
    /// experiment harness folds that into the paper's single maximum
    /// delay `Δ`.
    pub fn max_unqueued_delay(&self) -> TimeDelta {
        self.hops
            .iter()
            .map(|h| h.wire.max_delay() + h.relay.service() + h.relay.jitter())
            .sum()
    }

    /// Relays `origin` through the chain, returning the flow observed by
    /// a tap after each stepping stone. Deterministic in `seed`.
    pub fn simulate(&self, origin: &Flow, seed: Seed) -> ChainObservation {
        // Node layout per hop i: wire(3i) → relay(3i+1) → tap(3i+2),
        // with each tap forwarding into the next hop's wire.
        let mut wires: Vec<Wire> = self.hops.iter().map(|h| h.wire).collect();
        let mut relays: Vec<RelayHost> = self.hops.iter().map(|h| h.relay).collect();
        let mut taps: Vec<Tap> = self.hops.iter().map(|_| Tap::new()).collect();
        let node_count = self.hops.len() * 3;

        let mut queue = EventQueue::new();
        // The source injects the origin flow into the first wire.
        for p in origin {
            queue.schedule(p.timestamp(), NodeId::new(0), *p);
        }
        // Chaff-injecting stepping stones: their cover traffic enters at
        // the tap (the relay's output) and flows onward from there.
        if let (Some(first), Some(last)) = (origin.first(), origin.last()) {
            let span = (last.timestamp() - first.timestamp())
                + self.max_unqueued_delay()
                + TimeDelta::from_secs(1);
            for (i, hop) in self.hops.iter().enumerate() {
                if hop.chaff_rate > 0.0 {
                    let process = PoissonProcess::new(hop.chaff_rate);
                    let mut chaff_rng = seed.child(0xC4AF ^ i as u64).rng(1);
                    for t in process.arrivals(first.timestamp(), span, &mut chaff_rng) {
                        queue.schedule(
                            t,
                            NodeId::new(3 * i + 2),
                            Packet::chaff(t, PoissonProcess::CHAFF_SIZE),
                        );
                    }
                }
            }
        }
        let mut rng: ChaCha8Rng = seed.rng(0xC4A1);
        while let Some(ev) = queue.pop() {
            let idx = ev.node.index();
            let (hop, role) = (idx / 3, idx % 3);
            let node: &mut dyn Node = match role {
                0 => &mut wires[hop],
                1 => &mut relays[hop],
                _ => &mut taps[hop],
            };
            if let Some((delay, packet)) = node.receive(ev.packet, ev.time, &mut rng) {
                let next = idx + 1;
                if next < node_count {
                    queue.schedule(ev.time + delay, NodeId::new(next), packet);
                }
            }
        }
        ChainObservation {
            flows: taps.iter().map(Tap::flow).collect(),
        }
    }
}

/// The flows observed after each hop of a simulated chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainObservation {
    flows: Vec<Flow>,
}

impl ChainObservation {
    /// Number of observation points (one per hop).
    pub fn hops(&self) -> usize {
        self.flows.len()
    }

    /// The flow observed after hop `index` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ hops()`.
    pub fn at_hop(&self, index: usize) -> &Flow {
        &self.flows[index]
    }

    /// The flow observed at the end of the chain.
    ///
    /// # Panics
    ///
    /// Panics if the chain had no hops (builder forbids this).
    pub fn last(&self) -> &Flow {
        // lint: allow(no_panic) the builder refuses to construct a zero-hop chain
        self.flows.last().expect("chains have at least one hop")
    }

    /// Iterates over per-hop flows, upstream to downstream.
    pub fn iter(&self) -> std::slice::Iter<'_, Flow> {
        self.flows.iter()
    }
}
