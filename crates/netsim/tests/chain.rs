//! End-to-end properties of the stepping-stone chain simulator.

use proptest::prelude::*;
use stepstone_flow::{Flow, TimeDelta, Timestamp};
use stepstone_netsim::{RelayHost, SteppingStoneChain, Wire};
use stepstone_traffic::{InteractiveProfile, Seed, SessionGenerator};

fn interactive_flow(packets: usize, seed: u64) -> Flow {
    SessionGenerator::new(InteractiveProfile::ssh()).generate(
        packets,
        Timestamp::ZERO,
        &mut Seed::new(seed).rng(0),
    )
}

fn two_hop_chain() -> SteppingStoneChain {
    SteppingStoneChain::builder()
        .hop(TimeDelta::from_millis(40), TimeDelta::from_millis(20))
        .hop(TimeDelta::from_millis(70), TimeDelta::from_millis(35))
        .build()
}

#[test]
fn every_packet_survives_every_hop() {
    let origin = interactive_flow(400, 1);
    let obs = two_hop_chain().simulate(&origin, Seed::new(2));
    assert_eq!(obs.hops(), 2);
    for hop in obs.iter() {
        assert_eq!(hop.len(), origin.len());
    }
}

#[test]
fn order_and_provenance_are_preserved() {
    let origin = interactive_flow(300, 3);
    let obs = two_hop_chain().simulate(&origin, Seed::new(4));
    for hop in obs.iter() {
        let indices: Vec<u32> = hop
            .iter()
            .map(|p| p.provenance().upstream_index().expect("no chaff in netsim"))
            .collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "provenance order broken");
        assert_eq!(indices, (0..origin.len() as u32).collect::<Vec<_>>());
    }
}

#[test]
fn delays_are_positive_and_mostly_bounded() {
    let origin = interactive_flow(500, 5);
    let chain = two_hop_chain();
    let obs = chain.simulate(&origin, Seed::new(6));
    let last = obs.last();
    let bound = chain.max_unqueued_delay();
    let mut over_bound = 0usize;
    for (i, p) in last.iter().enumerate() {
        let delay = p.timestamp() - origin.timestamp(i);
        assert!(delay > TimeDelta::ZERO, "packet {i} arrived early: {delay}");
        if delay > bound {
            over_bound += 1; // queueing behind a burst can exceed it
        }
    }
    // Queueing excess should be rare for interactive traffic.
    assert!(
        over_bound < last.len() / 10,
        "{over_bound} of {} packets exceeded the unqueued bound",
        last.len()
    );
}

#[test]
fn downstream_hops_only_add_delay() {
    let origin = interactive_flow(200, 7);
    let obs = two_hop_chain().simulate(&origin, Seed::new(8));
    let first = obs.at_hop(0);
    let last = obs.at_hop(1);
    for i in 0..origin.len() {
        assert!(last.timestamp(i) > first.timestamp(i));
    }
}

#[test]
fn simulation_is_deterministic_in_seed() {
    let origin = interactive_flow(200, 9);
    let chain = two_hop_chain();
    let a = chain.simulate(&origin, Seed::new(10));
    let b = chain.simulate(&origin, Seed::new(10));
    let c = chain.simulate(&origin, Seed::new(11));
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn explicit_elements_are_honoured() {
    let chain = SteppingStoneChain::builder()
        .hop_with(
            Wire::new(TimeDelta::from_secs(1), TimeDelta::ZERO),
            RelayHost::new(TimeDelta::ZERO, TimeDelta::ZERO),
        )
        .build();
    let origin = Flow::from_timestamps([Timestamp::ZERO, Timestamp::from_secs(5)]).unwrap();
    let obs = chain.simulate(&origin, Seed::new(1));
    // Pure 1s shift, no jitter anywhere.
    assert_eq!(
        obs.last().timestamps(),
        vec![Timestamp::from_secs(1), Timestamp::from_secs(6)]
    );
}

#[test]
#[should_panic(expected = "at least one hop")]
fn empty_chain_is_rejected() {
    let _ = SteppingStoneChain::builder().build();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chain_output_is_always_a_valid_ordered_flow(
        seed in 0u64..1000,
        packets in 1usize..150,
        latency_ms in 1i64..200,
        jitter_ms in 0i64..100,
    ) {
        let origin = interactive_flow(packets, seed);
        let chain = SteppingStoneChain::builder()
            .hop(TimeDelta::from_millis(latency_ms), TimeDelta::from_millis(jitter_ms))
            .build();
        let obs = chain.simulate(&origin, Seed::new(seed ^ 0xABCD));
        let out = obs.last();
        prop_assert_eq!(out.len(), origin.len());
        for w in out.packets().windows(2) {
            prop_assert!(w[0].timestamp() <= w[1].timestamp());
        }
        for i in 0..origin.len() {
            prop_assert!(out.timestamp(i) >= origin.timestamp(i));
        }
    }
}

#[test]
fn chaff_injecting_relay_mixes_cover_traffic() {
    let origin = interactive_flow(300, 21);
    let chain = SteppingStoneChain::builder()
        .hop(TimeDelta::from_millis(40), TimeDelta::from_millis(10))
        .with_chaff(2.0)
        .hop(TimeDelta::from_millis(60), TimeDelta::from_millis(20))
        .build();
    let obs = chain.simulate(&origin, Seed::new(22));
    // Chaff appears at the injecting hop and persists downstream.
    let first = obs.at_hop(0);
    let last = obs.at_hop(1);
    assert!(first.chaff_count() > 0, "no chaff at hop 0");
    assert_eq!(
        first.chaff_count(),
        last.chaff_count(),
        "chaff lost in transit"
    );
    // Payload is fully preserved and ordered.
    assert_eq!(last.payload_indices().len(), origin.len());
    let payload: Vec<u32> = last
        .iter()
        .filter_map(|p| p.provenance().upstream_index())
        .collect();
    let mut sorted = payload.clone();
    sorted.sort_unstable();
    assert_eq!(payload, sorted);
    // Rough rate check: ~2 pkt/s over the origin duration.
    let expected = 2.0 * origin.duration().as_secs_f64();
    let c = first.chaff_count() as f64;
    assert!(
        c > expected * 0.6 && c < expected * 1.5,
        "chaff count {c} vs {expected}"
    );
}

#[test]
fn chaff_free_hops_stay_clean() {
    let origin = interactive_flow(100, 23);
    let chain = SteppingStoneChain::builder()
        .hop(TimeDelta::from_millis(40), TimeDelta::from_millis(10))
        .hop(TimeDelta::from_millis(60), TimeDelta::from_millis(20))
        .with_chaff(3.0)
        .build();
    let obs = chain.simulate(&origin, Seed::new(24));
    assert_eq!(obs.at_hop(0).chaff_count(), 0, "chaff leaked upstream");
    assert!(obs.at_hop(1).chaff_count() > 0);
}

#[test]
#[should_panic(expected = "must follow a hop")]
fn with_chaff_requires_a_hop() {
    let _ = SteppingStoneChain::builder().with_chaff(1.0);
}
