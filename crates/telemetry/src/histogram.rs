//! Log-bucketed latency histograms with quantile estimation.
//!
//! Buckets are powers of two: bucket `i` counts values `v` with
//! `2^(i-1) < v <= 2^i` (bucket 0 holds `v <= 1`), and the final
//! bucket is the `+Inf` overflow. Recording is branch-light and
//! lock-free — a `leading_zeros` to pick the bucket, then two relaxed
//! atomic adds (bucket count and running sum); no allocation, no
//! floating point.
//!
//! Quantiles are estimated by rank-walking the cumulative bucket
//! counts and interpolating linearly inside the target bucket. Because
//! the exact order statistic lies in the same bucket the estimate is
//! interpolated in, the estimate is off by at most one bucket width —
//! a relative error bounded by 2× for power-of-two buckets (the
//! property test in `tests/histogram_props.rs` pins this down).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count, `+Inf` overflow included. 40 finite-ish buckets cover
/// 1 µs .. 2^38 µs (~76 h) — wider than any latency this workspace
/// can produce.
pub const BUCKETS: usize = 40;

/// The bucket a value lands in: the smallest `i` with `v <= 2^i`,
/// capped at the overflow bucket.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ceil(log2(v)) for v >= 2.
        ((64 - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i`, `None` for the `+Inf`
/// overflow bucket.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    (i < BUCKETS - 1).then(|| 1u64 << i)
}

/// A lock-free log-bucketed histogram of `u64` samples (the workspace
/// records microseconds, but the type is unit-agnostic).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample: two relaxed atomic adds, zero allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        // ordering: monotonic stat cells; no memory is published
        // through them.
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // ordering: see above — running total for the `_sum` series.
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum. Reads racing
    /// writers may miss in-flight samples but never tear a sample in
    /// half across `counts` and `sum` in a way that survives the next
    /// snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, cell) in counts.iter_mut().zip(&self.counts) {
            // ordering: stat read, no synchronization implied.
            *slot = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            // ordering: stat read, no synchronization implied.
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a histogram's state; all derived statistics
/// (count, quantiles, cumulative buckets) are computed here so they
/// are consistent with each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl HistogramSnapshot {
    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts (not cumulative), overflow bucket last.
    #[must_use]
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Cumulative `(upper_bound, count_less_or_equal)` pairs in bucket
    /// order; the final pair has `None` for `+Inf` and carries the
    /// total count. This is exactly the Prometheus `_bucket` series.
    pub fn cumulative(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        let mut cum = 0u64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            cum += c;
            (bucket_upper_bound(i), cum)
        })
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by interpolating
    /// within the bucket holding the target rank. Returns `None` for
    /// an empty histogram. The estimate lies in the same bucket as the
    /// exact order statistic, so it is within one power-of-two bucket
    /// width of the truth.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based target rank; q = 0 still needs the first sample.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum_before = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum_before + c >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let hi = match bucket_upper_bound(i) {
                    Some(hi) => hi,
                    // Overflow bucket: no finite upper bound; report
                    // its lower edge (a lower bound on the truth).
                    None => return Some(lo as f64),
                };
                let into = (rank - cum_before) as f64 / c as f64;
                return Some(lo as f64 + (hi - lo) as f64 * into);
            }
            cum_before += c;
        }
        // Unreachable: rank <= total and the loop covers every sample;
        // returning the max finite bound keeps this panic-free anyway.
        Some((1u64 << (BUCKETS - 2)) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // v <= 1 lands in bucket 0 (le = 1).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Exact powers of two sit at their own upper bound.
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        // Everything beyond the last finite bound overflows.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(10), Some(1024));
        assert_eq!(bucket_upper_bound(BUCKETS - 1), None);
    }

    #[test]
    fn every_bucket_boundary_value_lands_inside_its_own_bucket() {
        for i in 0..BUCKETS - 1 {
            let le = 1u64 << i;
            assert_eq!(bucket_index(le), i, "le={le} must map to bucket {i}");
            assert_eq!(bucket_index(le + 1), i + 1, "le+1 must spill over");
        }
    }

    #[test]
    fn record_fills_counts_and_sum() {
        let h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        h.record(100);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.sum(), 107);
        assert_eq!(snap.counts()[0], 1);
        assert_eq!(snap.counts()[2], 2);
        assert_eq!(snap.counts()[7], 1); // 64 < 100 <= 128
    }

    #[test]
    fn cumulative_series_ends_at_total() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let series: Vec<_> = snap.cumulative().collect();
        assert_eq!(series.len(), BUCKETS);
        assert_eq!(series[0], (Some(1), 1));
        assert_eq!(series[1], (Some(2), 2));
        assert_eq!(series[2], (Some(4), 3));
        let (last_bound, last_cum) = series[BUCKETS - 1];
        assert_eq!(last_bound, None);
        assert_eq!(last_cum, 4);
    }

    #[test]
    fn quantiles_of_a_uniform_ramp_are_ordered_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.50).unwrap();
        let p95 = snap.quantile(0.95).unwrap();
        let p99 = snap.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Exact p50 = 500 lives in (256, 512]; the estimate must too.
        assert!((256.0..=512.0).contains(&p50), "{p50}");
        // Exact p95 = 950 and p99 = 990 live in (512, 1024].
        assert!((512.0..=1024.0).contains(&p95), "{p95}");
        assert!((512.0..=1024.0).contains(&p99), "{p99}");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        assert_eq!(Histogram::new().snapshot().quantile(0.5), None);
    }

    #[test]
    fn quantile_handles_single_sample_and_overflow_bucket() {
        let h = Histogram::new();
        h.record(7);
        assert!((4.0..=8.0).contains(&h.snapshot().quantile(0.5).unwrap()));
        let h = Histogram::new();
        h.record(u64::MAX);
        // Overflow bucket reports its lower edge.
        let est = h.snapshot().quantile(0.99).unwrap();
        assert_eq!(est, (1u64 << (BUCKETS - 2)) as f64);
    }
}
