//! A tiny hand-rolled HTTP/1.1 exposition endpoint over
//! `std::net::TcpListener` — no dependencies, no async runtime.
//!
//! Scope is deliberately minimal: `GET /metrics` (Prometheus text),
//! `GET /healthz` (liveness), `GET /snapshot` (JSON). Connections are
//! handled one at a time on a single serving thread with short read
//! and write timeouts, which bounds both concurrency and how long a
//! slow or malicious client can hold the endpoint; a scrape that
//! arrives while another is in flight waits in the accept backlog.
//! That is the right trade for a metrics port — it can never compete
//! with the pipeline it observes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// Per-connection socket timeout: longer than any LAN scrape needs,
/// short enough that a stalled client cannot wedge the endpoint.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Poll interval of the accept loop while idle; also the upper bound
/// on how long shutdown takes to be observed.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Longest request head (request line + headers) the server reads.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running metrics endpoint. Dropping the handle signals the serving
/// thread to exit; [`shutdown`](MetricsServer::shutdown) additionally
/// joins it.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `registry` on a background thread.
    ///
    /// # Errors
    ///
    /// Any socket error from binding or inspecting the listener.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("telemetry-http".to_string())
            .spawn(move || accept_loop(&listener, &registry, &thread_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        // ordering: shutdown flag; the serving thread only polls it,
        // no data is transferred through it.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            // A panic on the serving thread already tore the endpoint
            // down; there is nothing further to unwind here.
            drop(thread.join());
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // ordering: shutdown flag; see shutdown().
        self.stop.store(true, Ordering::Relaxed);
        // No join: drop must not block. The thread observes the flag
        // within ACCEPT_POLL and exits on its own.
    }
}

fn accept_loop(listener: &TcpListener, registry: &Arc<Registry>, stop: &Arc<AtomicBool>) {
    // ordering: shutdown flag poll; no memory is transferred.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, registry),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (connection reset mid-handshake,
            // fd pressure): back off briefly and keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(stream: TcpStream, registry: &Arc<Registry>) {
    // The accepted socket inherits the listener's non-blocking flag on
    // some platforms; force blocking-with-timeout semantics.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if stream.set_read_timeout(Some(IO_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        return;
    }
    let mut stream = stream;
    let Some(path) = read_request_path(&mut stream) else {
        respond(
            &mut stream,
            400,
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        return;
    };
    match path.as_str() {
        "/metrics" => {
            let body = registry.render_prometheus();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/snapshot" => {
            let body = registry.render_json();
            respond(&mut stream, 200, "application/json", &body);
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads the request head (bounded) and returns the path of a `GET`
/// request line, `None` for anything unreadable or non-GET.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // A full head already? Only the request line matters; headers
        // are read (and discarded) just to drain the socket politely.
        if let Some(head_end) = find_head_end(&buf) {
            let head = std::str::from_utf8(&buf[..head_end]).ok()?;
            let mut parts = head.lines().next()?.split_whitespace();
            let method = parts.next()?;
            let path = parts.next()?;
            if method != "GET" {
                return None;
            }
            // Ignore any query string.
            let path = path.split('?').next().unwrap_or(path);
            return Some(path.to_string());
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").or_else(|| {
        // Be liberal: bare-LF clients (netcat, hand-typed requests).
        buf.windows(2).position(|w| w == b"\n\n")
    })
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Best effort: the client may have gone away; nothing to do then.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut content_type = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("Content-Type:") {
                content_type = v.trim().to_string();
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, content_type, body)
    }

    #[test]
    fn serves_metrics_healthz_snapshot_and_404() {
        let registry = Arc::new(Registry::new());
        registry.counter("demo_total", "demo").add(5);
        registry.histogram("demo_micros", "latency").record(12);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let (status, ctype, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(ctype.contains("text/plain"), "{ctype}");
        assert!(body.contains("demo_total 5"), "{body}");
        assert!(body.contains("demo_micros_bucket{le=\"16\"} 1"), "{body}");

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, ctype, body) = get(addr, "/snapshot");
        assert_eq!(status, 200);
        assert_eq!(ctype, "application/json");
        assert!(body.contains("\"demo_total\""), "{body}");

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        // Query strings are routed by bare path.
        let (status, _, _) = get(addr, "/metrics?x=1");
        assert_eq!(status, 200);

        server.shutdown();
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("400"), "{response}");

        // The endpoint keeps serving after a bad client.
        let (status, _, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        server.shutdown();
    }
}
