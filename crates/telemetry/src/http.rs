//! A tiny hand-rolled HTTP/1.1 exposition endpoint over
//! `std::net::TcpListener` — no dependencies, no async runtime.
//!
//! Scope is deliberately minimal: `GET /metrics` (Prometheus text),
//! `GET /healthz` (liveness), `GET /snapshot` (JSON). Connections are
//! handled one at a time on a single serving thread with short read
//! and write timeouts, which bounds both concurrency and how long a
//! slow or malicious client can hold the endpoint; a scrape that
//! arrives while another is in flight waits in the accept backlog.
//! That is the right trade for a metrics port — it can never compete
//! with the pipeline it observes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// Per-connection socket timeout: longer than any LAN scrape needs,
/// short enough that a stalled client cannot wedge the endpoint.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Poll interval of the accept loop while idle; also the upper bound
/// on how long shutdown takes to be observed.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Longest request head (request line + headers) the server reads.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Longest request body the server accepts (`Content-Length` above
/// this is refused outright). Sized for a capture upload, not a
/// metrics scrape.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request, as handed to a [`Routes`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// The path, query string stripped.
    pub path: String,
    /// The raw query string after `?`, if any (undecoded).
    pub query: Option<String>,
    /// The request body (empty unless `Content-Length` said
    /// otherwise). Bounded by [`MAX_BODY_BYTES`].
    pub body: Vec<u8>,
}

/// A response a [`Routes`] implementation produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type: "application/json".to_string(),
            body: body.into(),
        }
    }

    /// A plain-text error response with the given status.
    pub fn error(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into(),
        }
    }
}

/// Application routes layered over the built-in metrics endpoints.
///
/// [`handle`](Routes::handle) gets first look at every well-formed
/// request; returning `None` falls through to the built-ins
/// (`GET /metrics`, `/healthz`, `/snapshot`) and then 404 (GET) / 400
/// (anything else). Handlers run on the single serving thread — the
/// same serialization the scrape endpoints already rely on — so they
/// must stay quick and push real work onto a queue.
pub trait Routes: Send + Sync {
    /// Handles one request, or declines it with `None`.
    fn handle(&self, request: &Request) -> Option<Response>;
}

/// A running metrics endpoint. Dropping the handle signals the serving
/// thread to exit; [`shutdown`](MetricsServer::shutdown) additionally
/// joins it.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `registry` on a background thread.
    ///
    /// # Errors
    ///
    /// Any socket error from binding or inspecting the listener.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> std::io::Result<Self> {
        Self::bind_inner(addr, registry, None)
    }

    /// Like [`bind`](Self::bind), with application [`Routes`] layered
    /// over the built-in endpoints — the seam `repro serve` mounts its
    /// session API on.
    ///
    /// # Errors
    ///
    /// Any socket error from binding or inspecting the listener.
    pub fn bind_with_routes(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        routes: Arc<dyn Routes>,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, registry, Some(routes))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        routes: Option<Arc<dyn Routes>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("telemetry-http".to_string())
            .spawn(move || accept_loop(&listener, &registry, routes.as_deref(), &thread_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        // ordering: shutdown flag; the serving thread only polls it,
        // no data is transferred through it.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            // A panic on the serving thread already tore the endpoint
            // down; there is nothing further to unwind here.
            drop(thread.join());
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // ordering: shutdown flag; see shutdown().
        self.stop.store(true, Ordering::Relaxed);
        // No join: drop must not block. The thread observes the flag
        // within ACCEPT_POLL and exits on its own.
    }
}

fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<Registry>,
    routes: Option<&dyn Routes>,
    stop: &Arc<AtomicBool>,
) {
    // ordering: shutdown flag poll; no memory is transferred.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, registry, routes),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (connection reset mid-handshake,
            // fd pressure): back off briefly and keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(stream: TcpStream, registry: &Arc<Registry>, routes: Option<&dyn Routes>) {
    // The accepted socket inherits the listener's non-blocking flag on
    // some platforms; force blocking-with-timeout semantics.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if stream.set_read_timeout(Some(IO_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        return;
    }
    let mut stream = stream;
    let Some(request) = read_request(&mut stream) else {
        respond(
            &mut stream,
            400,
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        return;
    };
    if let Some(routes) = routes {
        if let Some(response) = routes.handle(&request) {
            respond(
                &mut stream,
                response.status,
                &response.content_type,
                &response.body,
            );
            return;
        }
    }
    if request.method != "GET" {
        // No application route claimed it; the built-ins are GET-only.
        respond(
            &mut stream,
            400,
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        return;
    }
    match request.path.as_str() {
        "/metrics" => {
            let body = registry.render_prometheus();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/snapshot" => {
            let body = registry.render_json();
            respond(&mut stream, 200, "application/json", &body);
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads one bounded request — head, then exactly `Content-Length`
/// body bytes — and parses it. `None` for anything unreadable,
/// oversized, or structurally not HTTP.
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let (head_len, body_start) = loop {
        if let Some(found) = find_head_end(&buf) {
            break found;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let head = std::str::from_utf8(&buf[..head_len]).ok()?.to_string();
    let mut lines = head.lines();
    let mut parts = lines.next()?.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    if body.len() > content_length {
        // More bytes than declared: pipelined or junk. Refuse rather
        // than guess at framing.
        return None;
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return None,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    Some(Request {
        method,
        path,
        query,
        body,
    })
}

/// Finds the end of the request head: `(head_len, body_start)`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| (i, i + 4))
        .or_else(|| {
            // Be liberal: bare-LF clients (netcat, hand-typed requests).
            buf.windows(2)
                .position(|w| w == b"\n\n")
                .map(|i| (i, i + 2))
        })
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        503 => "Service Unavailable",
        500 => "Internal Server Error",
        _ => "Status",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Best effort: the client may have gone away; nothing to do then.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut content_type = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("Content-Type:") {
                content_type = v.trim().to_string();
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, content_type, body)
    }

    #[test]
    fn serves_metrics_healthz_snapshot_and_404() {
        let registry = Arc::new(Registry::new());
        registry.counter("demo_total", "demo").add(5);
        registry.histogram("demo_micros", "latency").record(12);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let (status, ctype, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(ctype.contains("text/plain"), "{ctype}");
        assert!(body.contains("demo_total 5"), "{body}");
        assert!(body.contains("demo_micros_bucket{le=\"16\"} 1"), "{body}");

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, ctype, body) = get(addr, "/snapshot");
        assert_eq!(status, 200);
        assert_eq!(ctype, "application/json");
        assert!(body.contains("\"demo_total\""), "{body}");

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        // Query strings are routed by bare path.
        let (status, _, _) = get(addr, "/metrics?x=1");
        assert_eq!(status, 200);

        server.shutdown();
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("400"), "{response}");

        // The endpoint keeps serving after a bad client.
        let (status, _, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        server.shutdown();
    }

    struct EchoRoutes;

    impl Routes for EchoRoutes {
        fn handle(&self, request: &Request) -> Option<Response> {
            match (request.method.as_str(), request.path.as_str()) {
                ("POST", "/echo") => Some(Response::ok(format!(
                    "q={} n={} body={}",
                    request.query.as_deref().unwrap_or("-"),
                    request.body.len(),
                    String::from_utf8_lossy(&request.body),
                ))),
                ("GET", "/metrics") => Some(Response::error(409, "shadowed\n")),
                _ => None,
            }
        }
    }

    fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST {target} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn routes_get_first_look_and_fall_through() {
        let registry = Arc::new(Registry::new());
        let server =
            MetricsServer::bind_with_routes("127.0.0.1:0", registry, Arc::new(EchoRoutes)).unwrap();
        let addr = server.local_addr();

        // POST with a body reaches the route, query and all.
        let (status, body) = post(addr, "/echo?tag=a", "hello");
        assert_eq!(status, 200);
        assert_eq!(body, "q=tag=a n=5 body=hello");

        // A route can shadow a built-in.
        let (status, _, body) = get(addr, "/metrics");
        assert_eq!(status, 409);
        assert_eq!(body, "shadowed\n");

        // Unclaimed paths still fall through to the built-ins.
        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        // Unclaimed POSTs stay a 400, same as the bare server.
        let (status, _) = post(addr, "/healthz", "");
        assert_eq!(status, 400);

        server.shutdown();
    }

    #[test]
    fn oversized_content_length_is_refused() {
        let registry = Arc::new(Registry::new());
        let server =
            MetricsServer::bind_with_routes("127.0.0.1:0", registry, Arc::new(EchoRoutes)).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("400"), "{response}");
        server.shutdown();
    }
}
