//! Dependency-free observability for the stepstone pipeline:
//! lock-free metrics, lightweight tracing spans, and a hand-rolled
//! Prometheus-style exposition endpoint.
//!
//! Three layers, each usable alone:
//!
//! * **Metrics** — [`Counter`] (striped, cache-line-padded; an
//!   increment is a single relaxed atomic add with zero allocation),
//!   [`Gauge`], and [`Histogram`] (log-bucketed with p50/p95/p99
//!   estimation). Handles are interned by a [`Registry`] once at
//!   construction; instrumented code never touches the registry on a
//!   hot path.
//! * **Spans** — [`SpanLog`], a fixed-capacity ring buffer of
//!   `(id, parent, name, enter µs, exit µs)` events, written through
//!   the [`span!`] and [`time!`] macros. Building this crate with the
//!   `disabled` feature compiles both macros down to their bodies —
//!   no timer reads, no ring writes.
//! * **Exposition** — [`MetricsServer`], a tiny HTTP/1.1 listener on
//!   `std::net::TcpListener` (bounded connections, short socket
//!   timeouts) serving `/metrics` in Prometheus text format,
//!   `/healthz`, and a JSON `/snapshot` with histogram quantiles and
//!   recent spans.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use stepstone_telemetry::{MetricsServer, Registry};
//!
//! let registry = Arc::new(Registry::new());
//! let packets = registry.counter("packets_total", "packets seen");
//! let latency = registry.histogram("decode_micros", "decode latency");
//!
//! let outcome = stepstone_telemetry::time!(latency, {
//!     packets.inc();
//!     21 * 2
//! });
//! assert_eq!(outcome, 42);
//! assert_eq!(packets.get(), 1);
//!
//! let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
//! println!("curl http://{}/metrics", server.local_addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod http;
mod metrics;
mod registry;
mod trace;

pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use http::{MetricsServer, Request, Response, Routes, MAX_BODY_BYTES};
pub use metrics::{Counter, Gauge};
pub use registry::Registry;
pub use trace::{saturating_micros, SpanEvent, SpanGuard, SpanLog, Timer};

/// Opens a span on `$log` (a [`SpanLog`], `&SpanLog`, or
/// `Arc<SpanLog>`) that closes at the end of the enclosing scope.
/// Expands to nothing but the guard binding; with the crate's
/// `disabled` feature the guard is a unit value and no clock is read.
///
/// ```
/// use stepstone_telemetry::SpanLog;
/// let log = SpanLog::new(16);
/// {
///     stepstone_telemetry::span!(log, "decode");
///     // … work …
/// }
/// let expected = if cfg!(feature = "disabled") { 0 } else { 1 };
/// assert_eq!(log.events().len(), expected);
/// ```
#[macro_export]
macro_rules! span {
    ($log:expr, $name:expr) => {
        // `&$log` rather than `$log`: a place expression is borrowed
        // (not moved), and a temporary like `registry.spans()` gets its
        // lifetime extended to the enclosing scope by the `let`.
        let __stepstone_span_log = &$log;
        let __stepstone_span_guard =
            $crate::__span_enter(::core::borrow::Borrow::borrow(__stepstone_span_log), $name);
    };
}

/// Evaluates `$body`, recording its wall-clock duration in
/// microseconds into `$hist` (a [`Histogram`], `&Histogram`, or
/// `Arc<Histogram>`), and yields the body's value. With the crate's
/// `disabled` feature this reduces to the body alone.
///
/// ```
/// use stepstone_telemetry::Histogram;
/// let hist = Histogram::new();
/// let v = stepstone_telemetry::time!(hist, 1 + 1);
/// assert_eq!(v, 2);
/// let expected = if cfg!(feature = "disabled") { 0 } else { 1 };
/// assert_eq!(hist.snapshot().count(), expected);
/// ```
#[macro_export]
macro_rules! time {
    ($hist:expr, $body:expr) => {{
        let __stepstone_timer = $crate::Timer::start();
        let __stepstone_result = $body;
        __stepstone_timer.record_into(::core::borrow::Borrow::borrow(&$hist));
        __stepstone_result
    }};
}

/// Macro support for [`span!`]; not public API.
#[doc(hidden)]
#[inline]
#[cfg(not(feature = "disabled"))]
pub fn __span_enter<'a>(log: &'a SpanLog, name: &'static str) -> SpanGuard<'a> {
    log.enter(name)
}

/// Macro support for [`span!`] with spans compiled out; not public
/// API.
#[doc(hidden)]
#[inline]
#[cfg(feature = "disabled")]
pub fn __span_enter(log: &SpanLog, name: &'static str) {
    let _ = (log, name);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_macro_records_through_arc_and_ref() {
        let log = std::sync::Arc::new(SpanLog::new(8));
        {
            span!(log, "by-arc");
        }
        {
            let by_ref: &SpanLog = &log;
            span!(by_ref, "by-ref");
        }
        let names: Vec<_> = log.events().iter().map(|e| e.name).collect();
        #[cfg(not(feature = "disabled"))]
        assert_eq!(names, vec!["by-arc", "by-ref"]);
        #[cfg(feature = "disabled")]
        assert!(names.is_empty());
    }

    #[test]
    fn time_macro_yields_body_value() {
        let hist = Histogram::new();
        let v = time!(hist, {
            std::thread::sleep(std::time::Duration::from_micros(100));
            "done"
        });
        assert_eq!(v, "done");
        #[cfg(not(feature = "disabled"))]
        assert_eq!(hist.snapshot().count(), 1);
        #[cfg(feature = "disabled")]
        assert_eq!(hist.snapshot().count(), 0);
    }
}
