//! Lightweight tracing spans: a fixed-capacity ring buffer of
//! `(span id, parent, name, enter µs, exit µs)` events.
//!
//! Spans are for *occasional* structure (a decode, a flush, a replay
//! batch), not per-packet work — the histogram in
//! [`crate::Histogram`] owns the per-event hot path. Accordingly the
//! ring is guarded by a mutex, but the hot side only ever `try_lock`s:
//! a contended (or poisoned) ring drops the event and counts the drop
//! instead of ever blocking the instrumented thread.
//!
//! Span timestamps are microseconds since the owning [`SpanLog`] was
//! created, so they are comparable within one log without any wall
//! clock involvement.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, TryLockError};
use std::time::Instant;

use crate::histogram::Histogram;

thread_local! {
    /// The innermost open span on this thread (0 = none); new spans
    /// record it as their parent.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique (per log) span id, starting at 1.
    pub id: u64,
    /// Id of the span open on the same thread when this one was
    /// entered; 0 for a root span.
    pub parent: u64,
    /// Static span name.
    pub name: &'static str,
    /// Microseconds from log creation to span entry.
    pub enter_micros: u64,
    /// Microseconds from log creation to span exit.
    pub exit_micros: u64,
}

/// A fixed-capacity ring buffer of completed [`SpanEvent`]s.
#[derive(Debug)]
pub struct SpanLog {
    events: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

impl SpanLog {
    /// A log retaining the most recent `capacity` completed spans.
    /// Capacity 0 keeps nothing (every completed span counts as
    /// dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanLog {
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since this log was created.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        saturating_micros(self.epoch.elapsed())
    }

    /// Opens a span; it completes (and is recorded) when the returned
    /// guard drops. Prefer the [`span!`](crate::span) macro, which
    /// compiles to a no-op when the `disabled` feature is on.
    pub fn enter(&self, name: &'static str) -> SpanGuard<'_> {
        // ordering: id allocation is an independent ticket draw; no
        // memory is published through it.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|c| c.replace(id));
        SpanGuard {
            log: self,
            id,
            parent,
            name,
            enter_micros: self.now_micros(),
        }
    }

    /// Completed spans currently retained, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        match self.events.lock() {
            Ok(q) => q.iter().cloned().collect(),
            Err(poisoned) => poisoned.into_inner().iter().cloned().collect(),
        }
    }

    /// Spans discarded because the ring was contended or full-rotating
    /// past them. Monotonic.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        // ordering: stat counter read, no synchronization implied.
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retention capacity this log was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a completed event, rotating out the oldest once full.
    /// Never blocks: a contended ring counts a drop instead.
    fn push(&self, event: SpanEvent) {
        let mut q = match self.events.try_lock() {
            Ok(q) => q,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                // ordering: monotonic stat counter; no memory is
                // published through it.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if self.capacity == 0 {
            drop(q);
            // ordering: monotonic stat counter; see above.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        while q.len() >= self.capacity {
            // Rotation overwrites history by design; only the ring
            // falling behind entirely (contention, zero capacity)
            // counts as a drop, so no counter bump here.
            q.pop_front();
        }
        q.push_back(event);
    }
}

/// An open span; records its [`SpanEvent`] into the owning log when
/// dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    log: &'a SpanLog,
    id: u64,
    parent: u64,
    name: &'static str,
    enter_micros: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|c| c.set(self.parent));
        self.log.push(SpanEvent {
            id: self.id,
            parent: self.parent,
            name: self.name,
            enter_micros: self.enter_micros,
            exit_micros: self.log.now_micros(),
        });
    }
}

/// `Duration → u64` microseconds, saturating instead of truncating.
#[must_use]
pub fn saturating_micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A started stopwatch for the [`time!`](crate::time) macro. With the
/// `disabled` feature the type is a zero-sized no-op and the whole
/// `time!` expansion reduces to its body.
#[derive(Debug)]
pub struct Timer {
    #[cfg(not(feature = "disabled"))]
    started: Instant,
}

impl Timer {
    /// Starts timing.
    #[inline]
    #[must_use]
    pub fn start() -> Self {
        Timer {
            #[cfg(not(feature = "disabled"))]
            started: Instant::now(),
        }
    }

    /// Records the elapsed microseconds into `hist` (no-op when the
    /// `disabled` feature is on).
    #[inline]
    pub fn record_into(self, hist: &Histogram) {
        #[cfg(not(feature = "disabled"))]
        hist.record(saturating_micros(self.started.elapsed()));
        #[cfg(feature = "disabled")]
        let _ = hist;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_order() {
        let log = SpanLog::new(16);
        {
            let _outer = log.enter("outer");
            let _inner = log.enter("inner");
        }
        let events = log.events();
        assert_eq!(events.len(), 2);
        // Inner closes first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].parent, events[1].id);
        assert_eq!(events[1].parent, 0);
        assert!(events[0].exit_micros >= events[0].enter_micros);
    }

    #[test]
    fn ring_rotates_at_capacity() {
        let log = SpanLog::new(2);
        for _ in 0..5 {
            let _s = log.enter("s");
        }
        let events = log.events();
        assert_eq!(events.len(), 2);
        // The two most recent spans survive (ids 4 and 5).
        assert_eq!(events[0].id, 4);
        assert_eq!(events[1].id, 5);
    }

    #[test]
    fn zero_capacity_counts_every_span_as_dropped() {
        let log = SpanLog::new(0);
        {
            let _s = log.enter("s");
        }
        assert!(log.events().is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let log = SpanLog::new(8);
        let outer = log.enter("outer");
        {
            let _a = log.enter("a");
        }
        {
            let _b = log.enter("b");
        }
        drop(outer);
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].parent, events[2].id);
        assert_eq!(events[1].parent, events[2].id);
    }
}
