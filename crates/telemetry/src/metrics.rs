//! Lock-free counter and gauge primitives.
//!
//! A [`Counter`] is striped across cache-line-padded atomic cells so
//! concurrent writers on different threads do not bounce one cache
//! line between cores: each thread hashes to a fixed stripe at first
//! use and every increment afterwards is a single relaxed
//! `fetch_add` on that stripe — no allocation, no locks, no fences.
//! Reads sum the stripes; a read racing an increment may or may not
//! observe it, which is the usual (and sufficient) contract for
//! monitoring data.
//!
//! A [`Gauge`] is a single signed atomic: gauges need exact `set`
//! semantics, which striping cannot provide.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Stripes per counter. Power of two so the thread-slot hash is a
/// mask; 8 covers the worker counts the monitor runs while keeping a
/// counter at one cache line per stripe.
pub(crate) const STRIPES: usize = 8;

/// Monotonically assigns each thread a small slot number at first use;
/// the slot picks the stripe every counter on that thread writes.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // ordering: slot assignment is an independent ticket draw; no
    // memory is published through the counter.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's stripe index.
#[inline]
fn stripe() -> usize {
    THREAD_SLOT
        .try_with(|slot| *slot & (STRIPES - 1))
        // Thread-local storage can be gone during thread teardown;
        // falling back to stripe 0 only skews which cell absorbs the
        // write, never the sum.
        .unwrap_or(0)
}

/// One cache-line-padded atomic cell. The alignment keeps adjacent
/// stripes of the same counter (and adjacent counters in an array) off
/// each other's cache lines.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A monotonically increasing counter, striped for write scalability.
///
/// The hot path ([`inc`](Counter::inc)/[`add`](Counter::add)) is a
/// single relaxed atomic add with zero allocation. [`get`](Counter::get)
/// sums the stripes.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [PaddedCell; STRIPES],
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: monotonic stat counter; no memory is published
        // through it.
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The counter's current value: the sum over all stripes. Reads
    /// racing writers may miss in-flight increments; the value is
    /// always a value the counter actually passed through.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            // ordering: stat read; stripes are independent monotonic
            // cells, no synchronization implied.
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// An instantaneous signed value with exact `set` semantics.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds `n` (which may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        // ordering: stat gauge; no memory is published through it.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        // ordering: stat gauge; no memory is published through it.
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        // ordering: stat gauge read, no synchronization implied.
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads_and_stripes() {
        let counter = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn counter_add_and_get() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_tracks_set_add_dec() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.dec();
        g.inc();
        assert_eq!(g.get(), 7);
    }
}
