//! The metrics registry: named, labelled handles plus text exposition.
//!
//! Registration (name interning) takes a mutex — it happens once per
//! metric at component construction, never on a hot path. The handles
//! it returns are `Arc`s onto the lock-free primitives in
//! [`crate::metrics`] / [`crate::histogram`]; instrumented code keeps
//! the handle and never touches the registry again.
//!
//! Besides owned metrics, a registry accepts *collector callbacks*
//! ([`Registry::gauge_fn`] / [`Registry::counter_fn`]): closures read
//! at render time, for values that already live in someone else's
//! atomics (e.g. the monitor's shard queues).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::trace::SpanLog;

/// A metric's identity: family name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

/// The quantiles every histogram family reports in the JSON snapshot.
const SNAPSHOT_QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::CounterFn(_) => "counter",
            Metric::Gauge(_) | Metric::GaugeFn(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    metric: Metric,
}

/// A set of named metrics plus a span log, rendered on demand as
/// Prometheus text or a JSON snapshot.
///
/// Handles are get-or-create: asking twice for the same name and
/// labels returns the same underlying metric, which is what makes
/// read-through views (one component writes, another assembles a
/// snapshot) work without extra plumbing.
pub struct Registry {
    entries: Mutex<BTreeMap<Key, Entry>>,
    spans: SpanLog,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        f.debug_struct("Registry")
            .field("metrics", &n)
            .field("span_capacity", &self.spans.capacity())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Default retained span count; enough for the monitor's most recent
/// decode history without unbounded growth.
const DEFAULT_SPAN_CAPACITY: usize = 1024;

impl Registry {
    /// An empty registry with the default span-log capacity.
    #[must_use]
    pub fn new() -> Self {
        Registry::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An empty registry retaining at most `spans` completed spans.
    #[must_use]
    pub fn with_span_capacity(spans: usize) -> Self {
        Registry {
            entries: Mutex::new(BTreeMap::new()),
            spans: SpanLog::new(spans),
        }
    }

    /// The registry's span log (pass it to [`span!`](crate::span)).
    #[must_use]
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Get-or-create a counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Get-or-create a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        let fallback = |m: &Metric| match m {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        };
        self.intern(name, labels, help, fallback, || {
            let c = Arc::new(Counter::new());
            (Metric::Counter(Arc::clone(&c)), c)
        })
    }

    /// Get-or-create a gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Get-or-create a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        let fallback = |m: &Metric| match m {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        };
        self.intern(name, labels, help, fallback, || {
            let g = Arc::new(Gauge::new());
            (Metric::Gauge(Arc::clone(&g)), g)
        })
    }

    /// Get-or-create a histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// Get-or-create a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        let fallback = |m: &Metric| match m {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        };
        self.intern(name, labels, help, fallback, || {
            let h = Arc::new(Histogram::new());
            (Metric::Histogram(Arc::clone(&h)), h)
        })
    }

    /// Registers a counter read through a callback at render time, for
    /// monotonic values owned by other atomics. Replaces any previous
    /// metric under the same name and labels.
    pub fn counter_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert_callback(name, labels, help, Metric::CounterFn(Box::new(f)));
    }

    /// Registers a gauge read through a callback at render time.
    /// Replaces any previous metric under the same name and labels.
    pub fn gauge_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.insert_callback(name, labels, help, Metric::GaugeFn(Box::new(f)));
    }

    /// Shared get-or-create: returns the existing handle when the key
    /// is present with the right type, otherwise registers a fresh
    /// one. A type clash (same name, different metric type) yields a
    /// fresh *detached* handle — the caller's instrument still works,
    /// the exposition keeps the first registration, and nothing
    /// panics.
    fn intern<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        existing: impl Fn(&Metric) -> Option<Arc<T>>,
        create: impl FnOnce() -> (Metric, Arc<T>),
    ) -> Arc<T> {
        let key = make_key(name, labels);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = entries.get(&key) {
            if let Some(handle) = existing(&entry.metric) {
                return handle;
            }
            debug_assert!(false, "metric {name} re-registered with a different type");
            return create().1;
        }
        let (metric, handle) = create();
        entries.insert(
            key,
            Entry {
                help: help.to_string(),
                metric,
            },
        );
        handle
    }

    fn insert_callback(&self, name: &str, labels: &[(&str, &str)], help: &str, metric: Metric) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.insert(
            make_key(name, labels),
            Entry {
                help: help.to_string(),
                metric,
            },
        );
    }

    /// Renders every metric in Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` once per family, histograms
    /// as cumulative `_bucket`/`_sum`/`_count` series. Deterministic
    /// order (name, then labels).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        let mut last_family = "";
        for ((name, labels), entry) in entries.iter() {
            if name != last_family {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&entry.help));
                let _ = writeln!(out, "# TYPE {name} {}", entry.metric.type_name());
            }
            last_family = name;
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                }
                Metric::CounterFn(f) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), f());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), g.get());
                }
                Metric::GaugeFn(f) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(labels, None),
                        render_f64(f())
                    );
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (bound, cum) in snap.cumulative() {
                        let le = match bound {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            render_labels(labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(labels, None),
                        snap.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        render_labels(labels, None),
                        snap.count()
                    );
                }
            }
        }
        out
    }

    /// Renders every metric — histograms with estimated p50/p95/p99 —
    /// plus the retained spans as a JSON document.
    #[must_use]
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::from("{\"metrics\":[");
        for (i, ((name, labels), entry)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"type\":\"{}\",\"labels\":{{",
                json_string(name),
                entry.metric.type_name()
            );
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(k), json_string(v));
            }
            out.push('}');
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{}", c.get());
                }
                Metric::CounterFn(f) => {
                    let _ = write!(out, ",\"value\":{}", f());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", g.get());
                }
                Metric::GaugeFn(f) => {
                    let _ = write!(out, ",\"value\":{}", render_f64(f()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = write!(out, ",\"count\":{},\"sum\":{}", snap.count(), snap.sum());
                    for (label, q) in SNAPSHOT_QUANTILES {
                        match snap.quantile(q) {
                            Some(v) => {
                                let _ = write!(out, ",\"{label}\":{}", render_f64(v));
                            }
                            None => {
                                let _ = write!(out, ",\"{label}\":null");
                            }
                        }
                    }
                }
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"spans\":{{\"capacity\":{},\"dropped\":{},\"events\":[",
            self.spans.capacity(),
            self.spans.dropped()
        );
        for (i, ev) in self.spans.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"parent\":{},\"name\":{},\"enter_micros\":{},\"exit_micros\":{}}}",
                ev.id,
                ev.parent,
                json_string(ev.name),
                ev.enter_micros,
                ev.exit_micros
            );
        }
        out.push_str("]}}");
        out
    }
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

/// `{k="v",…}` with an optional extra `le` label, empty string when
/// there are no labels at all.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Renders an `f64` the way Prometheus and JSON both accept: plain
/// decimal, no exponent for the magnitudes metrics take, `0` for
/// non-finite junk from a callback.
fn render_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", "requests");
        let b = reg.counter("requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Distinct labels are distinct metrics.
        let c = reg.counter_with("requests_total", &[("shard", "0")], "requests");
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn prometheus_text_has_help_type_and_series() {
        let reg = Registry::new();
        reg.counter("a_total", "counts a").add(7);
        reg.gauge_with("b_depth", &[("shard", "1")], "depth").set(3);
        reg.histogram("lat_micros", "latency").record(3);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP a_total counts a"), "{text}");
        assert!(text.contains("# TYPE a_total counter"), "{text}");
        assert!(text.contains("a_total 7"), "{text}");
        assert!(text.contains("b_depth{shard=\"1\"} 3"), "{text}");
        assert!(text.contains("# TYPE lat_micros histogram"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"4\"} 1"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_micros_sum 3"), "{text}");
        assert!(text.contains("lat_micros_count 1"), "{text}");
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let reg = Registry::new();
        for shard in ["0", "1", "2"] {
            reg.counter_with("family_total", &[("shard", shard)], "per-shard")
                .inc();
        }
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# HELP family_total").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE family_total").count(), 1, "{text}");
        assert_eq!(text.matches("family_total{shard=").count(), 3, "{text}");
    }

    #[test]
    fn callback_metrics_read_at_render_time() {
        let reg = Registry::new();
        let value = Arc::new(std::sync::atomic::AtomicU64::new(5));
        let seen = Arc::clone(&value);
        reg.counter_fn("cb_total", &[], "callback", move || {
            // ordering: test counter, no synchronization implied.
            seen.load(std::sync::atomic::Ordering::Relaxed)
        });
        assert!(reg.render_prometheus().contains("cb_total 5"));
        // ordering: test counter, no synchronization implied.
        value.store(9, std::sync::atomic::Ordering::Relaxed);
        assert!(reg.render_prometheus().contains("cb_total 9"));
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let reg = Registry::new();
        reg.counter("a_total", "a").inc();
        reg.histogram("h_micros", "h").record(100);
        {
            let _s = reg.spans().enter("unit");
        }
        let json = reg.render_json();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("\"name\":\"a_total\""), "{json}");
        assert!(json.contains("\"p95\":"), "{json}");
        assert!(json.contains("\"spans\":{"), "{json}");
        assert!(json.contains("\"name\":\"unit\""), "{json}");
        assert!(json.ends_with("]}}"), "{json}");
        // Balanced braces/brackets outside strings — cheap sanity
        // check that the hand-rolled JSON is well-formed.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            match c {
                _ if esc => esc = false,
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("esc_total", &[("path", "a\"b\\c")], "esc")
            .inc();
        let text = reg.render_prometheus();
        assert!(text.contains("esc_total{path=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
