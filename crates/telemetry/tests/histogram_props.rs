//! Property tests pinning down the histogram's quantile error bound.
//!
//! Buckets are powers of two, so the interpolated estimate and the
//! exact order statistic always share a bucket `(2^(i-1), 2^i]`; any
//! two values in that interval are within a factor of two of each
//! other. These tests assert exactly that bound — for every quantile
//! the checklist cares about (p50/p95/p99), over arbitrary sample
//! sets — plus conservation of `count`/`sum` against the raw samples.

use proptest::prelude::*;
use stepstone_telemetry::Histogram;

const QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// Exact `q`-quantile of `sorted` under the same rank convention the
/// histogram uses: 1-based rank `clamp(ceil(q * n), 1, n)`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn estimated_quantiles_are_within_factor_two_of_exact(
        samples in proptest::collection::vec(1u64..2_000_000, 1..300),
    ) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QUANTILES {
            let exact = exact_quantile(&sorted, q) as f64;
            let est = snap.quantile(q);
            prop_assert!(est.is_some(), "non-empty histogram gave no quantile");
            let est = est.unwrap_or(0.0);
            // Both live in the same power-of-two bucket, so the
            // estimate can be at most 2x off in either direction.
            prop_assert!(
                est >= exact / 2.0 && est <= exact * 2.0,
                "q={q}: estimate {est} vs exact {exact} (n={})",
                sorted.len()
            );
        }
    }

    #[test]
    fn count_and_sum_match_the_raw_samples(
        samples in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum(), samples.iter().sum::<u64>());
        // The cumulative series must be monotone and end at the total.
        let series: Vec<_> = snap.cumulative().collect();
        let mut prev = 0u64;
        for &(_, cum) in &series {
            prop_assert!(cum >= prev, "cumulative series went backwards");
            prev = cum;
        }
        prop_assert_eq!(prev, samples.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        samples in proptest::collection::vec(1u64..100_000, 1..200),
        raw_lo in 0u64..=100,
        raw_hi in 0u64..=100,
    ) {
        let (lo, hi) = if raw_lo <= raw_hi { (raw_lo, raw_hi) } else { (raw_hi, raw_lo) };
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let a = snap.quantile(lo as f64 / 100.0).unwrap_or(0.0);
        let b = snap.quantile(hi as f64 / 100.0).unwrap_or(0.0);
        prop_assert!(a <= b, "quantile({lo}%)={a} > quantile({hi}%)={b}");
    }
}
