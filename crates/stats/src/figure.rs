//! Labelled series and figure rendering (ASCII table, ASCII chart, CSV).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// One labelled data series: `(x, y)` points in insertion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The y value at a given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|&(_, y)| y)
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

/// A reproduced table/figure: several series over a shared x axis.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    id: String,
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    log_y: bool,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Marks the y axis as logarithmic (the cost figures).
    #[must_use]
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Returns the figure with a new id and title, keeping axes, series
    /// and scale (used for the synthetic-corpus reruns).
    #[must_use]
    pub fn relabelled(mut self, id: impl Into<String>, title: impl Into<String>) -> Self {
        self.id = id.into();
        self.title = title.into();
        self
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The figure id (e.g. `"fig3"`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks up a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label() == label)
    }

    /// All distinct x values across series, sorted.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points().iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        xs
    }

    /// Renders an aligned ASCII table: one row per x, one column per
    /// series.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(
            out,
            "# y: {}{}",
            self.y_label,
            if self.log_y {
                " (log scale in the paper)"
            } else {
                ""
            }
        );
        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>14}", truncate(s.label(), 14));
        }
        let _ = writeln!(out, "{header}");
        for x in self.xs() {
            let mut row = format!("{x:>12.3}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) if self.log_y => {
                        let _ = write!(row, " {y:>14.0}");
                    }
                    Some(y) => {
                        let _ = write!(row, " {y:>14.4}");
                    }
                    None => {
                        let _ = write!(row, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Renders a rough ASCII chart (one line per series), mostly for a
    /// quick visual check of series shapes in terminals.
    pub fn to_ascii_chart(&self, width: usize) -> String {
        const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let xs = self.xs();
        if xs.is_empty() {
            return out;
        }
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points().iter().map(|&(_, y)| self.scale_y(y)))
            .collect();
        let (ymin, ymax) = ys
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
                (lo.min(y), hi.max(y))
            });
        let span = (ymax - ymin).max(1e-12);
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            let mut line = vec![' '; width];
            for &(x, y) in s.points() {
                let xi = position(x, &xs, width);
                let level = (self.scale_y(y) - ymin) / span;
                // Render as a bar height into a single row via shade.
                line[xi] = shade(glyph, level);
            }
            let _ = writeln!(
                out,
                "{:>14} |{}|",
                truncate(s.label(), 14),
                line.iter().collect::<String>()
            );
        }
        let _ = writeln!(
            out,
            "{:>14}  x: {} ∈ [{:.1}, {:.1}]",
            "",
            self.x_label,
            xs[0],
            xs[xs.len() - 1]
        );
        out
    }

    /// Renders CSV: `x,<label1>,<label2>,…`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = self.x_label.replace(',', ";");
        for s in &self.series {
            let _ = write!(header, ",{}", s.label().replace(',', ";"));
        }
        let _ = writeln!(out, "{header}");
        for x in self.xs() {
            let mut row = format!("{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(row, ",{y}");
                    }
                    None => row.push(','),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    fn scale_y(&self, y: f64) -> f64 {
        if self.log_y {
            y.max(1.0).log10()
        } else {
            y
        }
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

fn position(x: f64, xs: &[f64], width: usize) -> usize {
    let (lo, hi) = (xs[0], xs[xs.len() - 1]);
    if hi <= lo {
        return 0;
    }
    (((x - lo) / (hi - lo)) * (width.saturating_sub(1)) as f64).round() as usize
}

fn shade(glyph: char, level: f64) -> char {
    if level >= 0.5 {
        glyph.to_ascii_uppercase()
    } else {
        glyph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut a = Series::new("greedy");
        a.extend([(0.0, 1.0), (1.0, 0.9)]);
        let mut b = Series::new("zhang");
        b.extend([(0.0, 0.8), (1.0, 0.7)]);
        Figure::new("fig3", "Detection", "λc", "rate")
            .with_series(a)
            .with_series(b)
    }

    #[test]
    fn xs_are_sorted_and_deduped() {
        assert_eq!(sample().xs(), vec![0.0, 1.0]);
    }

    #[test]
    fn y_lookup() {
        let f = sample();
        assert_eq!(f.series_by_label("greedy").unwrap().y_at(1.0), Some(0.9));
        assert_eq!(f.series_by_label("zhang").unwrap().y_at(2.0), None);
        assert!(f.series_by_label("nope").is_none());
    }

    #[test]
    fn table_contains_all_values() {
        let t = sample().to_table();
        assert!(t.contains("fig3"), "{t}");
        assert!(t.contains("greedy"), "{t}");
        assert!(t.contains("0.9000"), "{t}");
        assert!(t.contains("0.7000"), "{t}");
    }

    #[test]
    fn table_marks_missing_points() {
        let mut sparse = Series::new("sparse");
        sparse.push(2.0, 0.5);
        let f = sample().with_series(sparse);
        let t = f.to_table();
        assert!(t.lines().any(|l| l.contains('-')), "{t}");
    }

    #[test]
    fn csv_roundtrips_shape() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("λc,greedy,zhang"));
        assert_eq!(lines.next(), Some("0,1,0.8"));
        assert_eq!(lines.next(), Some("1,0.9,0.7"));
    }

    #[test]
    fn log_figures_render_whole_numbers() {
        let mut s = Series::new("cost");
        s.push(0.0, 12345.0);
        let f = Figure::new("fig7", "Costs", "λc", "accesses")
            .with_log_y()
            .with_series(s);
        assert!(f.to_table().contains("12345"));
    }

    #[test]
    fn ascii_chart_mentions_series() {
        let chart = sample().to_ascii_chart(40);
        assert!(chart.contains("greedy"), "{chart}");
        assert!(chart.contains("x: λc"), "{chart}");
    }

    #[test]
    fn empty_figure_renders_without_panicking() {
        let f = Figure::new("f", "t", "x", "y");
        assert!(f.to_table().contains("# f"));
        assert!(!f.to_ascii_chart(10).is_empty());
        assert_eq!(f.to_csv().lines().count(), 1);
    }
}
