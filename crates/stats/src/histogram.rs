//! Small integer histograms (Hamming distances, set sizes).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A histogram over small non-negative integers, with an overflow
/// bucket.
///
/// Used to inspect best-watermark Hamming-distance distributions and
/// matching-set sizes.
///
/// # Example
///
/// ```
/// use stepstone_stats::Histogram;
///
/// let mut h = Histogram::new(8);
/// h.record(0);
/// h.record(0);
/// h.record(3);
/// h.record(99); // lands in the overflow bucket
/// assert_eq!(h.count(0), 2);
/// assert_eq!(h.count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.median(), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `0..=max_value`.
    pub fn new(max_value: usize) -> Self {
        Histogram {
            buckets: vec![0; max_value + 1],
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: usize) {
        match self.buckets.get_mut(value) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `value` (0 beyond the range).
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Observations beyond the bucket range.
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// The (lower) median bucket, `None` when empty or when the median
    /// falls in the overflow bucket.
    pub fn median(&self) -> Option<usize> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen * 2 >= total {
                return Some(i);
            }
        }
        None
    }

    /// Fraction of observations at or below `value` (overflow counts as
    /// above every bucket).
    pub fn cdf(&self, value: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let upto: u64 = self.buckets.iter().take(value + 1).sum();
        upto as f64 / total as f64
    }

    /// Merges another histogram (must have the same bucket count).
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histograms must have matching bucket ranges"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &b) in self.buckets.iter().enumerate() {
            let bar = "#".repeat(((b * 40) / max) as usize);
            writeln!(f, "{i:>4} {b:>8} {bar}")?;
        }
        if self.overflow > 0 {
            writeln!(f, "  >{} {:>8}", self.buckets.len() - 1, self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 2, 7] {
            h.record(v);
        }
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn median_and_cdf() {
        let mut h = Histogram::new(10);
        for v in [1, 2, 2, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.median(), Some(2));
        assert!((h.cdf(2) - 0.6).abs() < 1e-12);
        assert!((h.cdf(10) - 1.0).abs() < 1e-12);
        assert_eq!(Histogram::new(3).median(), None);
        assert_eq!(Histogram::new(3).cdf(1), 0.0);
    }

    #[test]
    fn median_in_overflow_is_none() {
        let mut h = Histogram::new(1);
        h.record(5);
        h.record(5);
        h.record(0);
        assert_eq!(h.median(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(3);
        a.record(0);
        let mut b = Histogram::new(3);
        b.record(0);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "matching bucket ranges")]
    fn merge_rejects_mismatched_ranges() {
        Histogram::new(2).merge(&Histogram::new(3));
    }

    #[test]
    fn display_draws_bars() {
        let mut h = Histogram::new(2);
        h.record(1);
        h.record(1);
        h.record(5);
        let s = h.to_string();
        assert!(s.contains('#'), "{s}");
        assert!(s.contains(">2"), "{s}");
    }
}
