//! Binomial rate estimates.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A success rate over a number of Bernoulli trials — detection rates
/// and false-positive rates in the experiments.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RateEstimate {
    successes: u64,
    trials: u64,
}

impl RateEstimate {
    /// Creates an estimate.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "successes {successes} cannot exceed trials {trials}"
        );
        RateEstimate { successes, trials }
    }

    /// An empty estimate to accumulate into.
    pub const fn empty() -> Self {
        RateEstimate {
            successes: 0,
            trials: 0,
        }
    }

    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Merges another estimate into this one.
    pub fn merge(&mut self, other: RateEstimate) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Number of successes.
    pub const fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub const fn trials(&self) -> u64 {
        self.trials
    }

    /// The point estimate (0 for zero trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The Wilson score interval at the given z (1.96 ≈ 95%).
    ///
    /// Preferred over the normal approximation because experiment rates
    /// sit near 0 and 1, where the Wald interval degenerates.
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        let n = self.trials as f64;
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }
}

impl fmt::Display for RateEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ({}/{})", self.rate(), self.successes, self.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimates() {
        assert_eq!(RateEstimate::new(0, 10).rate(), 0.0);
        assert_eq!(RateEstimate::new(10, 10).rate(), 1.0);
        assert_eq!(RateEstimate::new(3, 12).rate(), 0.25);
        assert_eq!(RateEstimate::empty().rate(), 0.0);
    }

    #[test]
    fn record_and_merge() {
        let mut r = RateEstimate::empty();
        r.record(true);
        r.record(false);
        r.record(true);
        assert_eq!(r.successes(), 2);
        assert_eq!(r.trials(), 3);
        let mut s = RateEstimate::new(1, 1);
        s.merge(r);
        assert_eq!(s, RateEstimate::new(3, 4));
    }

    #[test]
    fn wilson_interval_contains_point_and_shrinks() {
        let small = RateEstimate::new(9, 10);
        let large = RateEstimate::new(900, 1000);
        let (lo_s, hi_s) = small.wilson_interval(1.96);
        let (lo_l, hi_l) = large.wilson_interval(1.96);
        assert!(lo_s < 0.9 && 0.9 < hi_s);
        assert!(lo_l < 0.9 && 0.9 < hi_l);
        assert!(hi_l - lo_l < hi_s - lo_s);
    }

    #[test]
    fn wilson_interval_stays_in_unit_range() {
        for (s, t) in [(0u64, 5u64), (5, 5), (1, 2)] {
            let (lo, hi) = RateEstimate::new(s, t).wilson_interval(1.96);
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
            assert!(lo <= hi);
        }
        assert_eq!(RateEstimate::empty().wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn rejects_impossible_counts() {
        let _ = RateEstimate::new(2, 1);
    }

    #[test]
    fn display_shows_counts() {
        assert_eq!(RateEstimate::new(1, 4).to_string(), "0.250 (1/4)");
    }
}
