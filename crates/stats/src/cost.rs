//! Cost aggregation in the paper's packets-accessed unit.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Aggregates per-correlation costs.
///
/// The paper plots costs on a log scale and notes "in order to draw
/// figures in logarithm scale, we change 0 to 1" — [`mean_for_log`]
/// applies the same convention.
///
/// [`mean_for_log`]: CostSummary::mean_for_log
///
/// # Example
///
/// ```
/// use stepstone_stats::CostSummary;
///
/// let mut c = CostSummary::new();
/// c.record(0);
/// c.record(100);
/// assert_eq!(c.mean(), 50.0);
/// assert_eq!(c.mean_for_log(), 50.5); // zero plotted as one
/// assert_eq!(c.max(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostSummary {
    total: u128,
    total_for_log: u128,
    count: u64,
    max: u64,
    min: u64,
}

impl CostSummary {
    /// Creates an empty summary.
    pub const fn new() -> Self {
        CostSummary {
            total: 0,
            total_for_log: 0,
            count: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one correlation's cost.
    pub fn record(&mut self, cost: u64) {
        self.total += cost as u128;
        self.total_for_log += cost.max(1) as u128;
        self.count += 1;
        self.max = self.max.max(cost);
        self.min = self.min.min(cost);
    }

    /// Merges another summary.
    pub fn merge(&mut self, other: CostSummary) {
        self.total += other.total;
        self.total_for_log += other.total_for_log;
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded correlations.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean cost (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Mean with the paper's log-plot convention (each 0 counted as 1).
    pub fn mean_for_log(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.total_for_log as f64 / self.count as f64
        }
    }

    /// Largest recorded cost (0 for an empty summary).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded cost (0 for an empty summary).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
}

impl fmt::Display for CostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.0} accesses over {} runs (min {}, max {})",
            self.mean(),
            self.count,
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let c = CostSummary::new();
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.mean_for_log(), 1.0);
        assert_eq!(c.max(), 0);
        assert_eq!(c.min(), 0);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn records_and_merges() {
        let mut a = CostSummary::new();
        a.record(10);
        a.record(30);
        let mut b = CostSummary::new();
        b.record(50);
        a.merge(b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 30.0);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 50);
    }

    #[test]
    fn log_convention_promotes_zero_to_one() {
        let mut c = CostSummary::new();
        c.record(0);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.mean_for_log(), 1.0);
    }

    #[test]
    fn display_is_informative() {
        let mut c = CostSummary::new();
        c.record(5);
        let s = c.to_string();
        assert!(s.contains("mean 5"), "{s}");
        assert!(s.contains("1 runs"), "{s}");
    }
}
