//! Evaluation statistics and reporting for correlation experiments.
//!
//! * [`RateEstimate`] — detection / false-positive rates with Wilson
//!   confidence intervals;
//! * [`CostSummary`] — the paper's packets-accessed cost metric, with
//!   the "0 → 1 for log plots" convention of Figures 9–10;
//! * [`Histogram`] — small integer histograms (Hamming distances,
//!   matching-set sizes);
//! * [`Series`], [`Figure`] — labelled data series, rendered as aligned
//!   ASCII tables, simple ASCII charts, or CSV.
//!
//! # Example
//!
//! ```
//! use stepstone_stats::{Figure, RateEstimate, Series};
//!
//! let mut detection = Series::new("greedy+");
//! detection.push(0.0, 1.0);
//! detection.push(1.0, 0.98);
//! let fig = Figure::new("fig3", "Detection rate vs chaff rate", "λc (pkt/s)", "detection rate")
//!     .with_series(detection);
//! let table = fig.to_table();
//! assert!(table.contains("greedy+"));
//!
//! let rate = RateEstimate::new(45, 50);
//! assert_eq!(rate.rate(), 0.9);
//! let (lo, hi) = rate.wilson_interval(1.96);
//! assert!(lo < 0.9 && 0.9 < hi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod figure;
mod histogram;
mod rate;

pub use cost::CostSummary;
pub use figure::{Figure, Series};
pub use histogram::Histogram;
pub use rate::RateEstimate;
