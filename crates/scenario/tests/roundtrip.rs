//! Property tests for the scenario DSL, matching the IPC codec's
//! contract:
//!
//! 1. **Canonical round-trip** — for every generated valid spec,
//!    `parse(canonical(s)) == s`, re-encoding reproduces the canonical
//!    bytes exactly, and the digest is stable across the loop.
//! 2. **Never panic** — arbitrary text, truncations of canonical text,
//!    and single-byte mutations of canonical text always produce
//!    `Ok`/`Err`, never a panic.

use proptest::prelude::*;
use stepstone_scenario::{Backend, Chaff, ChaosProfile, Repacketize, ScenarioSpec, Traffic};

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            proptest::collection::vec(0usize..NAME_CHARS.len(), 1..16),
            0u8..3,
            1usize..16,
            0usize..16,
            1usize..8,
            1usize..256,
            1u64..1 << 48,
            1u64..60_000,
        ),
        (
            (proptest::bool::ANY, 0u64..1_000_000),
            0u32..900_000,
            (proptest::bool::ANY, 1u64..60_000),
            (proptest::bool::ANY, 0u64..1 << 48, 0u8..3),
            0u8..3,
        ),
        (2usize..17, 1usize..5, 1usize..9, 1u64..60_000),
    )
        .prop_map(
            |(
                (name, traffic, upstreams, decoys, shards, decode_batch, seed, delta_ms),
                (
                    (chaff_on, chaff_millis),
                    loss_ppm,
                    (repack_on, window),
                    (chaos_on, chaos_seed, profile),
                    backend,
                ),
                (wm_bits, wm_redundancy, wm_offset, wm_adjustment_ms),
            )| {
                let name: String = name.iter().map(|&i| NAME_CHARS[i] as char).collect();
                let mut spec = ScenarioSpec::base(&name);
                spec.traffic =
                    [Traffic::Interactive, Traffic::Tcplib, Traffic::Mixed][traffic as usize];
                spec.upstreams = upstreams;
                spec.decoys = decoys;
                spec.shards = shards;
                spec.decode_batch = decode_batch;
                spec.seed = seed;
                spec.delta_ms = delta_ms;
                spec.chaff = if chaff_on {
                    Chaff::PoissonMillis(chaff_millis)
                } else {
                    Chaff::None
                };
                spec.loss_ppm = loss_ppm;
                spec.repacketize = if repack_on {
                    Repacketize::WindowMs(window)
                } else {
                    Repacketize::None
                };
                spec.chaos = chaos_on.then_some((
                    chaos_seed,
                    [
                        ChaosProfile::Mild,
                        ChaosProfile::Harsh,
                        ChaosProfile::Adversarial,
                    ][profile as usize],
                ));
                spec.backend = Backend::ALL[backend as usize];
                spec.wm_bits = wm_bits;
                spec.wm_redundancy = wm_redundancy;
                spec.wm_offset = wm_offset;
                spec.wm_adjustment_ms = wm_adjustment_ms;
                spec.wm_threshold = (wm_bits / 2).max(1) as u32;
                // Size the corpus so the watermark always fits.
                spec.packets = (wm_bits * 4 * wm_redundancy + wm_offset) * 2 + 64;
                spec
            },
        )
        .prop_filter("spec validates", |spec| spec.validate().is_ok())
}

proptest! {
    #[test]
    fn canonical_round_trips(spec in spec_strategy()) {
        let text = spec.canonical();
        let parsed = ScenarioSpec::parse(&text).expect("canonical text parses");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.canonical(), text);
        prop_assert_eq!(parsed.digest(), spec.digest());
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = ScenarioSpec::parse(&text);
    }

    #[test]
    fn arbitrary_lines_never_panic(
        draws in proptest::collection::vec(
            proptest::collection::vec(0usize..NAME_CHARS.len() + 4, 0..40),
            0..24,
        )
    ) {
        // Indices past the name alphabet map to the DSL's structural
        // characters so the sweep actually reaches the parser's
        // key/value paths, not just the BadLine arm.
        let lines: Vec<String> = draws
            .iter()
            .map(|line| {
                line.iter()
                    .map(|&i| match NAME_CHARS.get(i) {
                        Some(&b) => b as char,
                        None => [' ', '=', '.', '#'][i - NAME_CHARS.len()],
                    })
                    .collect()
            })
            .collect();
        let _ = ScenarioSpec::parse(&lines.join("\n"));
    }

    #[test]
    fn truncations_never_panic(spec in spec_strategy(), cut in 0usize..1024) {
        let text = spec.canonical();
        let cut = cut.min(text.len());
        if text.is_char_boundary(cut) {
            let _ = ScenarioSpec::parse(&text[..cut]);
        }
    }

    #[test]
    fn byte_mutations_never_panic(
        spec in spec_strategy(),
        index in 0usize..1024,
        byte in 0x20u8..0x7f,
    ) {
        let mut text = spec.canonical().into_bytes();
        let index = index % text.len();
        text[index] = byte;
        if let Ok(mutated) = String::from_utf8(text) {
            // Mutated text either fails or yields some valid spec; it
            // must never alias the original's digest with different
            // canonical bytes.
            if let Ok(parsed) = ScenarioSpec::parse(&mutated) {
                if parsed.digest() == spec.digest() {
                    prop_assert_eq!(parsed.canonical(), spec.canonical());
                }
            }
        }
    }
}
