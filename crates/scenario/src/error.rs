//! Typed errors for scenario parsing, validation and preset lookup.

use std::fmt;

/// What can go wrong turning text into a validated
/// [`ScenarioSpec`](crate::ScenarioSpec).
///
/// Every variant that originates in the input carries the 1-based line
/// number it was found on, so a `repro` invocation can point at the
/// offending line of a scenario file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The input had no `key = value` lines at all.
    Empty,
    /// The mandatory `name` key is missing.
    MissingName,
    /// A non-comment line is not of the form `key = value`.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A key the DSL does not define.
    UnknownKey {
        /// The unrecognised key.
        key: String,
        /// 1-based line number.
        line: usize,
    },
    /// The same key given twice — the DSL has no override semantics,
    /// so a duplicate is always a mistake.
    DuplicateKey {
        /// The repeated key.
        key: String,
        /// 1-based line number of the second occurrence.
        line: usize,
    },
    /// A value that does not parse or is out of range for its key.
    BadValue {
        /// The key whose value was rejected.
        key: String,
        /// 1-based line number.
        line: usize,
        /// Why the value was rejected.
        reason: String,
    },
    /// The spec parsed but the fields are inconsistent as a whole
    /// (e.g. a detection threshold wider than the watermark).
    Invalid {
        /// The violated constraint.
        reason: String,
    },
    /// [`preset`](crate::preset) was asked for a name that is not in
    /// the checked-in library.
    UnknownPreset {
        /// The unknown preset name.
        name: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Empty => write!(f, "empty scenario: no `key = value` lines"),
            ScenarioError::MissingName => write!(f, "scenario is missing the `name` key"),
            ScenarioError::BadLine { line } => {
                write!(f, "line {line}: expected `key = value`")
            }
            ScenarioError::UnknownKey { key, line } => {
                write!(f, "line {line}: unknown key {key:?}")
            }
            ScenarioError::DuplicateKey { key, line } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
            ScenarioError::BadValue { key, line, reason } => {
                write!(f, "line {line}: bad value for {key:?}: {reason}")
            }
            ScenarioError::Invalid { reason } => write!(f, "invalid scenario: {reason}"),
            ScenarioError::UnknownPreset { name } => {
                write!(
                    f,
                    "unknown preset {name:?}; valid presets: {}",
                    crate::preset::NAMES.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}
