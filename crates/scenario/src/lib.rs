//! Named, reproducible correlation scenarios.
//!
//! A scenario is everything a stepping-stone correlation run needs,
//! written down: traffic mix, chain topology, the adversary pipeline
//! (perturbation bound, chaff model, loss, repacketization), the chaos
//! channel, the correlator backend, and the watermark parameters. Two
//! holders of the same scenario text build byte-interchangeable
//! corpora — the text *is* the experiment.
//!
//! The format is the workspace's hand-rolled line-oriented style (one
//! `key = value` per line, `#` comments), parsed with no dependencies
//! into a typed [`ScenarioSpec`] with a typed [`ScenarioError`].
//! [`ScenarioSpec::canonical`] re-encodes any spec into one normative
//! text, and [`ScenarioSpec::digest`] (FNV-1a/64 of the canonical
//! bytes) is the identity every consumer prints at load.
//!
//! ```
//! use stepstone_scenario::{preset, ScenarioSpec};
//!
//! let spec = preset("quick-smoke").unwrap();
//! let round = ScenarioSpec::parse(&spec.canonical()).unwrap();
//! assert_eq!(round, spec);
//! assert_eq!(round.digest(), spec.digest());
//! ```
//!
//! The checked-in [`preset`] library names the scenarios the rest of
//! the workspace runs — `repro serve` accepts them by name over HTTP,
//! `repro matrix` fans them across worker processes — including the
//! `multi-flow` staging for the Kiyavash et al. multi-flow attack and
//! the `deletion-harsh` Gong/Kiyavash channel.
//!
//! This crate is pure data: no I/O, no threads, no clocks. Mapping a
//! spec onto generators, adversaries and monitors lives in
//! `stepstone-experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod preset;
mod spec;

pub use error::ScenarioError;
pub use preset::{all as all_presets, preset, preset_text};
pub use spec::{
    fnv1a, Backend, Chaff, ChaosProfile, Decode, Repacketize, ScenarioSpec, Traffic, MAX_FLOWS,
    MAX_PACKETS, MAX_SHARDS, MAX_SPEC_BYTES,
};
