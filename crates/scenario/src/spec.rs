//! The scenario spec: fields, parsing, canonical encoding, digest.
//!
//! The format is the workspace's usual hand-rolled line-oriented text:
//! one `key = value` per line, `#` comments, blank lines ignored. The
//! full key set with the built-in defaults:
//!
//! ```text
//! name = baseline            # mandatory; [a-z0-9-]+
//! traffic = interactive      # interactive | tcplib | mixed
//! upstreams = 2              # watermarked flows
//! decoys = 2                 # unrelated suspicious flows
//! packets = 600              # packets per upstream flow
//! shards = 2                 # decode worker shards
//! decode-batch = 64          # new packets per scheduled decode
//! seed = 1                   # corpus master seed
//! delta-ms = 1000            # adversary perturbation max Δ
//! chaff = poisson 2          # none | poisson RATE (pkts/s, ≤3 decimals)
//! loss = 0                   # drop probability, ≤6 decimals, < 0.9
//! repacketize = none         # none | window-ms N
//! chaos = none               # none | SEED PROFILE (mild|harsh|adversarial)
//! backend = paper            # paper | elices | game
//! decode = strict            # strict | robust (deletion-tolerant)
//! erasure-budget = 64        # robust mode: erased slots tolerated per decode
//! wm-bits = 8                # watermark length l
//! wm-redundancy = 2          # redundancy r
//! wm-offset = 1              # pair offset d
//! wm-adjustment-ms = 1200    # timing adjustment a
//! wm-threshold = 2           # Hamming detection threshold
//! ```
//!
//! Parsing is strict — unknown keys, duplicate keys and out-of-range
//! values are errors — and [`ScenarioSpec::canonical`] re-encodes any
//! parsed spec into one normative text (fixed key order, trimmed
//! decimals), so `parse(canonical(s)) == s` holds for every valid spec
//! and the FNV-1a [`digest`](ScenarioSpec::digest) of the canonical
//! bytes names the scenario reproducibly.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::ScenarioError;

/// Caps keeping a hostile spec from sizing absurd corpora: packets per
/// flow.
pub const MAX_PACKETS: usize = 1_000_000;
/// Cap on watermarked + decoy flow counts (each).
pub const MAX_FLOWS: usize = 4_096;
/// Cap on decode shards.
pub const MAX_SHARDS: usize = 64;
/// Longest accepted scenario text, in bytes.
pub const MAX_SPEC_BYTES: usize = 64 * 1024;

/// Which synthetic traffic model generates the scenario's flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traffic {
    /// Interactive SSH-like sessions (keystroke bursts + think time) —
    /// the paper's §4 regime.
    #[default]
    Interactive,
    /// Heavier-tailed tcplib-style sessions (the §4.2 synthetic
    /// corpus).
    Tcplib,
    /// Alternate interactive and tcplib per flow index, with telnet
    /// background decoys — a mixed-protocol monitored link.
    Mixed,
}

impl Traffic {
    /// The DSL token for this mix.
    pub fn name(self) -> &'static str {
        match self {
            Traffic::Interactive => "interactive",
            Traffic::Tcplib => "tcplib",
            Traffic::Mixed => "mixed",
        }
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The adversary's cover-traffic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaff {
    /// No chaff.
    None,
    /// Poisson chaff at a fixed rate, stored in packets per 1000
    /// seconds so the spec stays integral (2.5 pkts/s ⇒ 2500).
    PoissonMillis(u64),
}

impl Chaff {
    /// The chaff rate in packets per second (0 for [`Chaff::None`]).
    pub fn rate(self) -> f64 {
        match self {
            Chaff::None => 0.0,
            Chaff::PoissonMillis(m) => m as f64 / 1000.0,
        }
    }
}

/// The repacketization stage of the adversary pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Repacketize {
    /// Packets pass one-to-one (the paper's assumption 1).
    #[default]
    None,
    /// Merge packets closer than this window, in milliseconds — the §6
    /// future-work channel.
    WindowMs(u64),
}

/// The chaos channel profile names, mirroring
/// `stepstone_chaos::Profile` (a consistency test in the experiments
/// crate pins the two lists together; the scenario crate itself stays
/// dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosProfile {
    /// Rare, small channel faults.
    Mild,
    /// Frequent deletion/insertion — the Gong/Kiyavash harsher
    /// channel regime.
    Harsh,
    /// Heavy deletion, bursty insertion, large skews.
    Adversarial,
}

impl ChaosProfile {
    /// The DSL token for this profile.
    pub fn name(self) -> &'static str {
        match self {
            ChaosProfile::Mild => "mild",
            ChaosProfile::Harsh => "harsh",
            ChaosProfile::Adversarial => "adversarial",
        }
    }
}

/// The correlator backend names, mirroring `stepstone_core::BackendKind`
/// (pinned by a consistency test in the experiments crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The paper's active watermark decoder.
    #[default]
    Paper,
    /// The Elices/Pérez-González coverage GLR.
    Elices,
    /// The game-theoretic linker.
    Game,
}

impl Backend {
    /// Every backend, in spec order.
    pub const ALL: [Backend; 3] = [Backend::Paper, Backend::Elices, Backend::Game];

    /// The DSL token for this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Paper => "paper",
            Backend::Elices => "elices",
            Backend::Game => "game",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The decode-mode names, mirroring `stepstone_core::DecodeMode`
/// (pinned by a consistency test in the experiments crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Decode {
    /// The paper's strict decoder: an unmatched upstream packet proves
    /// the flows unrelated (assumption 1).
    #[default]
    Strict,
    /// The deletion-tolerant decoder: unmatched packets become
    /// erasures, bounded by `erasure-budget`.
    Robust,
}

impl Decode {
    /// Every decode mode, in spec order.
    pub const ALL: [Decode; 2] = [Decode::Strict, Decode::Robust];

    /// The DSL token for this mode.
    pub fn name(self) -> &'static str {
        match self {
            Decode::Strict => "strict",
            Decode::Robust => "robust",
        }
    }
}

impl fmt::Display for Decode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One named, reproducible correlation scenario: traffic mix, corpus
/// sizing, adversary pipeline, chaos channel, backend and thresholds.
/// Everything a run needs is derived from these fields plus the seed,
/// so two holders of the same spec build interchangeable corpora.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Scenario name (`[a-z0-9-]+`).
    pub name: String,
    /// Traffic model for the generated flows.
    pub traffic: Traffic,
    /// Watermarked upstream flows; each has exactly one true attacked
    /// downstream in the stream.
    pub upstreams: usize,
    /// Unrelated suspicious flows mixed into the stream.
    pub decoys: usize,
    /// Packets per upstream flow.
    pub packets: usize,
    /// Decode worker shards.
    pub shards: usize,
    /// New packets per scheduled decode.
    pub decode_batch: usize,
    /// Corpus master seed.
    pub seed: u64,
    /// Adversary perturbation max Δ, in milliseconds.
    pub delta_ms: u64,
    /// Chaff model.
    pub chaff: Chaff,
    /// Packet-loss probability in parts per million (assumption-1
    /// relaxation; 0 = lossless).
    pub loss_ppm: u32,
    /// Repacketization stage.
    pub repacketize: Repacketize,
    /// Chaos channel: seed + profile. Scenario chaos is the *channel*
    /// (wire/flow faults); engine-fault soak stays with `--chaos`.
    pub chaos: Option<(u64, ChaosProfile)>,
    /// Correlator backend every upstream registers with.
    pub backend: Backend,
    /// Decode mode every backend runs with.
    pub decode: Decode,
    /// Erased upstream slots a robust decode tolerates before its
    /// verdict degrades (ignored under strict decode).
    pub erasure_budget: u32,
    /// Watermark length `l` in bits.
    pub wm_bits: usize,
    /// Redundancy `r`.
    pub wm_redundancy: usize,
    /// Pair offset `d`.
    pub wm_offset: usize,
    /// Timing adjustment `a`, in milliseconds.
    pub wm_adjustment_ms: u64,
    /// Hamming detection threshold.
    pub wm_threshold: u32,
}

impl ScenarioSpec {
    /// The defaults every key falls back to — a small interactive
    /// scenario under moderate chaff, decoded by the paper backend.
    pub fn base(name: &str) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            traffic: Traffic::Interactive,
            upstreams: 2,
            decoys: 2,
            packets: 600,
            shards: 2,
            decode_batch: 64,
            seed: 1,
            delta_ms: 1000,
            chaff: Chaff::PoissonMillis(2000),
            loss_ppm: 0,
            repacketize: Repacketize::None,
            chaos: None,
            backend: Backend::Paper,
            decode: Decode::Strict,
            erasure_budget: 64,
            wm_bits: 8,
            wm_redundancy: 2,
            wm_offset: 1,
            wm_adjustment_ms: 1200,
            wm_threshold: 2,
        }
    }

    /// Parses and validates a scenario text. Strict: unknown keys,
    /// duplicates, malformed and out-of-range values are all errors.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        if text.len() > MAX_SPEC_BYTES {
            return Err(ScenarioError::Invalid {
                reason: format!("scenario text exceeds {MAX_SPEC_BYTES} bytes"),
            });
        }
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut spec = ScenarioSpec::base("");
        let mut named = false;
        let mut any = false;
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return Err(ScenarioError::BadLine { line });
            };
            any = true;
            let key = key.trim();
            let value = value.trim();
            if !seen.insert(key.to_string()) {
                return Err(ScenarioError::DuplicateKey {
                    key: key.to_string(),
                    line,
                });
            }
            apply(&mut spec, key, value, line)?;
            if key == "name" {
                named = true;
            }
        }
        if !any {
            return Err(ScenarioError::Empty);
        }
        if !named {
            return Err(ScenarioError::MissingName);
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks cross-field consistency; [`parse`](Self::parse) calls
    /// this, and hand-built specs should too before use.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |reason: String| Err(ScenarioError::Invalid { reason });
        if self.name.is_empty()
            || !self
                .name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            return fail(format!("name {:?} is not [a-z0-9-]+", self.name));
        }
        if self.upstreams == 0 || self.upstreams > MAX_FLOWS {
            return fail(format!("upstreams must be in 1..={MAX_FLOWS}"));
        }
        if self.decoys > MAX_FLOWS {
            return fail(format!("decoys must be ≤ {MAX_FLOWS}"));
        }
        if self.packets < 64 || self.packets > MAX_PACKETS {
            return fail(format!("packets must be in 64..={MAX_PACKETS}"));
        }
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return fail(format!("shards must be in 1..={MAX_SHARDS}"));
        }
        if self.decode_batch == 0 {
            return fail("decode-batch must be ≥ 1".to_string());
        }
        if self.delta_ms == 0 || self.delta_ms > 60_000 {
            return fail("delta-ms must be in 1..=60000".to_string());
        }
        if let Chaff::PoissonMillis(m) = self.chaff {
            if m > 1_000_000 {
                return fail("chaff rate must be ≤ 1000 pkts/s".to_string());
            }
        }
        if self.loss_ppm >= 900_000 {
            return fail("loss must be < 0.9".to_string());
        }
        if let Repacketize::WindowMs(w) = self.repacketize {
            if w == 0 || w > 60_000 {
                return fail("repacketize window-ms must be in 1..=60000".to_string());
            }
        }
        if self.erasure_budget as usize > MAX_PACKETS {
            return fail(format!("erasure-budget must be ≤ {MAX_PACKETS}"));
        }
        if self.wm_bits == 0 || self.wm_bits > 64 {
            return fail("wm-bits must be in 1..=64".to_string());
        }
        if self.wm_redundancy == 0 || self.wm_redundancy > 64 {
            return fail("wm-redundancy must be in 1..=64".to_string());
        }
        if self.wm_offset == 0 || self.wm_offset > 64 {
            return fail("wm-offset must be in 1..=64".to_string());
        }
        if self.wm_adjustment_ms == 0 || self.wm_adjustment_ms > 60_000 {
            return fail("wm-adjustment-ms must be in 1..=60000".to_string());
        }
        if self.wm_threshold as usize >= self.wm_bits {
            return fail(format!(
                "wm-threshold {} must be below wm-bits {}",
                self.wm_threshold, self.wm_bits
            ));
        }
        // The watermark must be embeddable: each of the l·2r pairs
        // needs two distinct packets, plus the layout's packing slack.
        let needed = self
            .wm_bits
            .saturating_mul(2)
            .saturating_mul(self.wm_redundancy)
            .saturating_mul(2)
            .saturating_add(self.wm_offset);
        if self.packets < needed.saturating_mul(2) {
            return fail(format!(
                "packets {} cannot carry a {}-bit r={} watermark (need ≥ {})",
                self.packets,
                self.wm_bits,
                self.wm_redundancy,
                needed * 2
            ));
        }
        Ok(())
    }

    /// The normative text encoding: every key, fixed order, trimmed
    /// decimals. `parse(canonical(s)) == s` for every valid spec, and
    /// `canonical(parse(t))` is the canonical form of any valid text
    /// `t`.
    pub fn canonical(&self) -> String {
        // lint: allow(bounded_ipc) fixed literal capacity, not a wire-derived length
        let mut out = String::with_capacity(512);
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        kv("name", self.name.clone());
        kv("traffic", self.traffic.name().to_string());
        kv("upstreams", self.upstreams.to_string());
        kv("decoys", self.decoys.to_string());
        kv("packets", self.packets.to_string());
        kv("shards", self.shards.to_string());
        kv("decode-batch", self.decode_batch.to_string());
        kv("seed", self.seed.to_string());
        kv("delta-ms", self.delta_ms.to_string());
        kv(
            "chaff",
            match self.chaff {
                Chaff::None => "none".to_string(),
                Chaff::PoissonMillis(m) => format!("poisson {}", render_fixed(m, 3)),
            },
        );
        kv("loss", render_fixed(u64::from(self.loss_ppm), 6));
        kv(
            "repacketize",
            match self.repacketize {
                Repacketize::None => "none".to_string(),
                Repacketize::WindowMs(w) => format!("window-ms {w}"),
            },
        );
        kv(
            "chaos",
            match self.chaos {
                None => "none".to_string(),
                Some((seed, profile)) => format!("{seed} {}", profile.name()),
            },
        );
        kv("backend", self.backend.name().to_string());
        kv("decode", self.decode.name().to_string());
        kv("erasure-budget", self.erasure_budget.to_string());
        kv("wm-bits", self.wm_bits.to_string());
        kv("wm-redundancy", self.wm_redundancy.to_string());
        kv("wm-offset", self.wm_offset.to_string());
        kv("wm-adjustment-ms", self.wm_adjustment_ms.to_string());
        kv("wm-threshold", self.wm_threshold.to_string());
        out
    }

    /// FNV-1a/64 digest of the canonical encoding — the scenario's
    /// reproducible identity, printed at load by every consumer.
    pub fn digest(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Total suspicious flows in the scenario's stream.
    pub fn suspicious_flows(&self) -> usize {
        self.upstreams + self.decoys
    }

    /// Candidate pairs a monitor tracks: every suspicious flow against
    /// every upstream.
    pub fn candidate_pairs(&self) -> usize {
        self.upstreams * self.suspicious_flows()
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{:016x}]: {} {}+{}x{}pkt Δ{}ms chaff {} loss {} backend {}",
            self.name,
            self.digest(),
            self.traffic,
            self.upstreams,
            self.decoys,
            self.packets,
            self.delta_ms,
            match self.chaff {
                Chaff::None => "none".to_string(),
                Chaff::PoissonMillis(m) => format!("poisson {}", render_fixed(m, 3)),
            },
            render_fixed(u64::from(self.loss_ppm), 6),
            self.backend,
        )
    }
}

/// FNV-1a over `bytes`, 64-bit — the workspace's usual schedule-digest
/// hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Applies one `key = value` pair onto the spec under construction.
fn apply(
    spec: &mut ScenarioSpec,
    key: &str,
    value: &str,
    line: usize,
) -> Result<(), ScenarioError> {
    let bad = |reason: String| ScenarioError::BadValue {
        key: key.to_string(),
        line,
        reason,
    };
    let count = |value: &str| -> Result<usize, ScenarioError> {
        value.parse::<usize>().map_err(|e| bad(e.to_string()))
    };
    match key {
        "name" => spec.name = value.to_string(),
        "traffic" => {
            spec.traffic = match value {
                "interactive" => Traffic::Interactive,
                "tcplib" => Traffic::Tcplib,
                "mixed" => Traffic::Mixed,
                other => return Err(bad(format!("unknown traffic {other:?}"))),
            }
        }
        "upstreams" => spec.upstreams = count(value)?,
        "decoys" => spec.decoys = count(value)?,
        "packets" => spec.packets = count(value)?,
        "shards" => spec.shards = count(value)?,
        "decode-batch" => spec.decode_batch = count(value)?,
        "seed" => spec.seed = value.parse().map_err(|e| bad(format!("{e}")))?,
        "delta-ms" => spec.delta_ms = value.parse().map_err(|e| bad(format!("{e}")))?,
        "chaff" => {
            spec.chaff = match value.split_once(char::is_whitespace) {
                None if value == "none" => Chaff::None,
                Some((model, rate)) if model.trim() == "poisson" => {
                    Chaff::PoissonMillis(parse_fixed(rate.trim(), 3).map_err(&bad)?)
                }
                _ => {
                    return Err(bad(format!(
                        "expected `none` or `poisson RATE`, got {value:?}"
                    )))
                }
            }
        }
        "loss" => {
            let ppm = parse_fixed(value, 6).map_err(&bad)?;
            spec.loss_ppm = u32::try_from(ppm).map_err(|_| bad("loss too large".to_string()))?;
        }
        "repacketize" => {
            spec.repacketize = match value.split_once(char::is_whitespace) {
                None if value == "none" => Repacketize::None,
                Some((kind, w)) if kind.trim() == "window-ms" => {
                    Repacketize::WindowMs(w.trim().parse().map_err(|e| bad(format!("{e}")))?)
                }
                _ => {
                    return Err(bad(format!(
                        "expected `none` or `window-ms N`, got {value:?}"
                    )))
                }
            }
        }
        "chaos" => {
            spec.chaos = match value.split_once(char::is_whitespace) {
                None if value == "none" => None,
                Some((seed, profile)) => {
                    let seed = seed
                        .trim()
                        .parse::<u64>()
                        .map_err(|e| bad(format!("bad chaos seed: {e}")))?;
                    let profile = match profile.trim() {
                        "mild" => ChaosProfile::Mild,
                        "harsh" => ChaosProfile::Harsh,
                        "adversarial" => ChaosProfile::Adversarial,
                        other => return Err(bad(format!("unknown chaos profile {other:?}"))),
                    };
                    Some((seed, profile))
                }
                _ => {
                    return Err(bad(format!(
                        "expected `none` or `SEED PROFILE`, got {value:?}"
                    )))
                }
            }
        }
        "backend" => {
            spec.backend = match value {
                "paper" => Backend::Paper,
                "elices" => Backend::Elices,
                "game" => Backend::Game,
                other => {
                    return Err(bad(format!(
                        "unknown backend {other:?}; valid: paper, elices, game"
                    )))
                }
            }
        }
        "decode" => {
            spec.decode = match value {
                "strict" => Decode::Strict,
                "robust" => Decode::Robust,
                other => {
                    return Err(bad(format!(
                        "unknown decode mode {other:?}; valid: strict, robust"
                    )))
                }
            }
        }
        "erasure-budget" => spec.erasure_budget = value.parse().map_err(|e| bad(format!("{e}")))?,
        "wm-bits" => spec.wm_bits = count(value)?,
        "wm-redundancy" => spec.wm_redundancy = count(value)?,
        "wm-offset" => spec.wm_offset = count(value)?,
        "wm-adjustment-ms" => {
            spec.wm_adjustment_ms = value.parse().map_err(|e| bad(format!("{e}")))?
        }
        "wm-threshold" => spec.wm_threshold = value.parse().map_err(|e| bad(format!("{e}")))?,
        other => {
            return Err(ScenarioError::UnknownKey {
                key: other.to_string(),
                line,
            })
        }
    }
    Ok(())
}

/// Parses a non-negative decimal with at most `scale` fractional
/// digits into fixed-point units of 10^-scale (e.g. `"2.5"` at scale 3
/// ⇒ 2500). Keeps the DSL integral end to end: no float round-trip
/// ambiguity in the canonical encoding.
fn parse_fixed(s: &str, scale: u32) -> Result<u64, String> {
    let (int, frac) = match s.split_once('.') {
        Some((_, "")) => return Err(format!("{s:?} ends with a bare decimal point")),
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    if int.is_empty() || !int.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("{s:?} is not a non-negative decimal"));
    }
    if frac.len() > scale as usize || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!(
            "{s:?} has more than {scale} fractional digits (or non-digits)"
        ));
    }
    let unit = 10u64.pow(scale);
    let int: u64 = int.parse().map_err(|e| format!("{e}"))?;
    let mut frac_units: u64 = 0;
    if !frac.is_empty() {
        frac_units =
            frac.parse::<u64>().map_err(|e| format!("{e}"))? * 10u64.pow(scale - frac.len() as u32);
    }
    int.checked_mul(unit)
        .and_then(|v| v.checked_add(frac_units))
        .ok_or_else(|| format!("{s:?} overflows"))
}

/// Renders fixed-point units of 10^-scale back to the shortest decimal
/// (`2500` at scale 3 ⇒ `"2.5"`, `2000` ⇒ `"2"`).
fn render_fixed(units: u64, scale: u32) -> String {
    let unit = 10u64.pow(scale);
    let int = units / unit;
    let frac = units % unit;
    if frac == 0 {
        return int.to_string();
    }
    let mut digits = format!("{frac:0width$}", width = scale as usize);
    while digits.ends_with('0') {
        digits.pop();
    }
    format!("{int}.{digits}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_through_canonical() {
        let spec = ScenarioSpec::base("baseline");
        spec.validate().expect("defaults validate");
        let text = spec.canonical();
        let back = ScenarioSpec::parse(&text).expect("canonical parses");
        assert_eq!(back, spec);
        assert_eq!(back.canonical(), text);
    }

    #[test]
    fn minimal_spec_is_just_a_name() {
        let spec = ScenarioSpec::parse("name = tiny\n").expect("name-only spec parses");
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec, {
            let mut base = ScenarioSpec::base("tiny");
            base.name = "tiny".to_string();
            base
        });
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a scenario\n\nname = c1  # inline comment\n  upstreams = 3\n";
        let spec = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(spec.upstreams, 3);
    }

    #[test]
    fn fixed_point_chaff_and_loss_round_trip() {
        let text = "name = fp\nchaff = poisson 2.5\nloss = 0.0312\n";
        let spec = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(spec.chaff, Chaff::PoissonMillis(2500));
        assert_eq!(spec.loss_ppm, 31_200);
        let canon = spec.canonical();
        assert!(canon.contains("chaff = poisson 2.5\n"), "{canon}");
        assert!(canon.contains("loss = 0.0312\n"), "{canon}");
        assert_eq!(ScenarioSpec::parse(&canon).expect("round-trips"), spec);
    }

    #[test]
    fn typed_errors_carry_lines() {
        assert_eq!(ScenarioSpec::parse(""), Err(ScenarioError::Empty));
        assert_eq!(
            ScenarioSpec::parse("upstreams = 2\n"),
            Err(ScenarioError::MissingName)
        );
        assert_eq!(
            ScenarioSpec::parse("name = x\nwat\n"),
            Err(ScenarioError::BadLine { line: 2 })
        );
        assert_eq!(
            ScenarioSpec::parse("name = x\nbogus = 1\n"),
            Err(ScenarioError::UnknownKey {
                key: "bogus".to_string(),
                line: 2
            })
        );
        assert_eq!(
            ScenarioSpec::parse("name = x\nname = y\n"),
            Err(ScenarioError::DuplicateKey {
                key: "name".to_string(),
                line: 2
            })
        );
        assert!(matches!(
            ScenarioSpec::parse("name = x\nseed = owl\n"),
            Err(ScenarioError::BadValue { key, line: 2, .. }) if key == "seed"
        ));
        assert!(matches!(
            ScenarioSpec::parse("name = x\nwm-threshold = 99\n"),
            Err(ScenarioError::Invalid { .. })
        ));
        assert!(matches!(
            ScenarioSpec::parse("name = UPPER\n"),
            Err(ScenarioError::Invalid { .. })
        ));
    }

    #[test]
    fn packets_must_carry_the_watermark() {
        let err = ScenarioSpec::parse("name = x\npackets = 64\nwm-bits = 24\nwm-redundancy = 4\n");
        assert!(
            matches!(err, Err(ScenarioError::Invalid { ref reason }) if reason.contains("carry")),
            "{err:?}"
        );
    }

    #[test]
    fn digest_is_stable_and_content_addressed() {
        let a = ScenarioSpec::base("a");
        let mut b = ScenarioSpec::base("a");
        assert_eq!(a.digest(), b.digest());
        b.seed = 2;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn chaos_parses_seed_and_profile() {
        let spec = ScenarioSpec::parse("name = c\nchaos = 44 harsh\n").expect("parses");
        assert_eq!(spec.chaos, Some((44, ChaosProfile::Harsh)));
        assert!(spec.canonical().contains("chaos = 44 harsh\n"));
        assert!(ScenarioSpec::parse("name = c\nchaos = 44 bogus\n").is_err());
        assert!(ScenarioSpec::parse("name = c\nchaos = nope\n").is_err());
    }

    #[test]
    fn decode_mode_parses_and_round_trips() {
        let spec = ScenarioSpec::parse("name = r\ndecode = robust\nerasure-budget = 48\n")
            .expect("parses");
        assert_eq!(spec.decode, Decode::Robust);
        assert_eq!(spec.erasure_budget, 48);
        let canon = spec.canonical();
        assert!(canon.contains("decode = robust\n"), "{canon}");
        assert!(canon.contains("erasure-budget = 48\n"), "{canon}");
        assert_eq!(ScenarioSpec::parse(&canon).expect("round-trips"), spec);
        assert!(matches!(
            ScenarioSpec::parse("name = r\ndecode = fuzzy\n"),
            Err(ScenarioError::BadValue { key, .. }) if key == "decode"
        ));
        assert!(ScenarioSpec::parse("name = r\nerasure-budget = 999999999\n").is_err());
    }

    #[test]
    fn render_fixed_trims() {
        assert_eq!(render_fixed(2000, 3), "2");
        assert_eq!(render_fixed(2500, 3), "2.5");
        assert_eq!(render_fixed(2505, 3), "2.505");
        assert_eq!(render_fixed(0, 6), "0");
        assert_eq!(render_fixed(31_200, 6), "0.0312");
    }

    #[test]
    fn parse_fixed_rejects_junk() {
        assert!(parse_fixed("2.5", 3).is_ok());
        assert!(parse_fixed(".5", 3).is_err());
        assert!(parse_fixed("2.", 3).is_err());
        assert!(parse_fixed("-1", 3).is_err());
        assert!(parse_fixed("2.0001", 3).is_err());
        assert!(parse_fixed("1e3", 3).is_err());
    }
}
