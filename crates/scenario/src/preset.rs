//! The checked-in preset library: named scenarios shipped with the
//! binary via `include_str!`, so `repro serve`/`repro matrix` can run
//! them without any files on disk.
//!
//! | Preset | What it stages |
//! |--------|----------------|
//! | `quick-smoke` | Smallest valid scenario; CI smoke and doctests |
//! | `baseline` | The paper's §4 regime: interactive flows, moderate chaff |
//! | `multi-flow` | Several watermarked flows through one adversary (the Kiyavash et al. multi-flow staging) |
//! | `deletion-harsh` | Gong/Kiyavash deletion + bursty-insertion channel: harsh chaos + packet loss |
//! | `chaff-storm` | Heavy Poisson chaff, the paper's worst cover-traffic column |
//! | `tcplib-mix` | Mixed interactive/tcplib traffic with telnet background decoys |

use crate::{ScenarioError, ScenarioSpec};

/// Every preset name, in library order. [`preset`] accepts exactly
/// these.
pub const NAMES: [&str; 6] = [
    "quick-smoke",
    "baseline",
    "multi-flow",
    "deletion-harsh",
    "chaff-storm",
    "tcplib-mix",
];

const SOURCES: [&str; 6] = [
    include_str!("../presets/quick-smoke.scn"),
    include_str!("../presets/baseline.scn"),
    include_str!("../presets/multi-flow.scn"),
    include_str!("../presets/deletion-harsh.scn"),
    include_str!("../presets/chaff-storm.scn"),
    include_str!("../presets/tcplib-mix.scn"),
];

/// Looks up a preset by name and parses it.
pub fn preset(name: &str) -> Result<ScenarioSpec, ScenarioError> {
    match NAMES.iter().position(|&n| n == name) {
        Some(index) => ScenarioSpec::parse(SOURCES[index]),
        None => Err(ScenarioError::UnknownPreset {
            name: name.to_string(),
        }),
    }
}

/// The raw DSL text of a preset, if the name is known — what `repro
/// scenarios --dump` prints.
pub fn preset_text(name: &str) -> Option<&'static str> {
    NAMES
        .iter()
        .position(|&n| n == name)
        .map(|index| SOURCES[index])
}

/// Parses every preset, in [`NAMES`] order.
pub fn all() -> Vec<ScenarioSpec> {
    NAMES
        .iter()
        // lint: allow(no_panic) checked-in preset texts parse; pinned by the digest tests
        .map(|name| preset(name).expect("checked-in presets parse; pinned by tests"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_parses_and_matches_its_file_name() {
        for name in NAMES {
            let spec = preset(name).unwrap_or_else(|e| panic!("preset {name}: {e}"));
            assert_eq!(spec.name, name, "preset file name and `name` key agree");
        }
    }

    #[test]
    fn preset_digests_are_distinct() {
        let digests: Vec<u64> = all().iter().map(ScenarioSpec::digest).collect();
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), digests.len(), "digests: {digests:x?}");
    }

    #[test]
    fn presets_round_trip_through_canonical() {
        for spec in all() {
            let again = ScenarioSpec::parse(&spec.canonical()).expect("canonical parses");
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn unknown_preset_lists_the_library() {
        let err = preset("bogus").expect_err("unknown");
        let text = err.to_string();
        for name in NAMES {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn library_stages_the_issue_scenarios() {
        let multi = preset("multi-flow").expect("multi-flow");
        assert!(
            multi.upstreams >= 4,
            "multi-flow stages several watermarked flows"
        );
        let harsh = preset("deletion-harsh").expect("deletion-harsh");
        assert!(
            matches!(harsh.chaos, Some((_, crate::ChaosProfile::Harsh))),
            "deletion-harsh arms the harsh chaos channel"
        );
        assert!(harsh.loss_ppm > 0, "deletion-harsh deletes packets");
    }
}
