//! Property-based tests for the passive correlator backends: never
//! panic on hostile input, deterministic verdicts, and streaming
//! decodes that agree with batch decodes.

use proptest::prelude::*;
use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_backends::{
    BackendKind, CorrelatorBackend, ElicesBackend, ElicesConfig, GameBackend, GameConfig,
    StreamState,
};
use stepstone_flow::{Flow, TimeDelta, Timestamp};
use stepstone_traffic::Seed;

fn sorted_flow(max_len: usize, span_micros: i64) -> impl Strategy<Value = Flow> {
    proptest::collection::vec(0i64..span_micros, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        if v.is_empty() {
            Flow::new()
        } else {
            Flow::from_timestamps(v.into_iter().map(Timestamp::from_micros)).unwrap()
        }
    })
}

/// Every passive backend bound to `upstream`, so each property runs
/// over all of them. (The paper backend's equivalents live in the
/// monitor's suite — it sits above this crate in the dependency graph.)
fn passive_backends(upstream: &Flow, delta: TimeDelta) -> Vec<Box<dyn CorrelatorBackend>> {
    vec![
        Box::new(ElicesBackend::bind(ElicesConfig::new(delta), upstream)),
        Box::new(GameBackend::bind(GameConfig::new(delta), upstream)),
    ]
}

fn prefix(flow: &Flow, n: usize) -> Flow {
    let n = n.min(flow.len());
    if n == 0 {
        Flow::new()
    } else {
        Flow::from_timestamps((0..n).map(|i| flow.timestamp(i))).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary (including empty and chaff-heavy) flow pairs never
    /// panic any backend, and every outcome keeps the passive-backend
    /// shape: completed, watermark-free, matching-only cost.
    #[test]
    fn decode_never_panics_and_keeps_the_passive_shape(
        up in sorted_flow(50, 2_000_000),
        down in sorted_flow(120, 2_400_000),
        delta_micros in 0i64..600_000,
    ) {
        let delta = TimeDelta::from_micros(delta_micros);
        for backend in passive_backends(&up, delta) {
            let outcome = backend.decode(&down);
            prop_assert!(outcome.completed, "{} left a bound hit", backend.kind());
            prop_assert_eq!(outcome.hamming, None);
            prop_assert!(outcome.best.is_none());
            prop_assert_eq!(outcome.cost, outcome.matching_cost,
                "{}: passive decode is one matching sweep", backend.kind());
            // Deterministic: the same window decodes identically.
            prop_assert_eq!(backend.decode(&down), outcome);
        }
    }

    /// Chaos-style mutations — truncation, bounded perturbation, heavy
    /// chaff — never panic a backend, even when they leave a window
    /// that is empty or shorter than the upstream flow.
    #[test]
    fn mutated_windows_never_panic(
        up in sorted_flow(40, 2_000_000),
        keep in 0usize..160,
        chaff_rate in 0.0f64..50.0,
        seed in 0u64..u64::MAX,
    ) {
        let delta = TimeDelta::from_millis(300);
        let mut pipeline = AdversaryPipeline::new().then(UniformPerturbation::new(delta));
        if chaff_rate > 0.0 {
            pipeline = pipeline.then(ChaffInjector::new(ChaffModel::Poisson { rate: chaff_rate }));
        }
        let down = prefix(&pipeline.apply(&up, Seed::new(seed)), keep);
        for backend in passive_backends(&up, delta) {
            let outcome = backend.decode(&down);
            prop_assert!(outcome.completed);
            if down.is_empty() {
                prop_assert!(!outcome.correlated,
                    "{} correlated an empty window", backend.kind());
            }
        }
    }

    /// The streaming path agrees with batch: decoding growing prefixes
    /// ends at exactly the batch verdict on the full window, and the
    /// stream state's books (decode count, latched verdict, peak
    /// window, cost ledger) stay consistent with what was decoded.
    #[test]
    fn streaming_equals_batch(
        up in sorted_flow(40, 2_000_000),
        chaff_rate in 0.0f64..5.0,
        batch in 1usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let delta = TimeDelta::from_millis(400);
        let mut pipeline = AdversaryPipeline::new().then(UniformPerturbation::new(delta));
        if chaff_rate > 0.0 {
            pipeline = pipeline.then(ChaffInjector::new(ChaffModel::Poisson { rate: chaff_rate }));
        }
        let down = pipeline.apply(&up, Seed::new(seed));
        for backend in passive_backends(&up, delta) {
            let mut state = StreamState::new();
            let mut any_positive = false;
            let mut steps = 0u64;
            let mut cut = batch.min(down.len());
            loop {
                let window = prefix(&down, cut);
                let outcome = backend.decode_stream(&window, &mut state);
                any_positive |= outcome.correlated;
                steps += 1;
                if cut >= down.len() {
                    let batch_outcome = backend.decode(&down);
                    prop_assert_eq!(outcome, batch_outcome,
                        "{}: final streaming decode diverged from batch", backend.kind());
                    break;
                }
                cut = (cut + batch).min(down.len());
            }
            prop_assert_eq!(state.decodes(), steps);
            prop_assert_eq!(state.latched(), any_positive);
            prop_assert_eq!(state.peak_window(), down.len());
        }
    }

    /// A true downstream — bounded delay plus chaff, nothing dropped —
    /// achieves full order-consistent coverage, so the game backend
    /// only ever answers "correlated" or "undecidable", never a
    /// confident "unrelated" that a later window would contradict.
    #[test]
    fn true_pairs_keep_full_coverage_under_chaff(
        up in sorted_flow(40, 4_000_000),
        chaff_rate in 0.0f64..5.0,
        seed in 0u64..u64::MAX,
    ) {
        let delta = TimeDelta::from_millis(500);
        let mut pipeline = AdversaryPipeline::new().then(UniformPerturbation::new(delta));
        if chaff_rate > 0.0 {
            pipeline = pipeline.then(ChaffInjector::new(ChaffModel::Poisson { rate: chaff_rate }));
        }
        let down = pipeline.apply(&up, Seed::new(seed));
        let stats = stepstone_backends::order_consistent_stats(&up, &down, delta);
        prop_assert_eq!(stats.misses, 0, "true pair missed an observable window");
        prop_assert_eq!(stats.matched_observable, stats.observable);
    }
}

#[test]
fn backend_kind_is_reported_truthfully() {
    let up = Flow::from_timestamps((0..20).map(|i| Timestamp::from_micros(i * 1_000_000))).unwrap();
    let delta = TimeDelta::from_secs(1);
    let kinds: Vec<BackendKind> = passive_backends(&up, delta)
        .iter()
        .map(|b| b.kind())
        .collect();
    assert_eq!(kinds, vec![BackendKind::Elices, BackendKind::Game]);
    for backend in passive_backends(&up, delta) {
        assert_eq!(backend.upstream().len(), up.len());
    }
}
