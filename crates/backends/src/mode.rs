//! Decode-mode identities: strict (the paper's assumption-1 decoder)
//! versus robust (deletion-tolerant), orthogonal to the backend choice.

use serde::{Deserialize, Serialize};

/// How a backend treats observable upstream packets with no downstream
/// counterpart.
///
/// The name returned by [`name`](DecodeMode::name) is a stable
/// identifier: `repro monitor --decode <name>` selects it, `/metrics`
/// labels per-mode series with it, and the scenario DSL carries it in
/// canonical spec text (`decode = <name>`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeMode {
    /// The paper's §2 assumption-1 decoder: every marked packet must
    /// have a counterpart; an empty matching set aborts the decode.
    #[default]
    Strict,
    /// The deletion-tolerant decoder: an unserved marked packet is
    /// charged as an *erasure* (up to the configured budget) instead of
    /// aborting, and the decision statistic runs over what remains.
    Robust,
}

impl DecodeMode {
    /// Every mode, in display order. Metric registration and the
    /// loss-sweep experiment iterate this, so a new mode shows up
    /// everywhere by extending this list.
    pub const ALL: [DecodeMode; 2] = [DecodeMode::Strict, DecodeMode::Robust];

    /// The stable lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            DecodeMode::Strict => "strict",
            DecodeMode::Robust => "robust",
        }
    }

    /// A dense index into per-mode tables (`0..ALL.len()`).
    pub const fn index(self) -> usize {
        match self {
            DecodeMode::Strict => 0,
            DecodeMode::Robust => 1,
        }
    }

    /// Parses a stable name back into a mode.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownDecodeMode`] (whose message lists the valid
    /// names) when `name` matches no mode.
    pub fn parse(name: &str) -> Result<Self, UnknownDecodeMode> {
        DecodeMode::ALL
            .into_iter()
            .find(|mode| mode.name() == name)
            .ok_or_else(|| UnknownDecodeMode {
                input: name.to_string(),
            })
    }
}

impl std::fmt::Display for DecodeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A decode-mode name that parsed to nothing; its display lists the
/// valid names so a CLI can reject `--decode typo` helpfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDecodeMode {
    /// The name that failed to parse.
    pub input: String,
}

impl std::fmt::Display for UnknownDecodeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown decode mode {:?} (valid: ", self.input)?;
        for (i, mode) in DecodeMode::ALL.into_iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(mode.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownDecodeMode {}

/// The decode-layer configuration every backend accepts: which mode to
/// run and, for the robust mode, how many erasures a window may absorb
/// before the outcome is flagged over budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeOptions {
    /// Strict or robust decoding.
    pub mode: DecodeMode,
    /// Erasures the robust decoder absorbs per decode window before
    /// marking the outcome over budget. Ignored in strict mode.
    pub erasure_budget: u32,
}

impl DecodeOptions {
    /// The strict decoder (the default everywhere).
    pub const fn strict() -> Self {
        DecodeOptions {
            mode: DecodeMode::Strict,
            erasure_budget: 0,
        }
    }

    /// The robust decoder with the given erasure budget.
    pub const fn robust(erasure_budget: u32) -> Self {
        DecodeOptions {
            mode: DecodeMode::Robust,
            erasure_budget,
        }
    }

    /// `true` for the robust mode.
    pub const fn is_robust(&self) -> bool {
        matches!(self.mode, DecodeMode::Robust)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for mode in DecodeMode::ALL {
            assert_eq!(DecodeMode::parse(mode.name()), Ok(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        for (i, mode) in DecodeMode::ALL.into_iter().enumerate() {
            assert_eq!(mode.index(), i);
        }
    }

    #[test]
    fn unknown_name_lists_the_valid_ones() {
        let err = DecodeMode::parse("bogus").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"bogus\""), "{msg}");
        for mode in DecodeMode::ALL {
            assert!(msg.contains(mode.name()), "{msg}");
        }
    }

    #[test]
    fn default_is_strict() {
        assert_eq!(DecodeMode::default(), DecodeMode::Strict);
        assert_eq!(DecodeOptions::default(), DecodeOptions::strict());
        assert!(!DecodeOptions::default().is_robust());
        assert!(DecodeOptions::robust(8).is_robust());
    }
}
