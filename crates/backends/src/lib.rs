//! Pluggable correlator backends behind one seam.
//!
//! The paper's four best-watermark algorithms (in `stepstone-core`) are
//! one way to decide whether a suspicious flow is a downstream relay of
//! a watched upstream flow. The related literature gives others built
//! for exactly the same chaff-plus-bounded-delay channel. This crate
//! defines the contract they all share — [`CorrelatorBackend`]: batch
//! decode, incremental decode over a sliding window, and cost
//! accounting — plus two passive detectors that need no watermark at
//! all:
//!
//! | Backend | Source | Decision statistic |
//! |---------|--------|--------------------|
//! | [`ElicesBackend`] | Elices & Pérez-González, arXiv 1310.4577 | generalized log-likelihood ratio over the order-consistent IPD matching decomposition |
//! | [`GameBackend`] | Elices & Pérez-González, arXiv 1307.3136 | minimax matched-coverage test against the chance-matching rate |
//!
//! `stepstone-core`'s `BoundCorrelator` is the dispatch seam: it wraps
//! the paper machinery and these two behind one enum, and the online
//! monitor decodes through it without knowing which backend is live.
//! Adding a third-party backend is one module implementing
//! [`CorrelatorBackend`] plus one enum arm there — no engine changes.
//!
//! Both detectors here share one primitive, the greedy order-consistent
//! matching sweep ([`order_consistent_stats`]): the maximum set of
//! (upstream, suspicious) packet pairs with `0 ≤ t′ − t ≤ Δ` whose
//! match times increase monotonically — the same timing constraint the
//! paper's matching sets encode, collapsed to summary statistics
//! instead of per-bit candidate sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elices;
mod game;
mod kind;
mod matchstats;
mod mode;
mod outcome;
mod stream;

pub use elices::{ElicesBackend, ElicesConfig};
pub use game::{GameBackend, GameConfig};
pub use kind::{BackendKind, UnknownBackend};
pub use matchstats::{order_consistent_stats, robust_order_consistent_stats, MatchStats};
pub use mode::{DecodeMode, DecodeOptions, UnknownDecodeMode};
pub use outcome::{Correlation, RobustOutcome};
pub use stream::StreamState;

use stepstone_flow::Flow;

/// The contract every correlator backend implements: one watched
/// upstream flow, judged against many suspicious flows.
///
/// Implementations must be `Send + Sync` — the online monitor shares a
/// backend across its shard worker threads behind an `Arc`.
pub trait CorrelatorBackend: Send + Sync {
    /// Which backend this is (stable name for CLI flags, metric labels
    /// and cluster specs).
    fn kind(&self) -> BackendKind;

    /// The decode configuration this backend instance runs with
    /// (strict, zero budget, unless the implementation was configured
    /// robust). The monitor reads the erasure budget back from here to
    /// relax its minimum-window gate: under deletions a downstream flow
    /// can be legitimately *shorter* than its upstream.
    fn decode_options(&self) -> DecodeOptions {
        DecodeOptions::strict()
    }

    /// Which decode mode this backend instance runs. Labels the
    /// per-mode decode-latency metric family.
    fn decode_mode(&self) -> DecodeMode {
        self.decode_options().mode
    }

    /// The upstream flow this backend is bound to, as observed on the
    /// wire. The monitor sizes decode windows from its length.
    fn upstream(&self) -> &Flow;

    /// Batch decode: decides whether `suspicious` is a downstream flow
    /// of the bound upstream flow. Must never panic, whatever the
    /// input — empty flows, chaff floods and fault-mutated timestamps
    /// included.
    fn decode(&self, suspicious: &Flow) -> Correlation;

    /// Incremental decode over a sliding-window prefix, accumulating
    /// cost accounting in `state`.
    ///
    /// The default implementation re-decodes the window from scratch —
    /// the streaming model the monitor's redecode scheduling assumes —
    /// and records the decode into `state`. Backends with cheaper
    /// suffix updates may override it, provided the verdict equals the
    /// batch [`decode`](Self::decode) of the same window (the
    /// streaming-equals-batch property the test suites pin).
    fn decode_stream(&self, window: &Flow, state: &mut StreamState) -> Correlation {
        let outcome = self.decode(window);
        state.record(&outcome, window.len());
        outcome
    }
}
