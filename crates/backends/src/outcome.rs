//! The backend-independent correlation outcome.

use serde::{Deserialize, Serialize};
use stepstone_watermark::Watermark;

/// What the robust decode layer adds to a [`Correlation`]: how much of
/// the evidence was erased and how confident the decision that remains
/// is. `None` on every strict decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustOutcome {
    /// Erasures charged in this decode window (deleted-packet slots
    /// absorbed instead of aborting or counting as misses).
    pub erasures: u32,
    /// `true` when the window needed more erasures than the configured
    /// budget allowed: the evidence is too damaged for a clean negative,
    /// and the monitor reports `Degraded` instead of `Cleared` for a
    /// pair that ends in this state.
    pub budget_blown: bool,
    /// How much of the decision statistic survived the erasures, as a
    /// percentage in `0..=100` (decided watermark bits for the paper
    /// backend, surviving-window coverage for the passive ones).
    pub confidence_pct: u8,
}

impl RobustOutcome {
    /// Robust accounting read off a [`MatchStats`] from the
    /// budget-absorbing sweep
    /// ([`robust_order_consistent_stats`][crate::robust_order_consistent_stats]):
    /// erasures are the absorbed misses, the budget is blown when any
    /// miss survived absorption (the window demanded more erasures than
    /// the budget covered), and confidence is the surviving-window
    /// coverage as a percentage.
    pub fn from_match_stats(stats: &crate::MatchStats) -> Self {
        let pct = (stats.coverage() * 100.0).round().clamp(0.0, 100.0) as u8;
        RobustOutcome {
            erasures: stats.erasures.min(u32::MAX as usize) as u32,
            budget_blown: stats.misses > 0,
            confidence_pct: pct,
        }
    }
}

/// The outcome of correlating one suspicious flow against one
/// watched upstream flow.
///
/// Every backend produces this shape. The watermark-specific fields
/// ([`hamming`](Correlation::hamming), [`best`](Correlation::best)) are
/// `None` for the passive backends, which decide from timing statistics
/// alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Correlation {
    /// `true` when the backend's decision statistic crossed its
    /// detection threshold (for the paper backend: the best watermark's
    /// Hamming distance is within the scheme threshold).
    pub correlated: bool,
    /// Hamming distance of the best watermark found; `None` when the
    /// matching phase already proved the flows unrelated (an empty or
    /// infeasible matching set) — or when the backend decodes no
    /// watermark at all.
    pub hamming: Option<u32>,
    /// The best decoded watermark, when one was computed.
    pub best: Option<Watermark>,
    /// The cost reported in the paper's figures, in packet accesses.
    /// For Greedy this is the decode phase alone (the paper charges the
    /// matching process only to the approaches that consume it — which
    /// is why Greedy's published cost curve is constant and a failed
    /// matching costs 0, plotted as 1 on log axes); for the other
    /// algorithms it includes the matching phase. The passive backends
    /// do all their work in one matching sweep, so for them `cost`
    /// equals [`matching_cost`](Correlation::matching_cost).
    pub cost: u64,
    /// The matching phase's packet accesses alone (informational; part
    /// of `cost` except for Greedy).
    pub matching_cost: u64,
    /// `false` when a bounded search (Optimal/Brute Force) hit its cost
    /// bound before finishing.
    pub completed: bool,
    /// Robust-decode accounting; `None` for every strict decode.
    pub robust: Option<RobustOutcome>,
}

impl Correlation {
    /// An immediate negative from the matching phase: no feasible
    /// matching, so no watermark was decoded.
    pub fn unmatched(cost: u64, matching_cost: u64) -> Self {
        Correlation {
            correlated: false,
            hamming: None,
            best: None,
            cost,
            completed: true,
            matching_cost,
            robust: None,
        }
    }
}

impl std::fmt::Display for Correlation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.hamming {
            Some(h) => write!(
                f,
                "{} (hamming {h}, {} accesses{})",
                if self.correlated {
                    "correlated"
                } else {
                    "not correlated"
                },
                self.cost,
                if self.completed { "" } else { ", bound hit" }
            )?,
            None => write!(
                f,
                "{} (no watermark, {} accesses)",
                if self.correlated {
                    "correlated"
                } else {
                    "not correlated"
                },
                self.cost
            )?,
        }
        if let Some(r) = &self.robust {
            write!(
                f,
                " [{} erasures, {}% confidence{}]",
                r.erasures,
                r.confidence_pct,
                if r.budget_blown { ", over budget" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmatched_outcome_shape() {
        let c = Correlation::unmatched(42, 42);
        assert!(!c.correlated);
        assert_eq!(c.hamming, None);
        assert_eq!(c.cost, 42);
        assert!(c.completed);
        assert!(c.to_string().contains("no watermark"));
    }

    #[test]
    fn display_mentions_bound_hits() {
        let c = Correlation {
            correlated: true,
            hamming: Some(3),
            best: None,
            cost: 10,
            matching_cost: 4,
            completed: false,
            robust: None,
        };
        assert!(c.to_string().contains("bound hit"));
    }

    #[test]
    fn robust_outcome_renders_erasure_accounting() {
        let c = Correlation {
            correlated: true,
            hamming: Some(1),
            best: None,
            cost: 10,
            matching_cost: 4,
            completed: true,
            robust: Some(RobustOutcome {
                erasures: 3,
                budget_blown: false,
                confidence_pct: 87,
            }),
        };
        let s = c.to_string();
        assert!(s.contains("3 erasures"), "{s}");
        assert!(s.contains("87% confidence"), "{s}");
        assert!(!s.contains("over budget"), "{s}");
        let blown = Correlation {
            robust: Some(RobustOutcome {
                erasures: 9,
                budget_blown: true,
                confidence_pct: 40,
            }),
            ..c
        };
        assert!(blown.to_string().contains("over budget"));
    }

    #[test]
    fn watermark_free_positive_renders() {
        let c = Correlation {
            correlated: true,
            hamming: None,
            best: None,
            cost: 7,
            matching_cost: 7,
            completed: true,
            robust: None,
        };
        let s = c.to_string();
        assert!(s.starts_with("correlated"), "{s}");
        assert!(s.contains("no watermark"), "{s}");
    }
}
