//! The backend-independent correlation outcome.

use serde::{Deserialize, Serialize};
use stepstone_watermark::Watermark;

/// The outcome of correlating one suspicious flow against one
/// watched upstream flow.
///
/// Every backend produces this shape. The watermark-specific fields
/// ([`hamming`](Correlation::hamming), [`best`](Correlation::best)) are
/// `None` for the passive backends, which decide from timing statistics
/// alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Correlation {
    /// `true` when the backend's decision statistic crossed its
    /// detection threshold (for the paper backend: the best watermark's
    /// Hamming distance is within the scheme threshold).
    pub correlated: bool,
    /// Hamming distance of the best watermark found; `None` when the
    /// matching phase already proved the flows unrelated (an empty or
    /// infeasible matching set) — or when the backend decodes no
    /// watermark at all.
    pub hamming: Option<u32>,
    /// The best decoded watermark, when one was computed.
    pub best: Option<Watermark>,
    /// The cost reported in the paper's figures, in packet accesses.
    /// For Greedy this is the decode phase alone (the paper charges the
    /// matching process only to the approaches that consume it — which
    /// is why Greedy's published cost curve is constant and a failed
    /// matching costs 0, plotted as 1 on log axes); for the other
    /// algorithms it includes the matching phase. The passive backends
    /// do all their work in one matching sweep, so for them `cost`
    /// equals [`matching_cost`](Correlation::matching_cost).
    pub cost: u64,
    /// The matching phase's packet accesses alone (informational; part
    /// of `cost` except for Greedy).
    pub matching_cost: u64,
    /// `false` when a bounded search (Optimal/Brute Force) hit its cost
    /// bound before finishing.
    pub completed: bool,
}

impl Correlation {
    /// An immediate negative from the matching phase: no feasible
    /// matching, so no watermark was decoded.
    pub fn unmatched(cost: u64, matching_cost: u64) -> Self {
        Correlation {
            correlated: false,
            hamming: None,
            best: None,
            cost,
            completed: true,
            matching_cost,
        }
    }
}

impl std::fmt::Display for Correlation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.hamming {
            Some(h) => write!(
                f,
                "{} (hamming {h}, {} accesses{})",
                if self.correlated {
                    "correlated"
                } else {
                    "not correlated"
                },
                self.cost,
                if self.completed { "" } else { ", bound hit" }
            ),
            None => write!(
                f,
                "{} (no watermark, {} accesses)",
                if self.correlated {
                    "correlated"
                } else {
                    "not correlated"
                },
                self.cost
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmatched_outcome_shape() {
        let c = Correlation::unmatched(42, 42);
        assert!(!c.correlated);
        assert_eq!(c.hamming, None);
        assert_eq!(c.cost, 42);
        assert!(c.completed);
        assert!(c.to_string().contains("no watermark"));
    }

    #[test]
    fn display_mentions_bound_hits() {
        let c = Correlation {
            correlated: true,
            hamming: Some(3),
            best: None,
            cost: 10,
            matching_cost: 4,
            completed: false,
        };
        assert!(c.to_string().contains("bound hit"));
    }

    #[test]
    fn watermark_free_positive_renders() {
        let c = Correlation {
            correlated: true,
            hamming: None,
            best: None,
            cost: 7,
            matching_cost: 7,
            completed: true,
        };
        let s = c.to_string();
        assert!(s.starts_with("correlated"), "{s}");
        assert!(s.contains("no watermark"), "{s}");
    }
}
