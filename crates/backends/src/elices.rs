//! The Elices/Pérez-González IPD likelihood-ratio backend.
//!
//! After Elices & Pérez-González's optimized flow-correlation attack
//! line (arXiv 1310.4577): treat linking as a binary hypothesis test
//! on inter-packet timing and decide with a (generalized)
//! log-likelihood ratio instead of a heuristic score.
//!
//! Adapted to this repo's channel model (bounded delay `Δ` plus
//! Poisson chaff, no deletion), the likelihood factorizes into two
//! parts, both computed from the maximum order-consistent matching:
//!
//! 1. **Window coverage** (the workhorse). Each observable upstream
//!    packet's match window is a Bernoulli trial: served up to a small
//!    slack `ε` under `H1`, served by chance with some probability `p`
//!    under `H0`. `p` depends on the (unknown) traffic burst structure,
//!    so the null is treated as composite and `p` is fitted from the
//!    observed coverage itself — a generalized LLR — but capped at the
//!    Poisson window-occupancy bound `q = 1 − e^(−ρ̂Δ)` (`ρ̂` the
//!    window's total packet rate): independent flows can never match
//!    order-consistently more often than their windows are non-empty.
//!    A true relayed pair covers *every* window and sits above the cap,
//!    earning `ln((1−ε)/q)` per window; an unrelated flow's fitted `p`
//!    explains its own coverage, and each miss costs `ln(ε/(1−p))`.
//! 2. **Chaff-count consistency.** Under `H1` the unmatched remainder
//!    is chaff — a Poisson count at the declared rate `λc` over the
//!    span; under `H0` the count is explained by the flow's own ML
//!    rate. The Poisson count log-ratio `k·ln(λcT/k) + k − λcT` is 0
//!    when the leftovers look exactly like chaff and increasingly
//!    negative as they don't. (With `λc` undeclared both sides fit ML
//!    and the part vanishes.)
//!
//! The test correlates when the summed LLR clears a threshold that
//! grows with `√observable` — the scale of the statistic's standard
//! deviation under `H0` — so short sliding-window prefixes need
//! proportionally stronger evidence and the streaming path stays
//! FP-stable. When `ρ̂Δ` is large the cap `q → 1` and the per-window
//! reward flattens to zero: the detector (honestly) stops correlating.
//! That saturation regime is exactly the paper's motivation for active
//! watermarking.

use stepstone_flow::{Flow, TimeDelta};

use crate::matchstats::{order_consistent_stats, robust_order_consistent_stats, MatchStats};
use crate::mode::{DecodeMode, DecodeOptions};
use crate::outcome::RobustOutcome;
use crate::{BackendKind, Correlation, CorrelatorBackend};

/// Floor for time quantities entering logarithms, in seconds.
const MIN_TIME_SECS: f64 = 1e-9;

/// Clamp for the chance-match probability `q`, keeping both binomial
/// log-ratios finite.
const Q_CLAMP: f64 = 1e-6;

/// Tunables for [`ElicesBackend`].
#[derive(Debug, Clone, PartialEq)]
pub struct ElicesConfig {
    delta: TimeDelta,
    chaff_rate: f64,
    miss_slack: f64,
    margin_nats: f64,
    threshold_nats: f64,
    min_observable: usize,
    decode: DecodeOptions,
}

impl ElicesConfig {
    /// A configuration for maximum delay `Δ` with the default decision
    /// constants (unknown chaff rate, 1% miss slack, 1-nat
    /// per-`√observable` margin, 8 observable packets minimum).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative.
    pub fn new(delta: TimeDelta) -> Self {
        assert!(!delta.is_negative(), "maximum delay must be non-negative");
        ElicesConfig {
            delta,
            chaff_rate: 0.0,
            miss_slack: 0.01,
            margin_nats: 1.0,
            threshold_nats: 0.0,
            min_observable: 8,
            decode: DecodeOptions::strict(),
        }
    }

    /// Selects the decode mode (strict or robust) and, for the robust
    /// mode, the per-window erasure budget.
    #[must_use]
    pub const fn with_decode(mut self, decode: DecodeOptions) -> Self {
        self.decode = decode;
        self
    }

    /// Declares the known chaff rate `λc` (packets/second). When
    /// positive, the chaff-count consistency part holds the unmatched
    /// remainder against this rate; when zero (unknown), both
    /// hypotheses fit the count by maximum likelihood and the part
    /// vanishes.
    #[must_use]
    pub fn with_chaff_rate(mut self, rate: f64) -> Self {
        self.chaff_rate = rate.max(0.0);
        self
    }

    /// Overrides the `H1` miss slack `ε` — the probability an
    /// observable upstream packet legitimately lacks a downstream
    /// match. Clamped to `(0, 0.5]`.
    #[must_use]
    pub fn with_miss_slack(mut self, slack: f64) -> Self {
        self.miss_slack = slack.clamp(Q_CLAMP, 0.5);
        self
    }

    /// Overrides the evidence margin: the decision threshold is
    /// `threshold + margin · √observable` nats.
    #[must_use]
    pub fn with_margin_nats(mut self, nats: f64) -> Self {
        self.margin_nats = nats;
        self
    }

    /// Overrides the base decision threshold in nats.
    #[must_use]
    pub fn with_threshold_nats(mut self, nats: f64) -> Self {
        self.threshold_nats = nats;
        self
    }

    /// Overrides the minimum observable upstream packets before the
    /// test renders a positive.
    #[must_use]
    pub fn with_min_observable(mut self, n: usize) -> Self {
        self.min_observable = n;
        self
    }

    /// The maximum delay `Δ`.
    pub const fn delta(&self) -> TimeDelta {
        self.delta
    }

    /// The declared chaff rate (0 = unknown, estimated per window).
    pub const fn chaff_rate(&self) -> f64 {
        self.chaff_rate
    }

    /// The decode-layer configuration.
    pub const fn decode_options(&self) -> DecodeOptions {
        self.decode
    }
}

/// The likelihood-ratio detector bound to one upstream flow.
#[derive(Debug, Clone)]
pub struct ElicesBackend {
    config: ElicesConfig,
    upstream: Flow,
}

impl ElicesBackend {
    /// Binds the detector to the upstream flow as observed on the wire.
    pub fn bind(config: ElicesConfig, upstream: &Flow) -> Self {
        ElicesBackend {
            config,
            upstream: upstream.clone(),
        }
    }

    /// The configuration in use.
    pub const fn config(&self) -> &ElicesConfig {
        &self.config
    }

    /// The generalized log-likelihood ratio of `suspicious` being a
    /// downstream of the bound upstream flow, in nats, next to the
    /// matching statistics it was computed from. Exposed for the
    /// cross-backend experiment tables; [`decode`] applies the
    /// threshold rule on top.
    ///
    /// [`decode`]: CorrelatorBackend::decode
    pub fn log_likelihood_ratio(&self, suspicious: &Flow) -> (f64, MatchStats) {
        let stats = self.sweep(suspicious);
        (self.llr_nats(&stats), stats)
    }

    /// The configured matching sweep: strict, or the budget-absorbing
    /// robust variant.
    fn sweep(&self, suspicious: &Flow) -> MatchStats {
        match self.config.decode.mode {
            DecodeMode::Strict => {
                order_consistent_stats(&self.upstream, suspicious, self.config.delta)
            }
            DecodeMode::Robust => robust_order_consistent_stats(
                &self.upstream,
                suspicious,
                self.config.delta,
                self.config.decode.erasure_budget,
            ),
        }
    }

    /// The decision threshold [`decode`](CorrelatorBackend::decode)
    /// holds the LLR against for these matching statistics.
    pub fn threshold_nats(&self, stats: &MatchStats) -> f64 {
        self.config.threshold_nats + self.config.margin_nats * (stats.observable as f64).sqrt()
    }

    fn llr_nats(&self, stats: &MatchStats) -> f64 {
        let delta_secs = self.config.delta.as_secs_f64().max(MIN_TIME_SECS);
        let span_secs = stats.span_secs.max(MIN_TIME_SECS);
        let chaff = stats.unmatched_suspicious() as f64;
        let total = stats.suspicious_total as f64;
        let mut llr = 0.0;

        // Part 1 — window coverage, a constrained GLR per observable
        // window. H0's per-window match probability is fitted from the
        // observed coverage (the burst structure is unknown) but capped
        // at the Poisson occupancy bound q: chance order-consistent
        // matching can never beat window availability.
        if stats.observable > 0 {
            let rate_secs = total / span_secs;
            let q = (1.0 - (-rate_secs * delta_secs).exp()).clamp(Q_CLAMP, 1.0 - Q_CLAMP);
            let coverage = stats.matched_observable as f64 / stats.observable as f64;
            let fitted = coverage.clamp(Q_CLAMP, q);
            let slack = self.config.miss_slack;
            llr += stats.matched_observable as f64 * ((1.0 - slack) / fitted).ln();
            llr += stats.misses as f64 * (slack / (1.0 - fitted)).ln();
        }

        // Part 2 — chaff-count consistency. H1: the unmatched remainder
        // is a Poisson count at the declared rate λc over the span; H0
        // explains any count with the flow's own ML rate. Zero when the
        // leftovers look exactly like chaff, negative otherwise.
        if self.config.chaff_rate > 0.0 {
            let expected = self.config.chaff_rate * span_secs;
            if chaff > 0.0 {
                llr += chaff * (expected / chaff).ln() + chaff - expected;
            } else {
                llr -= expected;
            }
        }
        llr
    }
}

impl CorrelatorBackend for ElicesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Elices
    }

    fn upstream(&self) -> &Flow {
        &self.upstream
    }

    fn decode_options(&self) -> DecodeOptions {
        self.config.decode
    }

    fn decode(&self, suspicious: &Flow) -> Correlation {
        let stats = self.sweep(suspicious);
        let correlated = stats.observable >= self.config.min_observable.max(1)
            && self.llr_nats(&stats) >= self.threshold_nats(&stats);
        Correlation {
            correlated,
            hamming: None,
            best: None,
            cost: stats.accesses,
            matching_cost: stats.accesses,
            completed: true,
            robust: self
                .config
                .decode
                .is_robust()
                .then(|| RobustOutcome::from_match_stats(&stats)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_flow::Timestamp;

    fn seconds_flow(times: &[f64]) -> Flow {
        Flow::from_timestamps(
            times
                .iter()
                .map(|&t| Timestamp::from_micros((t * 1e6) as i64)),
        )
        .unwrap()
    }

    fn regular_flow(n: usize, ipd_secs: f64, start_secs: f64) -> Flow {
        let times: Vec<f64> = (0..n).map(|i| start_secs + i as f64 * ipd_secs).collect();
        seconds_flow(&times)
    }

    #[test]
    fn delayed_copy_correlates() {
        let up = regular_flow(60, 1.0, 0.0);
        let down = up.shifted(TimeDelta::from_millis(400));
        let backend = ElicesBackend::bind(ElicesConfig::new(TimeDelta::from_secs(1)), &up);
        let (llr, stats) = backend.log_likelihood_ratio(&down);
        assert!(llr > backend.threshold_nats(&stats), "llr = {llr}");
        assert!(backend.decode(&down).correlated);
    }

    #[test]
    fn offset_unrelated_flow_clears() {
        let up = regular_flow(60, 1.0, 0.0);
        // Same rate, but drifting phase so many windows miss.
        let decoy = regular_flow(60, 1.07, 0.5);
        let backend = ElicesBackend::bind(ElicesConfig::new(TimeDelta::from_millis(300)), &up);
        let outcome = backend.decode(&decoy);
        assert!(!outcome.correlated);
    }

    #[test]
    fn empty_and_tiny_windows_never_correlate() {
        let up = regular_flow(40, 1.0, 0.0);
        let backend = ElicesBackend::bind(ElicesConfig::new(TimeDelta::from_secs(1)), &up);
        assert!(!backend.decode(&Flow::new()).correlated);
        let tiny = regular_flow(3, 1.0, 0.0);
        assert!(!backend.decode(&tiny).correlated);
    }

    #[test]
    fn outcome_is_watermark_free_and_completed() {
        let up = regular_flow(20, 1.0, 0.0);
        let backend = ElicesBackend::bind(ElicesConfig::new(TimeDelta::from_secs(1)), &up);
        let outcome = backend.decode(&up.shifted(TimeDelta::from_millis(100)));
        assert_eq!(outcome.hamming, None);
        assert_eq!(outcome.best, None);
        assert!(outcome.completed);
        assert!(outcome.cost > 0);
        assert_eq!(outcome.cost, outcome.matching_cost);
    }

    #[test]
    fn known_chaff_rate_still_detects_a_chaffed_copy() {
        let up = regular_flow(50, 1.0, 0.0);
        // A delayed copy with deterministic "chaff" midway between
        // every pair of real packets.
        let mut times: Vec<f64> = Vec::new();
        for i in 0..50 {
            times.push(i as f64 + 0.25);
            times.push(i as f64 + 0.75);
        }
        let down = seconds_flow(&times);
        let backend = ElicesBackend::bind(
            ElicesConfig::new(TimeDelta::from_millis(500)).with_chaff_rate(1.0),
            &up,
        );
        assert!(backend.decode(&down).correlated);
    }

    #[test]
    fn robust_decode_recovers_a_deleted_copy_and_flags_blown_budgets() {
        let up = regular_flow(60, 1.0, 0.0);
        // A 400ms-delayed copy with every 10th packet deleted.
        let times: Vec<f64> = (0..60)
            .filter(|i| i % 10 != 3)
            .map(|i| i as f64 + 0.4)
            .collect();
        let down = seconds_flow(&times);
        let delta = TimeDelta::from_secs(1);
        let strict = ElicesBackend::bind(ElicesConfig::new(delta), &up);
        let robust = ElicesBackend::bind(
            ElicesConfig::new(delta).with_decode(DecodeOptions::robust(8)),
            &up,
        );
        let strict_out = strict.decode(&down);
        assert_eq!(strict_out.robust, None);
        let robust_out = robust.decode(&down);
        assert!(robust_out.correlated, "{robust_out}");
        let r = robust_out.robust.expect("robust accounting");
        assert!(r.erasures > 0);
        assert!(!r.budget_blown);
        assert!(r.confidence_pct >= 90);
        // A one-erasure budget can't absorb the deletions: the budget
        // is flagged blown.
        let starved = ElicesBackend::bind(
            ElicesConfig::new(delta).with_decode(DecodeOptions::robust(1)),
            &up,
        );
        let starved_out = starved.decode(&down);
        assert!(starved_out.robust.expect("robust accounting").budget_blown);
    }

    #[test]
    fn robust_decode_still_clears_an_unrelated_flow() {
        let up = regular_flow(60, 1.0, 0.0);
        let decoy = regular_flow(60, 1.07, 0.5);
        let backend = ElicesBackend::bind(
            ElicesConfig::new(TimeDelta::from_millis(300)).with_decode(DecodeOptions::robust(4)),
            &up,
        );
        let outcome = backend.decode(&decoy);
        assert!(!outcome.correlated, "{outcome}");
    }

    #[test]
    fn saturated_channel_degrades_to_no_verdict() {
        // Δ times the total rate far above 1: chance matching serves
        // every window and the LLR flattens — the detector must not
        // claim a correlation it cannot support (true pair included).
        let up = regular_flow(60, 0.1, 0.0);
        let down = up.shifted(TimeDelta::from_millis(40));
        let backend = ElicesBackend::bind(ElicesConfig::new(TimeDelta::from_secs(3)), &up);
        let (llr, stats) = backend.log_likelihood_ratio(&down);
        assert!(
            llr < backend.threshold_nats(&stats),
            "saturated llr = {llr}"
        );
    }
}
