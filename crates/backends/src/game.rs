//! The game-theoretic coverage linker backend.
//!
//! After the timing-game line of arXiv 1307.3136: flow linking as a
//! two-player game between a linker and an interfering adversary who
//! perturbs (within the bounded delay `Δ`) and injects chaff. The
//! linker's minimax-safe statistic is order-consistent *coverage* — the
//! matched fraction of observable upstream packets:
//!
//! - Against a **true pair** the adversary cannot push coverage below 1
//!   by any strategy in the model: delays stay within `[0, Δ]`, so the
//!   sorted true-packet assignment is order-consistent and complete,
//!   and greedy earliest-match finds a maximum matching at least that
//!   large. Chaff only adds candidates; it never unmatches anything.
//! - Against an **unrelated pair** every match is chance: a window of
//!   length `Δ` in a rate-`ρ̂` stream is served with probability about
//!   `q = 1 − e^(−ρ̂Δ)`, so coverage concentrates near `q` with
//!   binomial fluctuation `√(q(1−q)/observable)`.
//!
//! The decision threshold sits `confidence` standard deviations above
//! `q`. When that threshold climbs past `coverage_cap` the adversary
//! has saturated the channel — chance coverage is statistically
//! indistinguishable from true coverage — and the linker abstains
//! (never correlates) rather than guess: the game's value in that
//! region belongs to the adversary, which is the regime the paper's
//! active watermarking is built to escape.

use stepstone_flow::{Flow, TimeDelta};

use crate::matchstats::{order_consistent_stats, robust_order_consistent_stats, MatchStats};
use crate::mode::{DecodeMode, DecodeOptions};
use crate::outcome::RobustOutcome;
use crate::{BackendKind, Correlation, CorrelatorBackend};

/// Floor for time quantities entering the chance-match model, in
/// seconds.
const MIN_TIME_SECS: f64 = 1e-9;

/// Tunables for [`GameBackend`].
#[derive(Debug, Clone, PartialEq)]
pub struct GameConfig {
    delta: TimeDelta,
    confidence: f64,
    coverage_cap: f64,
    min_observable: usize,
    decode: DecodeOptions,
}

impl GameConfig {
    /// A configuration for maximum delay `Δ` with the default decision
    /// constants (4-sigma confidence, 0.995 saturation cap, 16
    /// observable packets minimum).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative.
    pub fn new(delta: TimeDelta) -> Self {
        assert!(!delta.is_negative(), "maximum delay must be non-negative");
        GameConfig {
            delta,
            confidence: 4.0,
            coverage_cap: 0.995,
            min_observable: 16,
            decode: DecodeOptions::strict(),
        }
    }

    /// Selects the decode mode (strict or robust) and, for the robust
    /// mode, the per-window erasure budget.
    #[must_use]
    pub const fn with_decode(mut self, decode: DecodeOptions) -> Self {
        self.decode = decode;
        self
    }

    /// Overrides how many chance-coverage standard deviations the
    /// threshold sits above `q`.
    #[must_use]
    pub fn with_confidence(mut self, sigmas: f64) -> Self {
        self.confidence = sigmas.max(0.0);
        self
    }

    /// Overrides the saturation cap: thresholds above this make the
    /// pair undecidable (the linker abstains). Clamped to `(0, 1]`.
    #[must_use]
    pub fn with_coverage_cap(mut self, cap: f64) -> Self {
        self.coverage_cap = cap.clamp(f64::EPSILON, 1.0);
        self
    }

    /// Overrides the minimum observable upstream packets before the
    /// linker renders a positive.
    #[must_use]
    pub fn with_min_observable(mut self, n: usize) -> Self {
        self.min_observable = n;
        self
    }

    /// The maximum delay `Δ`.
    pub const fn delta(&self) -> TimeDelta {
        self.delta
    }

    /// The decode-layer configuration.
    pub const fn decode_options(&self) -> DecodeOptions {
        self.decode
    }
}

/// The coverage linker bound to one upstream flow.
#[derive(Debug, Clone)]
pub struct GameBackend {
    config: GameConfig,
    upstream: Flow,
}

impl GameBackend {
    /// Binds the linker to the upstream flow as observed on the wire.
    pub fn bind(config: GameConfig, upstream: &Flow) -> Self {
        GameBackend {
            config,
            upstream: upstream.clone(),
        }
    }

    /// The configuration in use.
    pub const fn config(&self) -> &GameConfig {
        &self.config
    }

    /// The coverage threshold demanded for these matching statistics,
    /// or `None` when the pair is undecidable (saturated channel, no
    /// observable packets, or a degenerate span). Exposed for the
    /// cross-backend experiment tables.
    pub fn coverage_threshold(&self, stats: &MatchStats) -> Option<f64> {
        if stats.observable == 0 || stats.span_secs < MIN_TIME_SECS {
            return None;
        }
        let delta_secs = self.config.delta.as_secs_f64().max(MIN_TIME_SECS);
        let rate_secs = stats.suspicious_total as f64 / stats.span_secs;
        let q = 1.0 - (-rate_secs * delta_secs).exp();
        let sigma = (q * (1.0 - q) / stats.observable as f64).sqrt();
        let theta = q + self.config.confidence * sigma;
        (theta <= self.config.coverage_cap).then_some(theta)
    }
}

impl CorrelatorBackend for GameBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Game
    }

    fn upstream(&self) -> &Flow {
        &self.upstream
    }

    fn decode_options(&self) -> DecodeOptions {
        self.config.decode
    }

    fn decode(&self, suspicious: &Flow) -> Correlation {
        let stats = match self.config.decode.mode {
            DecodeMode::Strict => {
                order_consistent_stats(&self.upstream, suspicious, self.config.delta)
            }
            DecodeMode::Robust => robust_order_consistent_stats(
                &self.upstream,
                suspicious,
                self.config.delta,
                self.config.decode.erasure_budget,
            ),
        };
        let correlated = stats.observable >= self.config.min_observable.max(1)
            && self
                .coverage_threshold(&stats)
                .is_some_and(|theta| stats.coverage() >= theta);
        Correlation {
            correlated,
            hamming: None,
            best: None,
            cost: stats.accesses,
            matching_cost: stats.accesses,
            completed: true,
            robust: self
                .config
                .decode
                .is_robust()
                .then(|| RobustOutcome::from_match_stats(&stats)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_flow::Timestamp;

    fn regular_flow(n: usize, ipd_secs: f64, start_secs: f64) -> Flow {
        Flow::from_timestamps(
            (0..n)
                .map(|i| Timestamp::from_micros(((start_secs + i as f64 * ipd_secs) * 1e6) as i64)),
        )
        .unwrap()
    }

    #[test]
    fn delayed_copy_correlates() {
        let up = regular_flow(60, 1.0, 0.0);
        let down = up.shifted(TimeDelta::from_millis(400));
        let backend = GameBackend::bind(GameConfig::new(TimeDelta::from_secs(1)), &up);
        assert!(backend.decode(&down).correlated);
    }

    #[test]
    fn drifting_unrelated_flow_clears() {
        let up = regular_flow(80, 1.0, 0.0);
        let decoy = regular_flow(80, 1.07, 0.5);
        let backend = GameBackend::bind(GameConfig::new(TimeDelta::from_millis(300)), &up);
        assert!(!backend.decode(&decoy).correlated);
    }

    #[test]
    fn robust_decode_recovers_a_deleted_copy() {
        let up = regular_flow(60, 1.0, 0.0);
        // A 400ms-delayed copy with every 10th packet deleted.
        let down = Flow::from_timestamps(
            (0..60)
                .filter(|i| i % 10 != 3)
                .map(|i| Timestamp::from_micros(i * 1_000_000 + 400_000)),
        )
        .unwrap();
        let delta = TimeDelta::from_secs(1);
        let strict = GameBackend::bind(GameConfig::new(delta), &up);
        assert_eq!(strict.decode(&down).robust, None);
        let robust = GameBackend::bind(
            GameConfig::new(delta).with_decode(DecodeOptions::robust(8)),
            &up,
        );
        let outcome = robust.decode(&down);
        assert!(outcome.correlated, "{outcome}");
        let r = outcome.robust.expect("robust accounting");
        assert!(r.erasures > 0 && !r.budget_blown, "{r:?}");
    }

    #[test]
    fn robust_decode_still_clears_an_unrelated_flow() {
        let up = regular_flow(80, 1.0, 0.0);
        let decoy = regular_flow(80, 1.07, 0.5);
        let backend = GameBackend::bind(
            GameConfig::new(TimeDelta::from_millis(300)).with_decode(DecodeOptions::robust(4)),
            &up,
        );
        let outcome = backend.decode(&decoy);
        assert!(!outcome.correlated, "{outcome}");
        assert!(outcome.robust.expect("robust accounting").budget_blown);
    }

    #[test]
    fn saturated_channel_is_undecidable() {
        // Δ·rate ≈ 30: chance coverage ~1, no threshold under the cap
        // exists, so even the true pair must get an abstention — the
        // adversary owns this region of the game.
        let up = regular_flow(100, 0.1, 0.0);
        let down = up.shifted(TimeDelta::from_millis(40));
        let backend = GameBackend::bind(GameConfig::new(TimeDelta::from_secs(3)), &up);
        let stats = order_consistent_stats(&up, &down, TimeDelta::from_secs(3));
        assert_eq!(backend.coverage_threshold(&stats), None);
        assert!(!backend.decode(&down).correlated);
    }

    #[test]
    fn empty_and_tiny_windows_never_correlate() {
        let up = regular_flow(40, 1.0, 0.0);
        let backend = GameBackend::bind(GameConfig::new(TimeDelta::from_secs(1)), &up);
        assert!(!backend.decode(&Flow::new()).correlated);
        assert!(!backend.decode(&regular_flow(3, 1.0, 0.0)).correlated);
    }

    #[test]
    fn outcome_is_watermark_free_with_symmetric_costs() {
        let up = regular_flow(30, 1.0, 0.0);
        let backend = GameBackend::bind(GameConfig::new(TimeDelta::from_secs(1)), &up);
        let outcome = backend.decode(&up.shifted(TimeDelta::from_millis(200)));
        assert_eq!(outcome.hamming, None);
        assert_eq!(outcome.best, None);
        assert!(outcome.completed);
        assert_eq!(outcome.cost, outcome.matching_cost);
    }
}
