//! Backend identities: stable names shared by the CLI, metric labels
//! and the cluster's pure-data spec.

use serde::{Deserialize, Serialize};

/// Which correlator backend decodes a pair.
///
/// The name returned by [`name`](BackendKind::name) is a stable
/// identifier: `repro monitor --backend <name>` selects it, `/metrics`
/// labels per-backend series with it, and the cluster spec carries it
/// to worker processes as text.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The paper's best-watermark search (`stepstone-core`): brute
    /// force, Greedy, Greedy+ or Optimal over the embedded watermark.
    #[default]
    Paper,
    /// The Elices/Pérez-González IPD likelihood-ratio test
    /// (arXiv 1310.4577): passive, watermark-free.
    Elices,
    /// The game-theoretic minimax coverage linker (arXiv 1307.3136):
    /// passive, watermark-free.
    Game,
}

impl BackendKind {
    /// Every backend, in display order. Metric registration and the
    /// cross-backend experiment sweeps iterate this, so a new backend
    /// shows up everywhere by extending this list — no engine changes.
    pub const ALL: [BackendKind; 3] = [BackendKind::Paper, BackendKind::Elices, BackendKind::Game];

    /// The stable lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            BackendKind::Paper => "paper",
            BackendKind::Elices => "elices",
            BackendKind::Game => "game",
        }
    }

    /// A dense index into per-backend tables (`0..ALL.len()`).
    pub const fn index(self) -> usize {
        match self {
            BackendKind::Paper => 0,
            BackendKind::Elices => 1,
            BackendKind::Game => 2,
        }
    }

    /// Parses a stable name back into a kind.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownBackend`] (whose message lists the valid
    /// names) when `name` matches no backend.
    pub fn parse(name: &str) -> Result<Self, UnknownBackend> {
        BackendKind::ALL
            .into_iter()
            .find(|kind| kind.name() == name)
            .ok_or_else(|| UnknownBackend {
                input: name.to_string(),
            })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A backend name that parsed to nothing; its display lists the valid
/// names so a CLI can reject `--backend typo` helpfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The name that failed to parse.
    pub input: String,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend {:?} (valid: ", self.input)?;
        for (i, kind) in BackendKind::ALL.into_iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(kind.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownBackend {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        for (i, kind) in BackendKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn unknown_name_lists_the_valid_ones() {
        let err = BackendKind::parse("bogus").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"bogus\""), "{msg}");
        for kind in BackendKind::ALL {
            assert!(msg.contains(kind.name()), "{msg}");
        }
    }

    #[test]
    fn default_is_the_paper_backend() {
        assert_eq!(BackendKind::default(), BackendKind::Paper);
    }
}
