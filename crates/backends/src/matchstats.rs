//! The greedy order-consistent matching sweep shared by the passive
//! backends.

use stepstone_flow::{Flow, TimeDelta};

/// Summary statistics of the maximum order-consistent matching between
/// an upstream flow and a suspicious window under the timing constraint
/// `0 ≤ t′ − t ≤ Δ`.
///
/// "Observable" restricts the books to upstream packets whose entire
/// match window `[t, t + Δ]` lies inside the suspicious window's
/// observed time span: a true downstream packet of an observable
/// upstream packet *must* appear in the window (absent deletion), so
/// only observable packets can honestly be counted as misses. Packets
/// whose windows hang over either edge of the observation are excluded
/// from both `observable` and `misses` — which is what keeps
/// sliding-window prefix decodes consistent with full-flow decodes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatchStats {
    /// Order-consistent matches found, over all upstream packets.
    pub matched: usize,
    /// Matches whose upstream packet is observable.
    pub matched_observable: usize,
    /// Upstream packets whose full match window the suspicious span
    /// covers.
    pub observable: usize,
    /// Observable upstream packets left unmatched.
    pub misses: usize,
    /// Misses reclassified as deletion erasures by the robust sweep
    /// ([`robust_order_consistent_stats`]); always 0 under the strict
    /// sweep. Erased packets are excluded from both `observable` and
    /// `misses`, so `coverage` reads over the surviving packets only.
    pub erasures: usize,
    /// Packets in the suspicious window.
    pub suspicious_total: usize,
    /// The suspicious window's observed time span in seconds.
    pub span_secs: f64,
    /// Packet accesses charged for the sweep (one per pointer advance
    /// or candidate comparison, mirroring the matching-set meter).
    pub accesses: u64,
}

impl MatchStats {
    /// Matched fraction of the observable upstream packets, in
    /// `[0, 1]`; zero when nothing is observable.
    pub fn coverage(&self) -> f64 {
        if self.observable == 0 {
            0.0
        } else {
            self.matched_observable as f64 / self.observable as f64
        }
    }

    /// Suspicious packets left over after the matching: the chaff
    /// count under the downstream hypothesis.
    pub fn unmatched_suspicious(&self) -> usize {
        self.suspicious_total.saturating_sub(self.matched)
    }
}

/// Computes [`MatchStats`] with one forward two-pointer sweep.
///
/// Greedy earliest-match is a maximum matching here: all match windows
/// have the same length `Δ` and open in upstream order, so an exchange
/// argument shows taking the earliest feasible suspicious packet never
/// blocks a later upstream packet that some other assignment could
/// serve. Cost is `O(n + m)` comparisons, each charged to `accesses`.
///
/// Never panics; empty flows and a non-positive span produce zeroed
/// stats (with `span_secs` still reported for the degenerate window).
pub fn order_consistent_stats(upstream: &Flow, suspicious: &Flow, delta: TimeDelta) -> MatchStats {
    let mut stats = MatchStats {
        suspicious_total: suspicious.len(),
        span_secs: suspicious.duration().as_secs_f64(),
        ..MatchStats::default()
    };
    let (Some(first), Some(last)) = (suspicious.first(), suspicious.last()) else {
        return stats;
    };
    let span_lo = first.timestamp();
    let span_hi = last.timestamp();
    let m = suspicious.len();
    let mut j = 0usize;
    for i in 0..upstream.len() {
        let t = upstream.timestamp(i);
        let latest = t + delta;
        let observable = t >= span_lo && latest <= span_hi;
        if observable {
            stats.observable += 1;
        }
        // Packets before this window's open can't serve it — nor any
        // later window, since windows open in upstream order.
        while j < m && suspicious.timestamp(j) < t {
            stats.accesses += 1;
            j += 1;
        }
        stats.accesses += 1;
        if j < m && suspicious.timestamp(j) <= latest {
            stats.matched += 1;
            if observable {
                stats.matched_observable += 1;
            }
            // Consuming the match keeps the assignment order-consistent:
            // the next upstream packet must match strictly later.
            j += 1;
        } else if observable {
            stats.misses += 1;
        }
    }
    stats
}

/// The deletion-tolerant variant of [`order_consistent_stats`]: up to
/// `erasure_budget` observable misses are reclassified as erasures —
/// deleted packets charged to the lossy channel rather than held
/// against the downstream hypothesis.
///
/// The budget is what keeps the relaxation honest. A true relayed pair
/// on a lossy channel shows a *small* number of misses (one per deleted
/// packet), all absorbed by a budget sized to the expected loss; its
/// coverage over the surviving packets returns to ~1. An unrelated
/// flow misses *most* of its windows — far past any sane budget — so
/// after absorbing `erasure_budget` of them its coverage stays low and
/// every detector still rejects it. Blanket reclassification (no
/// budget) would hand decoys coverage 1 and destroy the false-positive
/// floor; see the `budget_bounds_decoy_absorption` test.
///
/// Never panics; inherits the strict sweep's tolerance of empty flows
/// and degenerate spans.
pub fn robust_order_consistent_stats(
    upstream: &Flow,
    suspicious: &Flow,
    delta: TimeDelta,
    erasure_budget: u32,
) -> MatchStats {
    let mut stats = order_consistent_stats(upstream, suspicious, delta);
    let absorbed = stats.misses.min(erasure_budget as usize);
    stats.erasures = absorbed;
    stats.misses -= absorbed;
    stats.observable -= absorbed;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_flow::Timestamp;

    fn flow(micros: &[i64]) -> Flow {
        Flow::from_timestamps(micros.iter().copied().map(Timestamp::from_micros)).unwrap()
    }

    #[test]
    fn empty_flows_are_zeroed() {
        let empty = Flow::new();
        let some = flow(&[0, 1_000_000]);
        let delta = TimeDelta::from_secs(1);
        assert_eq!(order_consistent_stats(&empty, &empty, delta).matched, 0);
        assert_eq!(order_consistent_stats(&some, &empty, delta).matched, 0);
        let s = order_consistent_stats(&empty, &some, delta);
        assert_eq!((s.matched, s.observable, s.misses), (0, 0, 0));
        assert_eq!(s.suspicious_total, 2);
    }

    #[test]
    fn identical_flows_fully_match() {
        let f = flow(&[0, 1_000_000, 2_500_000, 4_000_000]);
        let s = order_consistent_stats(&f, &f, TimeDelta::from_secs(1));
        assert_eq!(s.matched, 4);
        assert_eq!(s.misses, 0);
        // The last packet's window overhangs the span end.
        assert_eq!(s.observable, 3);
        assert_eq!(s.matched_observable, 3);
        assert_eq!(s.coverage(), 1.0);
    }

    #[test]
    fn shifted_copy_within_delta_fully_matches() {
        let up = flow(&[0, 1_000_000, 2_500_000, 4_000_000, 6_000_000]);
        let down = up.shifted(TimeDelta::from_millis(700));
        let s = order_consistent_stats(&up, &down, TimeDelta::from_secs(1));
        assert_eq!(s.matched, up.len());
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn disjoint_flows_miss_everything_observable() {
        let up = flow(&[0, 1_000_000, 2_000_000]);
        // Suspicious span covers the upstream windows but every packet
        // sits just outside each window.
        let down = flow(&[-500_000, 1_800_000, 3_900_000]);
        let s = order_consistent_stats(&up, &down, TimeDelta::from_millis(500));
        // Window [1.0s, 1.5s] is inside [-0.5s, 3.9s] and unserved
        // (1.8s > 1.5s); window [2.0s, 2.5s] likewise.
        assert_eq!(s.observable, 3);
        assert!(s.misses >= 2, "{s:?}");
        assert!(s.coverage() < 0.5, "{s:?}");
    }

    #[test]
    fn chaff_never_reduces_the_matching() {
        let up = flow(&[0, 1_000_000, 2_500_000, 4_000_000]);
        let clean = up.shifted(TimeDelta::from_millis(300));
        // Interleave chaff between the true matches.
        let chaffed = flow(&[
            100_000, 300_000, 900_000, 1_300_000, 2_100_000, 2_800_000, 3_500_000, 4_300_000,
            4_700_000,
        ]);
        let delta = TimeDelta::from_secs(1);
        let clean_stats = order_consistent_stats(&up, &clean, delta);
        let chaffed_stats = order_consistent_stats(&up, &chaffed, delta);
        assert!(chaffed_stats.matched >= clean_stats.matched);
        assert_eq!(chaffed_stats.misses, 0);
    }

    #[test]
    fn order_consistency_consumes_forward_only() {
        // One suspicious packet serves two overlapping windows at most
        // once.
        let up = flow(&[0, 100_000]);
        let down = flow(&[150_000]);
        let s = order_consistent_stats(&up, &down, TimeDelta::from_secs(1));
        assert_eq!(s.matched, 1);
    }

    #[test]
    fn robust_sweep_absorbs_deletion_misses_within_budget() {
        let up = flow(&[0, 1_000_000, 2_000_000, 3_000_000, 4_000_000, 6_000_000]);
        // A 300ms-delayed copy with packets 1 and 3 deleted.
        let down = flow(&[300_000, 2_300_000, 4_300_000, 6_300_000]);
        let delta = TimeDelta::from_secs(1);
        let strict = order_consistent_stats(&up, &down, delta);
        assert_eq!(strict.erasures, 0);
        assert_eq!(strict.misses, 2);
        assert!(strict.coverage() < 1.0);
        let robust = robust_order_consistent_stats(&up, &down, delta, 4);
        assert_eq!(robust.erasures, 2);
        assert_eq!(robust.misses, 0);
        assert_eq!(robust.coverage(), 1.0, "{robust:?}");
        assert_eq!(robust.matched, strict.matched);
        assert_eq!(robust.observable, strict.observable - 2);
    }

    #[test]
    fn budget_bounds_decoy_absorption() {
        let up = flow(&[0, 1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000]);
        // Every window observable, every window missed.
        let down = flow(&[-500_000, 6_900_000]);
        let delta = TimeDelta::from_millis(500);
        let strict = order_consistent_stats(&up, &down, delta);
        assert_eq!(strict.misses, 6);
        let robust = robust_order_consistent_stats(&up, &down, delta, 2);
        assert_eq!(robust.erasures, 2);
        assert_eq!(robust.misses, 4, "misses past the budget survive");
        assert!(robust.coverage() < 0.5, "{robust:?}");
    }

    #[test]
    fn zero_budget_robust_sweep_equals_strict() {
        let up = flow(&[0, 1_000_000, 2_500_000, 4_000_000]);
        let down = flow(&[300_000, 2_800_000]);
        let delta = TimeDelta::from_secs(1);
        assert_eq!(
            robust_order_consistent_stats(&up, &down, delta, 0),
            order_consistent_stats(&up, &down, delta)
        );
    }

    #[test]
    fn accesses_are_charged_linearly() {
        let up = flow(&[0, 1_000_000, 2_000_000, 3_000_000]);
        let down = up.shifted(TimeDelta::from_millis(100));
        let s = order_consistent_stats(&up, &down, TimeDelta::from_secs(1));
        assert!(s.accesses >= up.len() as u64);
        assert!(s.accesses <= (up.len() + down.len() + up.len()) as u64);
    }
}
