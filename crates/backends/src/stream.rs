//! Cost accounting carried across one pair's incremental decodes.

use crate::Correlation;

/// Accumulated accounting for one (upstream, suspicious) pair's
/// streaming decode history, fed by
/// [`CorrelatorBackend::decode_stream`](crate::CorrelatorBackend::decode_stream).
///
/// The online monitor re-decodes a pair every `decode_batch` new
/// packets; this state answers "what did that cost in total" — decodes
/// run, packet accesses billed, the widest window decoded — and whether
/// any decode in the history correlated (the latched verdict the
/// engine's terminal `Correlated` mirrors).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StreamState {
    decodes: u64,
    accesses: u64,
    peak_window: usize,
    latched: bool,
}

impl StreamState {
    /// Fresh state: nothing decoded yet.
    pub fn new() -> Self {
        StreamState::default()
    }

    /// Records one completed decode over a window of `window_len`
    /// packets. Billing follows the engine's convention: `cost` plus
    /// `matching_cost` (the matching phase is billed separately for
    /// Greedy and included for everyone else; summing both is the
    /// upper bound the monitor reports on its verdicts).
    pub fn record(&mut self, outcome: &Correlation, window_len: usize) {
        self.decodes += 1;
        self.accesses = self
            .accesses
            .saturating_add(outcome.cost)
            .saturating_add(outcome.matching_cost);
        self.peak_window = self.peak_window.max(window_len);
        self.latched |= outcome.correlated;
    }

    /// Decodes recorded so far.
    pub const fn decodes(&self) -> u64 {
        self.decodes
    }

    /// Total packet accesses billed across the recorded decodes.
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The largest window decoded so far, in packets.
    pub const fn peak_window(&self) -> usize {
        self.peak_window
    }

    /// `true` once any recorded decode correlated — the pair's latched
    /// terminal verdict.
    pub const fn latched(&self) -> bool {
        self.latched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_latches() {
        let mut state = StreamState::new();
        let negative = Correlation::unmatched(5, 3);
        state.record(&negative, 10);
        assert_eq!(state.decodes(), 1);
        assert_eq!(state.accesses(), 8);
        assert_eq!(state.peak_window(), 10);
        assert!(!state.latched());

        let positive = Correlation {
            correlated: true,
            hamming: None,
            best: None,
            cost: 7,
            matching_cost: 7,
            completed: true,
            robust: None,
        };
        state.record(&positive, 6);
        assert_eq!(state.decodes(), 2);
        assert_eq!(state.accesses(), 22);
        assert_eq!(state.peak_window(), 10, "peak keeps the widest window");
        assert!(state.latched());

        state.record(&negative, 4);
        assert!(state.latched(), "latched verdicts stay latched");
    }
}
