//! Corrupt-input hardening: whatever bytes arrive, the capture reader
//! returns `IngestError` — it never panics and never loops forever.

use proptest::prelude::*;
use stepstone_flow::{Flow, FlowBuilder, Packet, Timestamp};
use stepstone_ingest::{parse_capture, read_capture, write_flows, FiveTuple, IngestError};

fn sample_capture() -> Vec<u8> {
    let mut b = FlowBuilder::new();
    for i in 0..16i64 {
        let micros = i * 250_000;
        b.push(Packet::new(Timestamp::from_micros(micros), 64))
            .unwrap();
    }
    let flow: Flow = b.finish();
    let tuple = FiveTuple::udp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 4001);
    let mut bytes = Vec::new();
    write_flows(&mut bytes, &[(tuple, &flow)]).unwrap();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes: error or parse, never panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        match parse_capture(&bytes) {
            Ok(iter) => {
                // Bound the walk: a structural error fuses the iterator,
                // so this always terminates.
                let _ = iter.collect::<Result<Vec<_>, _>>();
            }
            Err(
                IngestError::BadMagic
                | IngestError::Truncated { .. }
                | IngestError::Malformed { .. }
                | IngestError::UnsupportedLinkType(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// Single-byte corruption of a valid capture: error or a different
    /// (possibly shorter) record list, never a panic.
    #[test]
    fn corrupted_captures_never_panic(pos in 0usize..1304, pattern in 1u8..=255) {
        let mut bytes = sample_capture();
        let pos = pos % bytes.len();
        bytes[pos] ^= pattern;
        let _ = read_capture(bytes.as_slice());
    }

    /// Truncation at every point: error or a clean prefix of records.
    #[test]
    fn truncated_captures_never_panic(cut in 0usize..1305) {
        let bytes = sample_capture();
        let cut = cut.min(bytes.len());
        if let Ok(iter) = parse_capture(&bytes[..cut]) {
            if let Ok(records) = iter.collect::<Result<Vec<_>, _>>() {
                // Clean cuts land on record boundaries: 24-byte
                // header plus 16 + 64 bytes per UDP frame record.
                prop_assert_eq!((cut - 24) % 80, 0);
                prop_assert_eq!(records.len(), (cut - 24) / 80);
            }
        }
    }
}
