//! Satellite properties for the wire round-trip:
//!
//! 1. `Flow → PcapWriter → parse_capture → FlowDemux` preserves packet
//!    count, order, sizes and microsecond timestamps, for arbitrary
//!    flows and arbitrary cross-flow interleavings.
//! 2. Streaming a round-tripped capture through the monitor yields the
//!    same verdicts as batch-decoding the same flows offline.

use proptest::prelude::*;
use rand::Rng;
use stepstone_adversary::{AdversaryPipeline, ChaffInjector, ChaffModel, UniformPerturbation};
use stepstone_core::{Algorithm, WatermarkCorrelator};
use stepstone_flow::{Flow, FlowBuilder, Packet, TimeDelta, Timestamp};
use stepstone_ingest::{
    parse_capture, replay_capture, write_flows, FiveTuple, FlowDemux, ReplayClock,
};
use stepstone_monitor::{Monitor, MonitorConfig, UpstreamId, Verdict};
use stepstone_traffic::Seed;
use stepstone_watermark::{IpdWatermarker, Watermark, WatermarkKey, WatermarkParams};

/// A distinct UDP 5-tuple per flow index.
fn tuple(i: usize) -> FiveTuple {
    FiveTuple::udp_v4([10, 9, 0, i as u8], 41_000 + i as u16, [192, 0, 2, 7], 9)
}

/// Builds a flow from (start, deltas, sizes); sizes are clamped to the
/// 42-byte Ethernet/IPv4/UDP minimum so frames can carry them.
fn flow_from_parts(start: i64, steps: &[(u32, u16)]) -> Flow {
    let mut b = FlowBuilder::new();
    let mut t = start;
    for &(delta, size) in steps {
        t += i64::from(delta);
        let size = u32::from(size.max(42));
        b.push(Packet::new(Timestamp::from_micros(t), size))
            .expect("deltas are non-negative");
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pcap_roundtrip_preserves_flows(
        flows in proptest::collection::vec(
            (
                0i64..1_000_000,
                proptest::collection::vec((0u32..2_000_000, 42u16..1400), 1..60),
            ),
            1..5,
        ),
    ) {
        let built: Vec<(FiveTuple, Flow)> = flows
            .iter()
            .enumerate()
            .map(|(i, (start, steps))| (tuple(i), flow_from_parts(*start, steps)))
            .collect();
        let tagged: Vec<(FiveTuple, &Flow)> = built.iter().map(|(t, f)| (*t, f)).collect();
        let mut bytes = Vec::new();
        let written = write_flows(&mut bytes, &tagged).unwrap();
        let total: usize = built.iter().map(|(_, f)| f.len()).sum();
        prop_assert_eq!(written as usize, total);

        let mut demux = FlowDemux::new();
        for record in parse_capture(&bytes).unwrap() {
            demux.push(&record.unwrap());
        }
        let (demuxed, stats) = demux.finish();
        prop_assert_eq!(stats.packets as usize, total);
        prop_assert_eq!(stats.ignored, 0);
        prop_assert_eq!(stats.clamped, 0);
        prop_assert_eq!(demuxed.len(), built.len());

        // Match flows back up by tuple: count, order, µs timestamps and
        // sizes must all survive the round-trip exactly.
        for (t, original) in &built {
            let back = demuxed
                .iter()
                .find(|d| d.tuple == *t)
                .expect("every flow demuxes back out");
            prop_assert_eq!(back.flow.len(), original.len());
            prop_assert_eq!(back.flow.timestamps(), original.timestamps());
            let sizes: Vec<u32> = back.flow.iter().map(|p| p.size()).collect();
            let expected: Vec<u32> = original.iter().map(|p| p.size()).collect();
            prop_assert_eq!(sizes, expected);
        }
    }
}

/// A cheap 4-bit scheme so each decode stays fast.
fn tiny_params() -> WatermarkParams {
    WatermarkParams {
        bits: 4,
        redundancy: 1,
        offset: 1,
        adjustment: TimeDelta::from_millis(800),
        threshold: 1,
    }
}

/// A deterministic irregular flow (64-byte payload packets).
fn seeded_flow(seed: u64) -> Flow {
    let mut rng = Seed::new(seed).rng(0);
    let mut t = 0i64;
    let packets = (0..120).map(|_| {
        t += rng.gen_range(50_000..2_000_000);
        Timestamp::from_micros(t)
    });
    Flow::from_timestamps(packets).unwrap()
}

#[test]
fn streaming_roundtripped_pcap_matches_batch_decode() {
    for seed in [3u64, 17, 2005] {
        let delta = TimeDelta::from_secs(3);
        let original = seeded_flow(seed);
        let marker = IpdWatermarker::new(WatermarkKey::new(seed ^ 77), tiny_params());
        let watermark = Watermark::random(4, &mut WatermarkKey::new(seed).rng(1));
        let marked = marker.embed(&original, &watermark).unwrap();
        let attack = |base: &Flow, salt: u64| {
            AdversaryPipeline::new()
                .then(UniformPerturbation::new(delta))
                .then(ChaffInjector::new(ChaffModel::Poisson { rate: 1.0 }))
                .apply(base, Seed::new(seed ^ salt))
        };
        let downstream = attack(&marked, 0xA);
        let decoy = attack(&seeded_flow(seed ^ 0xDEAD), 0xB);

        let correlator = WatermarkCorrelator::new(marker, watermark, delta, Algorithm::GreedyPlus);
        let prepared = correlator.prepare(&original, &marked).unwrap();

        let mut bytes = Vec::new();
        write_flows(&mut bytes, &[(tuple(0), &downstream), (tuple(1), &decoy)]).unwrap();

        // Window big enough for either flow and one flush decode per
        // pair: the regime where streaming must equal batch.
        let mut monitor = Monitor::new(
            MonitorConfig::default()
                .with_window_capacity(downstream.len().max(decoy.len()))
                .with_decode_batch(usize::MAX),
        );
        monitor.register_upstream(UpstreamId(0), correlator.bind(&original, &marked).unwrap());
        let outcome = replay_capture(&bytes, monitor, ReplayClock::Fast, None).unwrap();
        assert_eq!(outcome.rejected, 0, "seed {seed}: capture is in order");
        assert_eq!(outcome.flows.len(), 2, "seed {seed}");

        // Batch-decode the *demuxed* flows and compare each pair's
        // terminal verdict against the offline correlator.
        for demuxed in &outcome.flows {
            let expect = prepared.correlate(&demuxed.flow);
            let verdicts: Vec<&Verdict> = outcome
                .verdicts
                .iter()
                .filter(|v| v.pair().is_some_and(|p| p.flow == demuxed.id))
                .collect();
            assert_eq!(verdicts.len(), 1, "seed {seed}: one terminal verdict");
            match *verdicts[0] {
                Verdict::Correlated { hamming, .. } => {
                    assert!(expect.correlated, "seed {seed}");
                    assert_eq!(Some(hamming), expect.hamming, "seed {seed}");
                }
                Verdict::Cleared { hamming, .. } => {
                    assert!(!expect.correlated, "seed {seed}");
                    assert_eq!(hamming, expect.hamming, "seed {seed}");
                }
                Verdict::Evicted { .. } => panic!("seed {seed}: no eviction configured"),
                Verdict::Degraded { .. } => panic!("seed {seed}: no chaos configured"),
            }
        }
        // And the true downstream is the correlated one.
        let true_tuple = tuple(0);
        let true_id = outcome
            .flows
            .iter()
            .find(|f| f.tuple == true_tuple)
            .unwrap()
            .id;
        assert!(outcome.verdicts.iter().any(|v| matches!(
            v,
            Verdict::Correlated { pair, .. } if pair.flow == true_id
        )));
    }
}
