//! Capture replay: streams a parsed capture through the monitor
//! engine, pacing delivery with a [`ReplayClock`].
//!
//! This is the glue between the wire formats and the online
//! correlation engine: `pcap bytes → demux → (paced) monitor ingest →
//! verdict stream`. The same demux output is also returned in batch
//! form so callers can compare streaming verdicts against offline
//! decoding of the very same flows.

use std::time::{Duration, Instant};

use stepstone_flow::TimeDelta;
use stepstone_monitor::{Monitor, MonitorStats, Verdict};

use crate::capture::parse_capture;
use crate::clock::ReplayClock;
use crate::demux::{DemuxFlow, DemuxStats, FlowDemux};
use crate::error::IngestError;

/// How often (in packets) the replay loop drains verdicts and sweeps
/// idle flows. Small enough to keep the verdict buffer shallow, large
/// enough not to dominate the hot loop.
const HOUSEKEEPING_EVERY: u64 = 256;

/// Everything a capture replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Verdicts in emission order: those drained during streaming
    /// followed by the terminal flush from `Monitor::finish`.
    pub verdicts: Vec<Verdict>,
    /// Final monitor counters.
    pub monitor_stats: MonitorStats,
    /// Demultiplexer counters.
    pub demux_stats: DemuxStats,
    /// Every flow the demux completed, sorted by flow id — the batch
    /// view of the same packets the monitor saw incrementally.
    pub flows: Vec<DemuxFlow>,
    /// Ingest events delivered to the monitor.
    pub events: u64,
    /// Events the monitor rejected as out-of-order.
    pub rejected: u64,
    /// Wall-clock duration of the replay loop.
    pub elapsed: Duration,
}

/// Replays a capture through `monitor`, consuming it.
///
/// Packets are demultiplexed into flows in file order and fed to the
/// engine under `clock` pacing. When `idle_timeout` is set, both the
/// demux and the monitor evict flows that stay quiet for longer than
/// the timeout (the monitor additionally needs its own
/// `MonitorConfig::with_idle_timeout` for eviction verdicts).
///
/// # Errors
///
/// Any [`IngestError`] from parsing `bytes`; packets ingested before
/// the error are part of the monitor's state, but no outcome is
/// returned.
pub fn replay_capture(
    bytes: &[u8],
    mut monitor: Monitor,
    clock: ReplayClock,
    idle_timeout: Option<TimeDelta>,
) -> Result<ReplayOutcome, IngestError> {
    let started = Instant::now();
    let mut demux = match idle_timeout {
        Some(t) => FlowDemux::with_idle_timeout(t),
        None => FlowDemux::new(),
    };
    // Demux and replay counters publish into the engine's registry, so
    // one `/metrics` endpoint covers the whole pipeline.
    let registry = monitor.registry();
    demux.bind_registry(&registry);
    let events_total = registry.counter(
        "ingest_replay_events_total",
        "Ingest events delivered to the monitor by the replay loop",
    );
    let rejected_total = registry.counter(
        "ingest_replay_rejected_total",
        "Replay events the monitor rejected as out-of-order",
    );
    let mut verdicts = Vec::new();
    let mut events = 0u64;
    let mut rejected = 0u64;
    let mut pacer = None;
    for record in parse_capture(bytes)? {
        let record = record?;
        let pacer = pacer.get_or_insert_with(|| clock.pacer(record.timestamp));
        pacer.wait_until(record.timestamp);
        if let Some((flow, packet)) = demux.push(&record) {
            if !monitor.ingest(flow, packet) {
                rejected += 1;
                rejected_total.inc();
            }
            events += 1;
            events_total.inc();
            if events.is_multiple_of(HOUSEKEEPING_EVERY) {
                demux.sweep_idle(record.timestamp);
                monitor.evict_idle(record.timestamp);
                verdicts.extend(monitor.drain_verdicts());
            }
        }
    }
    let (flows, demux_stats) = demux.finish();
    let report = monitor.finish();
    verdicts.extend(report.verdicts);
    Ok(ReplayOutcome {
        verdicts,
        monitor_stats: report.stats,
        demux_stats,
        flows,
        events,
        rejected,
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_flow::{Flow, FlowBuilder, Timestamp};
    use stepstone_monitor::{FlowId, MonitorConfig};

    use crate::link::FiveTuple;
    use crate::pcap::write_flows;

    /// A deterministic no-watermark monitor: replay should still demux
    /// and account for every packet even with nothing registered.
    #[test]
    fn replay_accounts_for_every_packet() {
        let tuple_a = FiveTuple::tcp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 22);
        let tuple_b = FiveTuple::udp_v4([10, 0, 0, 3], 4001, [10, 0, 0, 2], 53);
        let flow = |offset: i64| -> Flow {
            let mut b = FlowBuilder::new();
            for i in 0..40 {
                let micros = offset + i * 10_000;
                b.push(stepstone_flow::Packet::new(
                    Timestamp::from_micros(micros),
                    64,
                ))
                .unwrap();
            }
            b.finish()
        };
        let fa = flow(0);
        let fb = flow(5_000);
        let mut bytes = Vec::new();
        write_flows(&mut bytes, &[(tuple_a, &fa), (tuple_b, &fb)]).unwrap();

        let monitor = Monitor::new(MonitorConfig::default());
        let outcome = replay_capture(&bytes, monitor, ReplayClock::Fast, None).unwrap();
        assert_eq!(outcome.events, 80);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.monitor_stats.packets_ingested, 80);
        assert_eq!(outcome.flows.len(), 2);
        assert_eq!(outcome.flows[0].id, FlowId(0));
        assert_eq!(outcome.flows[0].flow.timestamps(), fa.timestamps());
        assert_eq!(outcome.flows[1].flow.timestamps(), fb.timestamps());
        assert_eq!(outcome.demux_stats.packets, 80);
        assert!(outcome.verdicts.is_empty(), "no upstreams registered");
    }

    #[test]
    fn replay_surfaces_parse_errors() {
        let monitor = Monitor::new(MonitorConfig::default());
        let err = replay_capture(b"garbage", monitor, ReplayClock::Fast, None);
        assert!(matches!(err, Err(IngestError::BadMagic)));
    }
}
