//! Capture replay: streams a parsed capture through the monitor
//! engine, pacing delivery with a [`ReplayClock`].
//!
//! This is the glue between the wire formats and the online
//! correlation engine: `pcap bytes → demux → (paced) monitor ingest →
//! verdict stream`. The same demux output is also returned in batch
//! form so callers can compare streaming verdicts against offline
//! decoding of the very same flows.

use std::time::{Duration, Instant};

use stepstone_flow::{Packet, TimeDelta};
use stepstone_monitor::{FlowId, Monitor, MonitorStats, Verdict};

use crate::capture::{parse_capture, CaptureRecord};
use crate::clock::ReplayClock;
use crate::demux::{DemuxFlow, DemuxStats, FlowDemux};
use crate::error::IngestError;

/// How often (in packets) the replay loop drains verdicts and sweeps
/// idle flows. Small enough to keep the verdict buffer shallow, large
/// enough not to dominate the hot loop.
const HOUSEKEEPING_EVERY: u64 = 256;

/// Everything a capture replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Verdicts in emission order: those drained during streaming
    /// followed by the terminal flush from `Monitor::finish`.
    pub verdicts: Vec<Verdict>,
    /// Final monitor counters.
    pub monitor_stats: MonitorStats,
    /// Demultiplexer counters.
    pub demux_stats: DemuxStats,
    /// Every flow the demux completed, sorted by flow id — the batch
    /// view of the same packets the monitor saw incrementally.
    pub flows: Vec<DemuxFlow>,
    /// Ingest events delivered to the monitor.
    pub events: u64,
    /// Events the monitor rejected as out-of-order.
    pub rejected: u64,
    /// Wall-clock duration of the replay loop.
    pub elapsed: Duration,
    /// The record error that ended the stream early, if any. A damaged
    /// capture tail stops *reading* but not the pipeline: everything
    /// ingested before the error is still correlated, flushed, and
    /// accounted in the stats above.
    pub stream_error: Option<IngestError>,
}

/// Replays a capture through `monitor`, consuming it.
///
/// Packets are demultiplexed into flows in file order and fed to the
/// engine under `clock` pacing. When `idle_timeout` is set, both the
/// demux and the monitor evict flows that stay quiet for longer than
/// the timeout (the monitor additionally needs its own
/// `MonitorConfig::with_idle_timeout` for eviction verdicts).
///
/// # Errors
///
/// Any [`IngestError`] from parsing the capture *header* of `bytes` —
/// a wrong file format is the caller's bug. A record error *mid-stream*
/// (a damaged tail) is graceful instead: the replay stops reading,
/// finishes the pipeline, and reports the error in
/// [`ReplayOutcome::stream_error`].
pub fn replay_capture(
    bytes: &[u8],
    monitor: Monitor,
    clock: ReplayClock,
    idle_timeout: Option<TimeDelta>,
) -> Result<ReplayOutcome, IngestError> {
    let records = parse_capture(bytes)?;
    Ok(replay_records_with(
        records,
        monitor,
        clock,
        idle_timeout,
        |flow, packet, out| out.push((flow, packet)),
    ))
}

/// Replays a capture-record stream through `monitor` with a caller
/// event map between the demux and the engine, consuming the monitor.
///
/// This is the fault-injection seam the `stepstone-chaos` crate plugs
/// into from both sides: `records` can be any fused record iterator
/// (e.g. a wire-fault adapter around a pcap reader), and `map`
/// transforms each demuxed `(flow, packet)` event into the deliveries
/// the engine should actually see — possibly none (deletion), possibly
/// several (chaff bursts) — appended to the scratch vector in delivery
/// order. The identity map is `|flow, packet, out| out.push((flow,
/// packet))`.
///
/// Record errors mid-stream end the stream gracefully (see
/// [`ReplayOutcome::stream_error`]); the monitor is always finished and
/// its books always balance.
pub fn replay_records_with<I, M>(
    records: I,
    mut monitor: Monitor,
    clock: ReplayClock,
    idle_timeout: Option<TimeDelta>,
    mut map: M,
) -> ReplayOutcome
where
    I: Iterator<Item = Result<CaptureRecord, IngestError>>,
    M: FnMut(FlowId, Packet, &mut Vec<(FlowId, Packet)>),
{
    let started = Instant::now();
    let mut demux = match idle_timeout {
        Some(t) => FlowDemux::with_idle_timeout(t),
        None => FlowDemux::new(),
    };
    // Demux and replay counters publish into the engine's registry, so
    // one `/metrics` endpoint covers the whole pipeline.
    let registry = monitor.registry();
    demux.bind_registry(&registry);
    // conserve(replay_delivery): events_total, rejected_total, stream_errors_total
    let events_total = registry.counter(
        "ingest_replay_events_total",
        "Ingest events delivered to the monitor by the replay loop",
    );
    let rejected_total = registry.counter(
        "ingest_replay_rejected_total",
        "Replay events the monitor rejected as out-of-order",
    );
    let stream_errors_total = registry.counter(
        "ingest_replay_stream_errors_total",
        "Replays ended early by a mid-stream record error",
    );
    let mut verdicts = Vec::new();
    let mut events = 0u64;
    let mut rejected = 0u64;
    let mut pacer = None;
    let mut stream_error = None;
    let mut deliveries: Vec<(FlowId, Packet)> = Vec::new();
    for record in records {
        let record = match record {
            Ok(record) => record,
            Err(e) => {
                stream_errors_total.inc();
                stream_error = Some(e);
                break;
            }
        };
        let pacer = pacer.get_or_insert_with(|| clock.pacer(record.timestamp));
        pacer.wait_until(record.timestamp);
        if let Some((flow, packet)) = demux.push(&record) {
            deliveries.clear();
            map(flow, packet, &mut deliveries);
            for &(flow, packet) in &deliveries {
                if !monitor.ingest(flow, packet) {
                    rejected += 1;
                    rejected_total.inc();
                }
                events += 1;
                events_total.inc();
                if events.is_multiple_of(HOUSEKEEPING_EVERY) {
                    demux.sweep_idle(record.timestamp);
                    monitor.evict_idle(record.timestamp);
                    verdicts.extend(monitor.drain_verdicts());
                }
            }
        }
    }
    let (flows, demux_stats) = demux.finish();
    let report = monitor.finish();
    verdicts.extend(report.verdicts);
    ReplayOutcome {
        verdicts,
        monitor_stats: report.stats,
        demux_stats,
        flows,
        events,
        rejected,
        elapsed: started.elapsed(),
        stream_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stepstone_flow::{Flow, FlowBuilder, Timestamp};
    use stepstone_monitor::{FlowId, MonitorConfig};

    use crate::link::FiveTuple;
    use crate::pcap::write_flows;

    /// A deterministic no-watermark monitor: replay should still demux
    /// and account for every packet even with nothing registered.
    #[test]
    fn replay_accounts_for_every_packet() {
        let tuple_a = FiveTuple::tcp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 22);
        let tuple_b = FiveTuple::udp_v4([10, 0, 0, 3], 4001, [10, 0, 0, 2], 53);
        let flow = |offset: i64| -> Flow {
            let mut b = FlowBuilder::new();
            for i in 0..40 {
                let micros = offset + i * 10_000;
                b.push(stepstone_flow::Packet::new(
                    Timestamp::from_micros(micros),
                    64,
                ))
                .unwrap();
            }
            b.finish()
        };
        let fa = flow(0);
        let fb = flow(5_000);
        let mut bytes = Vec::new();
        write_flows(&mut bytes, &[(tuple_a, &fa), (tuple_b, &fb)]).unwrap();

        let monitor = Monitor::new(MonitorConfig::default());
        let outcome = replay_capture(&bytes, monitor, ReplayClock::Fast, None).unwrap();
        assert_eq!(outcome.events, 80);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.monitor_stats.packets_ingested, 80);
        assert_eq!(outcome.flows.len(), 2);
        assert_eq!(outcome.flows[0].id, FlowId(0));
        assert_eq!(outcome.flows[0].flow.timestamps(), fa.timestamps());
        assert_eq!(outcome.flows[1].flow.timestamps(), fb.timestamps());
        assert_eq!(outcome.demux_stats.packets, 80);
        assert!(outcome.verdicts.is_empty(), "no upstreams registered");
    }

    #[test]
    fn replay_surfaces_parse_errors() {
        let monitor = Monitor::new(MonitorConfig::default());
        let err = replay_capture(b"garbage", monitor, ReplayClock::Fast, None);
        assert!(matches!(err, Err(IngestError::BadMagic)));
    }

    /// A damaged capture *tail* must not abort the pipeline: everything
    /// before the error is replayed, finished, and accounted; the error
    /// itself is reported in the outcome.
    #[test]
    fn mid_stream_record_error_is_graceful() {
        let tuple = FiveTuple::tcp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 22);
        let mut b = FlowBuilder::new();
        for i in 0..20 {
            b.push(stepstone_flow::Packet::new(
                Timestamp::from_micros(i * 10_000),
                64,
            ))
            .unwrap();
        }
        let flow = b.finish();
        let mut bytes = Vec::new();
        write_flows(&mut bytes, &[(tuple, &flow)]).unwrap();
        // A partial record header: the reader runs out mid-record.
        bytes.extend_from_slice(&[0x01, 0x02, 0x03]);

        let monitor = Monitor::new(MonitorConfig::default());
        let outcome = replay_capture(&bytes, monitor, ReplayClock::Fast, None).unwrap();
        assert!(
            matches!(outcome.stream_error, Some(IngestError::Truncated { .. })),
            "got {:?}",
            outcome.stream_error
        );
        assert_eq!(outcome.events, 20, "packets before the damage all land");
        assert_eq!(outcome.monitor_stats.packets_ingested, 20);
        assert_eq!(outcome.flows.len(), 1);
    }

    /// The event-map seam: deletions shrink and injections grow the
    /// delivery stream, and the replay counts *deliveries*, not demux
    /// events.
    #[test]
    fn event_map_rewrites_the_delivery_stream() {
        let tuple = FiveTuple::tcp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 22);
        let mut b = FlowBuilder::new();
        for i in 0..10 {
            b.push(stepstone_flow::Packet::new(
                Timestamp::from_micros(i * 10_000),
                64,
            ))
            .unwrap();
        }
        let flow = b.finish();
        let mut bytes = Vec::new();
        write_flows(&mut bytes, &[(tuple, &flow)]).unwrap();

        let monitor = Monitor::new(MonitorConfig::default());
        let mut seen = 0u64;
        let outcome = replay_records_with(
            parse_capture(&bytes).unwrap(),
            monitor,
            ReplayClock::Fast,
            None,
            |flow, packet, out| {
                seen += 1;
                if seen.is_multiple_of(2) {
                    return; // delete every second event
                }
                out.push((flow, packet));
                // ...and chaff right behind each survivor.
                out.push((
                    flow,
                    stepstone_flow::Packet::chaff(
                        packet.timestamp() + TimeDelta::from_micros(1),
                        48,
                    ),
                ));
            },
        );
        assert_eq!(seen, 10, "the map sees every demuxed event");
        assert_eq!(outcome.events, 10, "5 deleted, 5 survivors doubled");
        assert_eq!(outcome.monitor_stats.packets_ingested, 10);
        assert!(outcome.stream_error.is_none());
    }
}
