//! Classic libpcap format: reader (both endiannesses, microsecond and
//! nanosecond magic) and writer (little-endian, microsecond).
//!
//! Layout: a 24-byte global header (magic, version, timezone, sigfigs,
//! snaplen, linktype) followed by packet records of a 16-byte header
//! (seconds, sub-seconds, captured length, original length) plus the
//! captured bytes.

use std::io::Write;

use stepstone_flow::{Flow, Timestamp};

use crate::capture::CaptureRecord;
use crate::cursor::{Cursor, Endian};
use crate::error::IngestError;
use crate::link::{build_frame, decode_frame, min_frame_len, FiveTuple, LinkType};

/// Microsecond-resolution magic, as written natively.
const MAGIC_MICROS: u32 = 0xA1B2_C3D4;
/// Nanosecond-resolution magic (introduced by libpcap 1.5).
const MAGIC_NANOS: u32 = 0xA1B2_3C4D;
/// `MAGIC_MICROS` as seen when the writer had the opposite byte order.
const MAGIC_MICROS_SWAPPED: u32 = MAGIC_MICROS.swap_bytes();
/// `MAGIC_NANOS` as seen when the writer had the opposite byte order.
const MAGIC_NANOS_SWAPPED: u32 = MAGIC_NANOS.swap_bytes();

/// Sub-second timestamp resolution of a classic pcap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    Micros,
    Nanos,
}

/// Pull-parser over a classic pcap byte buffer.
#[derive(Debug)]
pub(crate) struct PcapParser<'a> {
    cur: Cursor<'a>,
    endian: Endian,
    resolution: Resolution,
    link: LinkType,
}

impl<'a> PcapParser<'a> {
    /// Parses the global header.
    pub(crate) fn new(bytes: &'a [u8]) -> Result<Self, IngestError> {
        let mut cur = Cursor::new(bytes);
        let raw_magic = cur.u32(Endian::Little, "pcap magic")?;
        let (endian, resolution) = match raw_magic {
            MAGIC_MICROS => (Endian::Little, Resolution::Micros),
            MAGIC_NANOS => (Endian::Little, Resolution::Nanos),
            MAGIC_MICROS_SWAPPED => (Endian::Big, Resolution::Micros),
            MAGIC_NANOS_SWAPPED => (Endian::Big, Resolution::Nanos),
            _ => return Err(IngestError::BadMagic),
        };
        cur.u16(endian, "pcap version major")?;
        cur.u16(endian, "pcap version minor")?;
        cur.skip(8, "pcap timezone/sigfigs")?;
        cur.u32(endian, "pcap snaplen")?;
        let link = LinkType::from_wire(cur.u32(endian, "pcap linktype")?)?;
        Ok(PcapParser {
            cur,
            endian,
            resolution,
            link,
        })
    }

    /// Parses the next packet record, `None` at a clean end of file.
    pub(crate) fn next_record(&mut self) -> Option<Result<CaptureRecord, IngestError>> {
        if self.cur.is_empty() {
            return None;
        }
        Some(self.record())
    }

    fn record(&mut self) -> Result<CaptureRecord, IngestError> {
        let offset = self.cur.offset();
        let sec = self.cur.u32(self.endian, "pcap record seconds")?;
        let frac = self.cur.u32(self.endian, "pcap record sub-seconds")?;
        let incl_len = self.cur.u32(self.endian, "pcap record captured length")?;
        let orig_len = self.cur.u32(self.endian, "pcap record original length")?;
        if incl_len as usize > self.cur.remaining() {
            return Err(IngestError::Truncated {
                offset,
                what: "pcap record data",
            });
        }
        let data = self.cur.take(incl_len as usize, "pcap record data")?;
        let sub_micros = match self.resolution {
            Resolution::Micros => i64::from(frac),
            Resolution::Nanos => i64::from(frac) / 1_000,
        };
        let micros = i64::from(sec) * 1_000_000 + sub_micros;
        Ok(CaptureRecord {
            timestamp: Timestamp::from_micros(micros),
            wire_len: orig_len,
            tuple: decode_frame(self.link, data),
        })
    }
}

/// Streaming classic-pcap writer: little-endian, microsecond
/// resolution, one synthesised Ethernet/IP frame per packet.
///
/// The writer is how `traffic`-generated synthetic corpora reach the
/// wire format: [`write_packet`](PcapWriter::write_packet) builds a
/// frame of exactly the packet's recorded size around the flow's
/// 5-tuple, so size, order, and microsecond timing all survive a
/// round-trip through [`parse_capture`](crate::parse_capture).
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    writer: W,
    link: LinkType,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header.
    ///
    /// # Errors
    ///
    /// [`IngestError::Io`] on write failure.
    pub fn new(mut writer: W, link: LinkType) -> Result<Self, IngestError> {
        let mut header = [0u8; 24];
        header[0..4].copy_from_slice(&MAGIC_MICROS.to_le_bytes());
        header[4..6].copy_from_slice(&2u16.to_le_bytes());
        header[6..8].copy_from_slice(&4u16.to_le_bytes());
        header[16..20].copy_from_slice(&65_535u32.to_le_bytes());
        header[20..24].copy_from_slice(&link.to_wire().to_le_bytes());
        writer.write_all(&header)?;
        Ok(PcapWriter {
            writer,
            link,
            packets: 0,
        })
    }

    /// Packets written so far.
    pub const fn packets(&self) -> u64 {
        self.packets
    }

    /// Writes one packet: a synthesised frame for `tuple`, padded to
    /// exactly `wire_len` bytes, stamped `timestamp`.
    ///
    /// # Errors
    ///
    /// [`IngestError::TimestampOutOfRange`] for timestamps outside
    /// pcap's unsigned 32-bit second range,
    /// [`IngestError::FrameTooSmall`] when `wire_len` cannot hold the
    /// tuple's headers, [`IngestError::Io`] on write failure.
    pub fn write_packet(
        &mut self,
        timestamp: Timestamp,
        tuple: &FiveTuple,
        wire_len: u32,
    ) -> Result<(), IngestError> {
        let micros = timestamp.as_micros();
        let sec = micros.div_euclid(1_000_000);
        let usec = micros.rem_euclid(1_000_000);
        if micros < 0 || sec > i64::from(u32::MAX) {
            return Err(IngestError::TimestampOutOfRange(timestamp));
        }
        let frame = build_frame(tuple, wire_len).ok_or(IngestError::FrameTooSmall {
            requested: wire_len,
            minimum: min_frame_len(tuple),
        })?;
        let mut record = [0u8; 16];
        record[0..4].copy_from_slice(&(sec as u32).to_le_bytes());
        record[4..8].copy_from_slice(&(usec as u32).to_le_bytes());
        record[8..12].copy_from_slice(&(frame.len() as u32).to_le_bytes());
        record[12..16].copy_from_slice(&wire_len.to_le_bytes());
        self.writer.write_all(&record)?;
        self.writer.write_all(&frame)?;
        self.packets += 1;
        Ok(())
    }

    /// The link type declared in the global header.
    pub const fn link(&self) -> LinkType {
        self.link
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// [`IngestError::Io`] on flush failure.
    pub fn finish(mut self) -> Result<W, IngestError> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Writes several flows as one time-ordered capture, each flow carried
/// on its own 5-tuple. Ties are broken by flow position in `flows`, so
/// the merge is deterministic.
///
/// Returns the number of packets written.
///
/// # Errors
///
/// The per-packet errors of [`PcapWriter::write_packet`].
pub fn write_flows<W: Write>(writer: W, flows: &[(FiveTuple, &Flow)]) -> Result<u64, IngestError> {
    let mut events: Vec<(Timestamp, &FiveTuple, u32)> = Vec::new();
    for (tuple, flow) in flows {
        for p in flow.iter() {
            events.push((p.timestamp(), tuple, p.size()));
        }
    }
    // Stable: per-flow packet order survives equal timestamps.
    events.sort_by_key(|&(ts, _, _)| ts);
    let mut out = PcapWriter::new(writer, LinkType::Ethernet)?;
    for (ts, tuple, size) in events {
        out.write_packet(ts, tuple, size)?;
    }
    let written = out.packets();
    out.finish()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::parse_capture;
    use stepstone_flow::Packet;

    fn tuple() -> FiveTuple {
        FiveTuple::udp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 22)
    }

    /// The micros-precision round-trip on the parsing hot path; also
    /// exercised under miri in CI.
    #[test]
    fn write_read_roundtrip_preserves_time_order_size() {
        let t = tuple();
        let stamps = [0i64, 1, 999_999, 1_000_000, 86_400_000_000];
        let mut bytes = Vec::new();
        let mut w = PcapWriter::new(&mut bytes, LinkType::Ethernet).unwrap();
        for (i, &us) in stamps.iter().enumerate() {
            w.write_packet(Timestamp::from_micros(us), &t, 64 + i as u32)
                .unwrap();
        }
        assert_eq!(w.packets(), 5);
        w.finish().unwrap();

        let records: Vec<CaptureRecord> = parse_capture(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 5);
        for (i, (rec, &us)) in records.iter().zip(&stamps).enumerate() {
            assert_eq!(rec.timestamp, Timestamp::from_micros(us));
            assert_eq!(rec.wire_len, 64 + i as u32);
            assert_eq!(rec.tuple, Some(t));
        }
    }

    #[test]
    fn big_endian_and_nanosecond_captures_parse() {
        // Hand-build a big-endian, nanosecond-magic capture with one
        // 64-byte UDP frame at t = 1.5ms.
        let frame = build_frame(&tuple(), 64).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_NANOS.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        bytes.extend_from_slice(&65_535u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes()); // sec
        bytes.extend_from_slice(&1_500_999u32.to_be_bytes()); // nanos
        bytes.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&frame);

        let records: Vec<CaptureRecord> = parse_capture(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 1);
        // Nanoseconds truncate to the workspace's microsecond grid.
        assert_eq!(records[0].timestamp, Timestamp::from_micros(1_500));
        assert_eq!(records[0].tuple, Some(tuple()));
    }

    #[test]
    fn snapped_records_keep_the_original_length() {
        // incl_len < orig_len: the frame was cut by a snaplen.
        let frame = build_frame(&tuple(), 64).unwrap();
        let mut bytes = Vec::new();
        let w = PcapWriter::new(&mut bytes, LinkType::Ethernet).unwrap();
        w.finish().unwrap();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&48u32.to_le_bytes()); // captured
        bytes.extend_from_slice(&1400u32.to_le_bytes()); // original
        bytes.extend_from_slice(&frame[..48]);
        let records: Vec<CaptureRecord> = parse_capture(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records[0].wire_len, 1400);
        // 48 bytes still cover Ethernet+IPv4+UDP, so the tuple decodes.
        assert_eq!(records[0].tuple, Some(tuple()));
    }

    #[test]
    fn writer_rejects_unrepresentable_packets() {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        assert!(matches!(
            w.write_packet(Timestamp::from_micros(-1), &tuple(), 64),
            Err(IngestError::TimestampOutOfRange(_))
        ));
        assert!(matches!(
            w.write_packet(Timestamp::ZERO, &tuple(), 10),
            Err(IngestError::FrameTooSmall { minimum: 42, .. })
        ));
    }

    #[test]
    fn write_flows_merges_by_time() {
        let a = Flow::from_packets([
            Packet::new(Timestamp::from_millis(0), 64),
            Packet::new(Timestamp::from_millis(20), 64),
        ])
        .unwrap();
        let b = Flow::from_packets([Packet::new(Timestamp::from_millis(10), 48)]).unwrap();
        let ta = FiveTuple::udp_v4([1, 1, 1, 1], 1, [2, 2, 2, 2], 2);
        let tb = FiveTuple::udp_v4([3, 3, 3, 3], 3, [4, 4, 4, 4], 4);
        let mut bytes = Vec::new();
        assert_eq!(write_flows(&mut bytes, &[(ta, &a), (tb, &b)]).unwrap(), 3);
        let records: Vec<CaptureRecord> = parse_capture(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let tuples: Vec<_> = records.iter().map(|r| r.tuple.unwrap()).collect();
        assert_eq!(tuples, vec![ta, tb, ta]);
        let times: Vec<_> = records
            .iter()
            .map(|r| r.timestamp.as_micros() / 1000)
            .collect();
        assert_eq!(times, vec![0, 10, 20]);
    }

    #[test]
    fn truncated_pcaps_error_at_every_cut() {
        let t = tuple();
        let mut bytes = Vec::new();
        let mut w = PcapWriter::new(&mut bytes, LinkType::Ethernet).unwrap();
        for i in 0..3 {
            w.write_packet(Timestamp::from_millis(i), &t, 64).unwrap();
        }
        w.finish().unwrap();
        for cut in 0..bytes.len() {
            let result: Result<Vec<CaptureRecord>, IngestError> = match parse_capture(&bytes[..cut])
            {
                Ok(iter) => iter.collect(),
                Err(e) => Err(e),
            };
            // Cuts on a record boundary (24, 24+80, 24+160) parse clean
            // as shorter captures; everything else must error.
            let record = 16 + 64;
            let clean = cut == 0 || (cut >= 24 && (cut - 24) % record == 0);
            if clean && cut != 0 {
                assert_eq!(result.unwrap().len(), (cut - 24) / record);
            } else {
                assert!(result.is_err(), "cut {cut} should not parse");
            }
        }
    }
}
