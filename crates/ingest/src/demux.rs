//! 5-tuple flow demultiplexing: groups [`CaptureRecord`]s into
//! per-flow packet streams with idle-timeout eviction.
//!
//! The demux serves both consumption styles in the workspace:
//!
//! * **batch** — [`FlowDemux::finish`] returns every completed
//!   [`DemuxFlow`], ready for the offline correlators;
//! * **incremental** — [`FlowDemux::push`] returns the `(FlowId,
//!   Packet)` event for the record just seen, which callers forward
//!   straight into `stepstone_monitor::Monitor::ingest`.

use std::collections::HashMap;
use std::sync::Arc;

use stepstone_flow::{Flow, FlowBuilder, Packet, TimeDelta, Timestamp};
use stepstone_monitor::FlowId;
use stepstone_telemetry::{Counter, Gauge, Registry};

use crate::capture::CaptureRecord;
use crate::link::FiveTuple;

/// A completed flow together with the identity the demux assigned it.
#[derive(Debug, Clone)]
pub struct DemuxFlow {
    /// Identifier assigned in first-seen order, shared with the events
    /// returned from [`FlowDemux::push`].
    pub id: FlowId,
    /// The transport 5-tuple all of the flow's packets share.
    pub tuple: FiveTuple,
    /// The reassembled packet timing sequence.
    pub flow: Flow,
}

/// Counters describing everything the demux saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemuxStats {
    /// Records mapped to a flow.
    pub packets: u64,
    /// Records without a usable 5-tuple (ARP, ICMP, fragments, …).
    pub ignored: u64,
    /// Packets whose timestamp ran backwards relative to their flow and
    /// were clamped forward to keep the `Flow` invariant.
    pub clamped: u64,
    /// Flows ever opened.
    pub flows_opened: u64,
    /// Flows closed by the idle-timeout sweep.
    pub flows_evicted: u64,
}

/// Telemetry handles mirroring [`DemuxStats`], interned when the demux
/// is bound to a registry via [`FlowDemux::bind_registry`]. The plain
/// stats stay the source of truth; these handles are incremented in
/// lockstep so a `/metrics` scrape sees the same numbers.
#[derive(Debug)]
struct DemuxMetrics {
    packets: Arc<Counter>,
    ignored: Arc<Counter>,
    clamped: Arc<Counter>,
    flows_opened: Arc<Counter>,
    flows_evicted: Arc<Counter>,
    flows_live: Arc<Gauge>,
}

impl DemuxMetrics {
    fn new(registry: &Registry) -> Self {
        DemuxMetrics {
            packets: registry.counter(
                "ingest_packets_total",
                "Capture records mapped to a transport flow",
            ),
            ignored: registry.counter(
                "ingest_records_ignored_total",
                "Capture records without a usable 5-tuple",
            ),
            clamped: registry.counter(
                "ingest_timestamps_clamped_total",
                "Packets clamped forward after a backwards timestamp",
            ),
            flows_opened: registry.counter("ingest_flows_opened_total", "Flows ever opened"),
            flows_evicted: registry.counter(
                "ingest_flows_evicted_total",
                "Flows closed by the idle-timeout sweep",
            ),
            flows_live: registry.gauge(
                "ingest_flows_live",
                "Flows currently being assembled by the demux",
            ),
        }
    }
}

/// One live flow being assembled.
#[derive(Debug)]
struct Slot {
    id: FlowId,
    builder: FlowBuilder,
    last_seen: Timestamp,
}

/// Groups capture records into flows keyed by transport 5-tuple.
#[derive(Debug)]
pub struct FlowDemux {
    live: HashMap<FiveTuple, Slot>,
    evicted: Vec<DemuxFlow>,
    idle_timeout: Option<TimeDelta>,
    next_id: u64,
    stats: DemuxStats,
    metrics: Option<DemuxMetrics>,
}

impl FlowDemux {
    /// A demux that keeps every flow open until [`FlowDemux::finish`].
    #[must_use]
    pub fn new() -> Self {
        FlowDemux {
            live: HashMap::new(),
            evicted: Vec::new(),
            idle_timeout: None,
            next_id: 0,
            stats: DemuxStats::default(),
            metrics: None,
        }
    }

    /// Publishes this demux's counters (`ingest_*` families) into
    /// `registry`, catching the handles up with anything already
    /// counted. Typically called with `Monitor::registry()` so demux
    /// and engine series share one exposition endpoint.
    pub fn bind_registry(&mut self, registry: &Registry) {
        let metrics = DemuxMetrics::new(registry);
        // Catch up: the handles may be freshly interned while this
        // demux already saw traffic.
        metrics.packets.add(self.stats.packets);
        metrics.ignored.add(self.stats.ignored);
        metrics.clamped.add(self.stats.clamped);
        metrics.flows_opened.add(self.stats.flows_opened);
        metrics.flows_evicted.add(self.stats.flows_evicted);
        metrics
            .flows_live
            .add(i64::try_from(self.live.len()).unwrap_or(i64::MAX));
        self.metrics = Some(metrics);
    }

    /// A demux that closes flows idle for longer than `timeout` during
    /// [`FlowDemux::sweep_idle`].
    #[must_use]
    pub fn with_idle_timeout(timeout: TimeDelta) -> Self {
        let mut demux = FlowDemux::new();
        demux.idle_timeout = Some(timeout);
        demux
    }

    /// Routes one capture record to its flow.
    ///
    /// Returns the `(flow, packet)` ingest event when the record maps
    /// to a transport flow, `None` when the record carries no 5-tuple.
    /// Timestamps that run backwards within a flow are clamped to the
    /// flow's last timestamp (and counted) so the non-decreasing `Flow`
    /// invariant always holds.
    pub fn push(&mut self, record: &CaptureRecord) -> Option<(FlowId, Packet)> {
        let Some(tuple) = record.tuple else {
            self.stats.ignored += 1;
            if let Some(m) = &self.metrics {
                m.ignored.inc();
            }
            return None;
        };
        let metrics = &self.metrics;
        let slot = self.live.entry(tuple).or_insert_with(|| {
            let id = FlowId(self.next_id);
            self.next_id += 1;
            self.stats.flows_opened += 1;
            if let Some(m) = metrics {
                m.flows_opened.inc();
                m.flows_live.inc();
            }
            Slot {
                id,
                builder: FlowBuilder::new(),
                last_seen: record.timestamp,
            }
        });
        let mut ts = record.timestamp;
        if ts < slot.last_seen {
            ts = slot.last_seen;
            self.stats.clamped += 1;
            if let Some(m) = &self.metrics {
                m.clamped.inc();
            }
        }
        slot.last_seen = ts;
        let packet = Packet::new(ts, record.wire_len);
        // Infallible: ts was clamped to be non-decreasing above.
        if slot.builder.push(packet).is_err() {
            return None;
        }
        self.stats.packets += 1;
        if let Some(m) = &self.metrics {
            m.packets.inc();
        }
        Some((slot.id, packet))
    }

    /// Closes flows whose last packet is older than `now - timeout`.
    ///
    /// Returns the ids of the flows just closed (their assembled flows
    /// move to the evicted list, readable via [`FlowDemux::drain_evicted`]).
    /// No-op for a demux built without a timeout.
    pub fn sweep_idle(&mut self, now: Timestamp) -> Vec<FlowId> {
        let Some(timeout) = self.idle_timeout else {
            return Vec::new();
        };
        let cutoff = now - timeout;
        let expired: Vec<FiveTuple> = self
            .live
            .iter()
            .filter(|(_, slot)| slot.last_seen < cutoff)
            .map(|(tuple, _)| *tuple)
            .collect();
        let mut closed = Vec::with_capacity(expired.len());
        for tuple in expired {
            if let Some(slot) = self.live.remove(&tuple) {
                closed.push(slot.id);
                self.stats.flows_evicted += 1;
                if let Some(m) = &self.metrics {
                    m.flows_evicted.inc();
                    m.flows_live.dec();
                }
                self.evicted.push(DemuxFlow {
                    id: slot.id,
                    tuple,
                    flow: slot.builder.finish(),
                });
            }
        }
        // Deterministic order regardless of hash-map iteration.
        closed.sort_unstable_by_key(|id| id.0);
        self.evicted.sort_by_key(|f| f.id.0);
        closed
    }

    /// Takes the flows closed by eviction sweeps so far.
    pub fn drain_evicted(&mut self) -> Vec<DemuxFlow> {
        std::mem::take(&mut self.evicted)
    }

    /// Number of flows currently being assembled.
    #[must_use]
    pub fn live_flows(&self) -> usize {
        self.live.len()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DemuxStats {
        self.stats
    }

    /// Closes every remaining flow and returns all completed flows —
    /// previously evicted ones included — sorted by [`FlowId`].
    #[must_use]
    pub fn finish(mut self) -> (Vec<DemuxFlow>, DemuxStats) {
        if let Some(m) = &self.metrics {
            // The registry outlives this demux; settle the live gauge
            // so a later scrape doesn't report phantom flows.
            m.flows_live
                .add(-i64::try_from(self.live.len()).unwrap_or(i64::MAX));
        }
        let mut flows = std::mem::take(&mut self.evicted);
        for (tuple, slot) in self.live.drain() {
            flows.push(DemuxFlow {
                id: slot.id,
                tuple,
                flow: slot.builder.finish(),
            });
        }
        flows.sort_by_key(|f| f.id.0);
        (flows, self.stats)
    }
}

impl Default for FlowDemux {
    fn default() -> Self {
        FlowDemux::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tuple: FiveTuple, millis: i64, size: u32) -> CaptureRecord {
        CaptureRecord {
            timestamp: Timestamp::from_millis(millis),
            wire_len: size,
            tuple: Some(tuple),
        }
    }

    fn tuples() -> (FiveTuple, FiveTuple) {
        (
            FiveTuple::tcp_v4([10, 0, 0, 1], 1000, [10, 0, 0, 9], 22),
            FiveTuple::udp_v4([10, 0, 0, 2], 2000, [10, 0, 0, 9], 53),
        )
    }

    #[test]
    fn assigns_flow_ids_in_first_seen_order() {
        let (a, b) = tuples();
        let mut demux = FlowDemux::new();
        let (id_a, pkt) = demux.push(&record(a, 1, 64)).unwrap();
        assert_eq!(id_a, FlowId(0));
        assert_eq!(pkt.size(), 64);
        let (id_b, _) = demux.push(&record(b, 2, 48)).unwrap();
        assert_eq!(id_b, FlowId(1));
        let (again, _) = demux.push(&record(a, 3, 64)).unwrap();
        assert_eq!(again, FlowId(0));

        let (flows, stats) = demux.finish();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].id, FlowId(0));
        assert_eq!(flows[0].tuple, a);
        assert_eq!(flows[0].flow.len(), 2);
        assert_eq!(flows[1].flow.len(), 1);
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.flows_opened, 2);
    }

    #[test]
    fn tupleless_records_are_counted_not_flowed() {
        let mut demux = FlowDemux::new();
        let none = CaptureRecord {
            timestamp: Timestamp::from_millis(1),
            wire_len: 60,
            tuple: None,
        };
        assert!(demux.push(&none).is_none());
        let (flows, stats) = demux.finish();
        assert!(flows.is_empty());
        assert_eq!(stats.ignored, 1);
        assert_eq!(stats.packets, 0);
    }

    #[test]
    fn backwards_timestamps_are_clamped() {
        let (a, _) = tuples();
        let mut demux = FlowDemux::new();
        demux.push(&record(a, 10, 64)).unwrap();
        let (_, pkt) = demux.push(&record(a, 5, 64)).unwrap();
        assert_eq!(pkt.timestamp(), Timestamp::from_millis(10));
        let (flows, stats) = demux.finish();
        assert_eq!(stats.clamped, 1);
        assert_eq!(flows[0].flow.len(), 2);
    }

    #[test]
    fn idle_sweep_evicts_only_stale_flows() {
        let (a, b) = tuples();
        let mut demux = FlowDemux::with_idle_timeout(TimeDelta::from_secs(30));
        demux.push(&record(a, 0, 64)).unwrap();
        demux.push(&record(b, 25_000, 64)).unwrap();

        // At t=40s only flow a (idle 40s) is past the 30s timeout.
        let closed = demux.sweep_idle(Timestamp::from_secs(40));
        assert_eq!(closed, vec![FlowId(0)]);
        assert_eq!(demux.live_flows(), 1);
        let evicted = demux.drain_evicted();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].tuple, a);

        // A new packet on the same tuple opens a new flow id.
        let (reopened, _) = demux.push(&record(a, 50_000, 64)).unwrap();
        assert_eq!(reopened, FlowId(2));

        let (flows, stats) = demux.finish();
        assert_eq!(flows.len(), 2); // b + reopened a
        assert_eq!(stats.flows_opened, 3);
        assert_eq!(stats.flows_evicted, 1);
    }

    #[test]
    fn bound_registry_mirrors_stats_and_settles_on_finish() {
        let (a, b) = tuples();
        let registry = Registry::new();
        let mut demux = FlowDemux::with_idle_timeout(TimeDelta::from_secs(30));
        // Traffic before binding is caught up at bind time.
        demux.push(&record(a, 0, 64)).unwrap();
        demux.bind_registry(&registry);
        demux.push(&record(b, 1, 64)).unwrap();
        demux.push(&record(b, 2, 64)).unwrap();
        // One clamp, one ignored record.
        demux.push(&record(b, 1, 64)).unwrap();
        demux
            .push(&CaptureRecord {
                timestamp: Timestamp::from_millis(3),
                wire_len: 60,
                tuple: None,
            })
            .is_none()
            .then_some(())
            .unwrap();
        demux.sweep_idle(Timestamp::from_secs(40));

        let stats = demux.stats();
        let rendered = registry.render_prometheus();
        let series = |name: &str| -> u64 {
            rendered
                .lines()
                .find(|l| l.starts_with(name) && !l.starts_with('#'))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse::<f64>().ok())
                .map(|v| v as u64)
                .unwrap_or(u64::MAX)
        };
        assert_eq!(series("ingest_packets_total"), stats.packets);
        assert_eq!(series("ingest_records_ignored_total"), stats.ignored);
        assert_eq!(series("ingest_timestamps_clamped_total"), stats.clamped);
        assert_eq!(series("ingest_flows_opened_total"), stats.flows_opened);
        assert_eq!(series("ingest_flows_evicted_total"), stats.flows_evicted);
        assert_eq!(series("ingest_flows_live"), demux.live_flows() as u64);

        let _ = demux.finish();
        let rendered = registry.render_prometheus();
        assert!(
            rendered.contains("ingest_flows_live 0"),
            "live gauge must settle to zero after finish: {rendered}"
        );
    }

    #[test]
    fn sweep_without_timeout_is_a_noop() {
        let (a, _) = tuples();
        let mut demux = FlowDemux::new();
        demux.push(&record(a, 0, 64)).unwrap();
        assert!(demux.sweep_idle(Timestamp::from_secs(3600)).is_empty());
        assert_eq!(demux.live_flows(), 1);
    }
}
