//! Errors produced while parsing, writing, or replaying captures.

use std::error::Error;
use std::fmt;

use stepstone_flow::Timestamp;

/// Errors produced by the wire-ingestion layer.
///
/// Every malformed input maps to a variant here — corrupt captures must
/// never panic the reader (the workspace `no_panic` invariant), they
/// surface as `Err` values the caller can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum IngestError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The first bytes match neither a pcap magic nor a pcapng section
    /// header.
    BadMagic,
    /// The capture ends in the middle of a header, block, or packet
    /// record.
    Truncated {
        /// Byte offset at which the reader ran out of input.
        offset: usize,
        /// What was being parsed when the input ended.
        what: &'static str,
    },
    /// A structurally invalid pcapng block or pcap record.
    Malformed {
        /// Byte offset of the offending structure.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
    /// The capture's link layer is one the frame decoder does not
    /// understand (only Ethernet, raw-IP, and null/loopback captures
    /// are supported).
    UnsupportedLinkType(u32),
    /// A timestamp cannot be represented in the output format (classic
    /// pcap stores unsigned 32-bit seconds).
    TimestampOutOfRange(Timestamp),
    /// A packet's recorded size is below the minimum frame its 5-tuple
    /// encapsulation needs.
    FrameTooSmall {
        /// The requested wire length.
        requested: u32,
        /// The minimum length the headers alone occupy.
        minimum: u32,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "capture i/o failed: {e}"),
            IngestError::BadMagic => write!(f, "not a pcap or pcapng capture"),
            IngestError::Truncated { offset, what } => {
                write!(f, "capture truncated at byte {offset} while reading {what}")
            }
            IngestError::Malformed { offset, reason } => {
                write!(f, "malformed capture structure at byte {offset}: {reason}")
            }
            IngestError::UnsupportedLinkType(lt) => {
                write!(f, "unsupported capture link type {lt}")
            }
            IngestError::TimestampOutOfRange(ts) => {
                write!(f, "timestamp {ts} is not representable in classic pcap")
            }
            IngestError::FrameTooSmall { requested, minimum } => {
                write!(
                    f,
                    "packet size {requested} is below the {minimum}-byte encapsulation minimum"
                )
            }
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_failure() {
        assert!(IngestError::BadMagic.to_string().contains("pcap"));
        let t = IngestError::Truncated {
            offset: 12,
            what: "record header",
        };
        assert!(t.to_string().contains("byte 12"), "{t}");
        assert!(IngestError::UnsupportedLinkType(147)
            .to_string()
            .contains("147"));
        let e = IngestError::FrameTooSmall {
            requested: 10,
            minimum: 42,
        };
        assert!(e.to_string().contains("42"), "{e}");
        assert!(IngestError::TimestampOutOfRange(Timestamp::from_micros(-1))
            .to_string()
            .contains("pcap"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: IngestError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }
}
