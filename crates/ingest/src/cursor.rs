//! A bounds-checked byte cursor: every read returns a `Result`, so
//! corrupt captures surface as errors instead of panics.

use crate::error::IngestError;

/// Byte order of the multi-byte fields being read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endian {
    /// Least-significant byte first.
    Little,
    /// Most-significant byte first.
    Big,
}

/// A forward-only reader over an in-memory capture.
#[derive(Debug, Clone)]
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Absolute byte offset of the next read.
    pub(crate) fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes, or reports where the input ended.
    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], IngestError> {
        if self.remaining() < n {
            return Err(IngestError::Truncated {
                offset: self.pos,
                what,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Skips `n` bytes.
    pub(crate) fn skip(&mut self, n: usize, what: &'static str) -> Result<(), IngestError> {
        self.take(n, what).map(|_| ())
    }

    pub(crate) fn u16(&mut self, endian: Endian, what: &'static str) -> Result<u16, IngestError> {
        let b = self.take(2, what)?;
        let arr = [b[0], b[1]];
        Ok(match endian {
            Endian::Little => u16::from_le_bytes(arr),
            Endian::Big => u16::from_be_bytes(arr),
        })
    }

    pub(crate) fn u32(&mut self, endian: Endian, what: &'static str) -> Result<u32, IngestError> {
        let b = self.take(4, what)?;
        let arr = [b[0], b[1], b[2], b[3]];
        Ok(match endian {
            Endian::Little => u32::from_le_bytes(arr),
            Endian::Big => u32::from_be_bytes(arr),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_both_endiannesses() {
        let data = [0x01, 0x02, 0x03, 0x04];
        let mut le = Cursor::new(&data);
        assert_eq!(le.u32(Endian::Little, "x").unwrap(), 0x0403_0201);
        let mut be = Cursor::new(&data);
        assert_eq!(be.u32(Endian::Big, "x").unwrap(), 0x0102_0304);
        let mut h = Cursor::new(&data);
        assert_eq!(h.u16(Endian::Big, "x").unwrap(), 0x0102);
        assert_eq!(h.u16(Endian::Little, "x").unwrap(), 0x0403);
    }

    #[test]
    fn truncation_reports_offset_and_context() {
        let data = [0xAA, 0xBB];
        let mut c = Cursor::new(&data);
        c.skip(1, "first").unwrap();
        let err = c.u32(Endian::Little, "header field").unwrap_err();
        match err {
            IngestError::Truncated { offset, what } => {
                assert_eq!(offset, 1);
                assert_eq!(what, "header field");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The failed read consumed nothing.
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    fn take_skip_and_exhaustion() {
        let data = [1u8, 2, 3, 4, 5];
        let mut c = Cursor::new(&data);
        assert_eq!(c.take(2, "x").unwrap(), &[1, 2]);
        c.skip(1, "x").unwrap();
        assert_eq!(c.offset(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.take(2, "x").unwrap(), &[4, 5]);
        assert!(c.is_empty());
        assert!(c.take(1, "x").is_err());
    }
}
