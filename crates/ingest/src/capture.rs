//! Format-sniffing capture reader: one iterator over pcap and pcapng.

use std::io::Read;

use stepstone_flow::Timestamp;

use crate::error::IngestError;
use crate::link::FiveTuple;
use crate::pcap::PcapParser;
use crate::pcapng::PcapNgParser;

/// One captured packet, reduced to what the correlation pipeline needs:
/// when it was seen, how big it was on the wire, and which flow it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Arrival timestamp, truncated to the workspace's microsecond
    /// resolution.
    pub timestamp: Timestamp,
    /// Original wire length in bytes (`orig_len`, not the possibly
    /// snapped capture length).
    pub wire_len: u32,
    /// The packet's transport 5-tuple, or `None` for traffic the frame
    /// decoder does not map to a flow (ARP, ICMP, fragments, …).
    pub tuple: Option<FiveTuple>,
}

/// A lazily-parsed capture: pcap or pcapng, auto-detected.
///
/// Iterating yields [`CaptureRecord`]s in file order; a structural
/// error ends the stream with one final `Err`.
///
/// # Example
///
/// ```
/// use stepstone_ingest::{FiveTuple, LinkType, PcapWriter, parse_capture};
/// use stepstone_flow::Timestamp;
///
/// # fn main() -> Result<(), stepstone_ingest::IngestError> {
/// let tuple = FiveTuple::udp_v4([10, 0, 0, 1], 9, [10, 0, 0, 2], 9);
/// let mut bytes = Vec::new();
/// let mut w = PcapWriter::new(&mut bytes, LinkType::Ethernet)?;
/// w.write_packet(Timestamp::from_millis(5), &tuple, 64)?;
/// w.finish()?;
///
/// let records: Vec<_> = parse_capture(&bytes)?.collect::<Result<_, _>>()?;
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].tuple, Some(tuple));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Capture<'a> {
    inner: Inner<'a>,
    /// Set once a structural error has been yielded; the iterator then
    /// fuses instead of re-reporting the same corruption forever.
    failed: bool,
}

#[derive(Debug)]
enum Inner<'a> {
    Pcap(PcapParser<'a>),
    PcapNg(PcapNgParser<'a>),
}

/// The pcapng Section Header Block type, doubling as its file magic.
const PCAPNG_MAGIC: [u8; 4] = [0x0A, 0x0D, 0x0D, 0x0A];

/// Sniffs the format from the first bytes and returns a lazy parser.
///
/// # Errors
///
/// [`IngestError::BadMagic`] when the input starts with neither a pcap
/// magic number nor a pcapng section header; header-level errors
/// ([`IngestError::Truncated`], [`IngestError::UnsupportedLinkType`])
/// surface immediately.
pub fn parse_capture(bytes: &[u8]) -> Result<Capture<'_>, IngestError> {
    if bytes.len() < 4 {
        // Too short to even hold a magic number: not a capture at all.
        return Err(IngestError::BadMagic);
    }
    let inner = if bytes.get(..4) == Some(&PCAPNG_MAGIC) {
        Inner::PcapNg(PcapNgParser::new(bytes)?)
    } else {
        Inner::Pcap(PcapParser::new(bytes)?)
    };
    Ok(Capture {
        inner,
        failed: false,
    })
}

/// Reads a whole capture eagerly.
///
/// # Errors
///
/// Any [`IngestError`] the lazy parser would yield; the records parsed
/// before the error are discarded.
pub fn read_capture<R: Read>(mut reader: R) -> Result<Vec<CaptureRecord>, IngestError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_capture(&bytes)?.collect()
}

impl Iterator for Capture<'_> {
    type Item = Result<CaptureRecord, IngestError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let item = match &mut self.inner {
            Inner::Pcap(p) => p.next_record(),
            Inner::PcapNg(p) => p.next_record(),
        };
        if matches!(item, Some(Err(_))) {
            self.failed = true;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_input_is_rejected_without_panicking() {
        assert!(matches!(
            parse_capture(b"definitely not a capture"),
            Err(IngestError::BadMagic)
        ));
        assert!(matches!(parse_capture(b""), Err(IngestError::BadMagic)));
        assert!(matches!(
            read_capture(&b"xx"[..]),
            Err(IngestError::BadMagic)
        ));
    }

    #[test]
    fn iterator_fuses_after_a_structural_error() {
        // A valid pcap global header followed by a torn record header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0xA1B2_C3D4u32.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // linktype ethernet
        bytes.extend_from_slice(&[1, 2, 3]); // torn record
        let mut cap = parse_capture(&bytes).unwrap();
        assert!(matches!(
            cap.next(),
            Some(Err(IngestError::Truncated { .. }))
        ));
        assert!(cap.next().is_none());
    }
}
