//! Replay pacing: maps capture timestamps onto wall-clock time.
//!
//! A capture carries its own timeline. When replaying it into the
//! monitor we can honour that timeline ([`ReplayClock::Real`]), stretch
//! or compress it ([`ReplayClock::Scaled`]), or ignore it entirely and
//! push packets as fast as the engine accepts them
//! ([`ReplayClock::Fast`]).

use std::str::FromStr;
use std::time::{Duration, Instant};

use stepstone_flow::Timestamp;

/// How capture time maps onto wall-clock time during replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayClock {
    /// No pacing: deliver packets as fast as possible.
    Fast,
    /// One capture second per wall-clock second.
    Real,
    /// `Scaled(4.0)` replays four capture seconds per wall second;
    /// `Scaled(0.5)` replays at half speed.
    Scaled(f64),
}

impl ReplayClock {
    /// Capture-seconds advanced per wall-clock second, `None` for
    /// unpaced replay.
    #[must_use]
    pub fn speedup(self) -> Option<f64> {
        match self {
            ReplayClock::Fast => None,
            ReplayClock::Real => Some(1.0),
            ReplayClock::Scaled(x) => Some(x),
        }
    }

    /// Starts a pacer anchored at `origin` on the capture timeline.
    #[must_use]
    pub fn pacer(self, origin: Timestamp) -> Pacer {
        Pacer {
            speedup: self.speedup(),
            origin,
            started: Instant::now(),
        }
    }
}

/// Parse error for [`ReplayClock`] command-line values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReplayClockError(String);

impl std::fmt::Display for ParseReplayClockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid replay clock {:?}: expected \"fast\", \"real\", or \"xN\" (e.g. \"x10\")",
            self.0
        )
    }
}

impl std::error::Error for ParseReplayClockError {}

impl FromStr for ReplayClock {
    type Err = ParseReplayClockError;

    /// Accepts `fast`, `real`, or `xN` where `N` is a positive factor
    /// (`x10`, `x0.25`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fast" => Ok(ReplayClock::Fast),
            "real" => Ok(ReplayClock::Real),
            _ => {
                let factor = s
                    .strip_prefix('x')
                    .and_then(|n| n.parse::<f64>().ok())
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or_else(|| ParseReplayClockError(s.to_string()))?;
                Ok(ReplayClock::Scaled(factor))
            }
        }
    }
}

impl std::fmt::Display for ReplayClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayClock::Fast => write!(f, "fast"),
            ReplayClock::Real => write!(f, "real"),
            ReplayClock::Scaled(x) => write!(f, "x{x}"),
        }
    }
}

/// Sleeps replay forward so capture time never runs ahead of scaled
/// wall-clock time.
#[derive(Debug)]
pub struct Pacer {
    speedup: Option<f64>,
    origin: Timestamp,
    started: Instant,
}

impl Pacer {
    /// Blocks until the wall clock has caught up with `next` on the
    /// capture timeline. Unpaced ([`ReplayClock::Fast`]) returns
    /// immediately.
    pub fn wait_until(&self, next: Timestamp) {
        if let Some(wait) = self.wait_for(next, Instant::now()) {
            std::thread::sleep(wait);
        }
    }

    /// The remaining wall-clock wait before `next` is due, or `None`
    /// when it is already due (or pacing is off). Split from
    /// [`Pacer::wait_until`] so tests can probe the schedule without
    /// sleeping.
    fn wait_for(&self, next: Timestamp, now: Instant) -> Option<Duration> {
        let speedup = self.speedup?;
        let capture_elapsed = (next - self.origin).as_micros().max(0) as f64;
        let due_micros = capture_elapsed / speedup;
        let wall_elapsed = now.duration_since(self.started).as_secs_f64() * 1e6;
        let remaining = due_micros - wall_elapsed;
        if remaining >= 1.0 {
            Some(Duration::from_micros(remaining as u64))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_modes() {
        assert_eq!("fast".parse::<ReplayClock>().unwrap(), ReplayClock::Fast);
        assert_eq!("real".parse::<ReplayClock>().unwrap(), ReplayClock::Real);
        assert_eq!(
            "x10".parse::<ReplayClock>().unwrap(),
            ReplayClock::Scaled(10.0)
        );
        assert_eq!(
            "x0.25".parse::<ReplayClock>().unwrap(),
            ReplayClock::Scaled(0.25)
        );
        for bad in ["", "slow", "x", "x0", "x-3", "xNaN", "xinf", "10"] {
            assert!(bad.parse::<ReplayClock>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_round_trips() {
        for mode in [
            ReplayClock::Fast,
            ReplayClock::Real,
            ReplayClock::Scaled(2.5),
        ] {
            let shown = mode.to_string();
            assert_eq!(shown.parse::<ReplayClock>().unwrap(), mode);
        }
    }

    #[test]
    fn fast_mode_never_waits() {
        let pacer = ReplayClock::Fast.pacer(Timestamp::from_secs(0));
        assert_eq!(
            pacer.wait_for(Timestamp::from_secs(3600), Instant::now()),
            None
        );
    }

    #[test]
    fn scaled_mode_schedules_proportionally() {
        let pacer = ReplayClock::Scaled(10.0).pacer(Timestamp::from_secs(0));
        let now = pacer.started;
        // 10 capture-seconds at 10x = 1 wall second.
        let wait = pacer.wait_for(Timestamp::from_secs(10), now).unwrap();
        let millis = wait.as_millis();
        assert!((950..=1050).contains(&millis), "waited {millis} ms");
        // Packets before the origin are due immediately.
        assert_eq!(pacer.wait_for(Timestamp::from_secs(-5), now), None);
    }

    #[test]
    fn real_mode_catches_up_without_waiting_for_past_packets() {
        let pacer = ReplayClock::Real.pacer(Timestamp::from_secs(100));
        let late = pacer.started + Duration::from_secs(5);
        // Capture t=102s is already 3 wall-seconds overdue at wall t=5s.
        assert_eq!(pacer.wait_for(Timestamp::from_secs(102), late), None);
        // Capture t=107s is 2 seconds away.
        let wait = pacer.wait_for(Timestamp::from_secs(107), late).unwrap();
        let millis = wait.as_millis();
        assert!((1950..=2050).contains(&millis), "waited {millis} ms");
    }
}
