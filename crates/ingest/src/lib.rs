//! # stepstone-ingest
//!
//! Wire ingestion for the stepstone correlation pipeline: dependency-
//! free pcap/pcapng reading, 5-tuple flow demultiplexing, replay-clock
//! pacing, and a pcap writer so synthetic corpora round-trip through
//! real capture tooling.
//!
//! ```text
//!   .pcap / .pcapng bytes
//!          │ parse_capture()          (format sniffed, both endians,
//!          ▼                           per-interface if_tsresol)
//!   CaptureRecord stream  ──────────► ignored: ARP/ICMP/fragments
//!          │ FlowDemux::push()
//!          ▼
//!   (FlowId, Packet) events ─ ReplayClock pacing ─► Monitor::ingest()
//!          │                                             │
//!          ▼ FlowDemux::finish()                         ▼
//!   Vec<DemuxFlow> (batch correlators)           Verdict stream
//! ```
//!
//! The reader never panics on corrupt input: every structural defect
//! surfaces as an [`IngestError`] naming the offending byte offset.
//! [`PcapWriter`] is the inverse direction — it renders the abstract
//! `(timestamp, size)` packet model of `stepstone_flow` as Ethernet/
//! IPv4 frames so a written capture demultiplexes back into the exact
//! flows it came from (see [`write_flows`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod clock;
mod cursor;
mod demux;
mod error;
mod link;
mod pcap;
mod pcapng;
mod replay;

pub use capture::{parse_capture, read_capture, Capture, CaptureRecord};
pub use clock::{Pacer, ParseReplayClockError, ReplayClock};
pub use demux::{DemuxFlow, DemuxStats, FlowDemux};
pub use error::IngestError;
pub use link::{build_frame, decode_frame, min_frame_len, FiveTuple, LinkType, Transport};
pub use pcap::{write_flows, PcapWriter};
pub use replay::{replay_capture, replay_records_with, ReplayOutcome};
