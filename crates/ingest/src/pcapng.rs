//! pcapng (pcap next generation) reading: Section Header, Interface
//! Description, and Enhanced Packet blocks, with per-interface
//! timestamp resolution (`if_tsresol`).
//!
//! Everything else — statistics, name resolution, custom blocks — is
//! structurally validated and skipped. Multiple sections per file are
//! supported; each section carries its own byte order.

use stepstone_flow::Timestamp;

use crate::capture::CaptureRecord;
use crate::cursor::{Cursor, Endian};
use crate::error::IngestError;
use crate::link::{decode_frame, LinkType};

/// Block type of the Section Header Block; also the pcapng file magic.
const SHB_TYPE: u32 = 0x0A0D_0D0A;
/// Byte-order magic inside the SHB body.
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
/// Interface Description Block.
const IDB_TYPE: u32 = 0x0000_0001;
/// Enhanced Packet Block.
const EPB_TYPE: u32 = 0x0000_0006;
/// The `if_tsresol` option code in an IDB.
const OPT_IF_TSRESOL: u16 = 9;
/// End-of-options option code.
const OPT_END: u16 = 0;

/// One declared capture interface.
#[derive(Debug, Clone, Copy)]
struct Interface {
    link: LinkType,
    /// Timestamp units per second, from `if_tsresol` (default 10⁻⁶).
    ticks_per_sec: u64,
}

/// Pull-parser over a pcapng byte buffer.
#[derive(Debug)]
pub(crate) struct PcapNgParser<'a> {
    cur: Cursor<'a>,
    endian: Endian,
    interfaces: Vec<Interface>,
}

impl<'a> PcapNgParser<'a> {
    /// Parses the leading Section Header Block.
    pub(crate) fn new(bytes: &'a [u8]) -> Result<Self, IngestError> {
        let mut parser = PcapNgParser {
            cur: Cursor::new(bytes),
            endian: Endian::Little,
            interfaces: Vec::new(),
        };
        let first = parser.cur.u32(Endian::Little, "pcapng block type")?;
        if first != SHB_TYPE {
            return Err(IngestError::BadMagic);
        }
        parser.enter_section()?;
        Ok(parser)
    }

    /// Consumes the rest of an SHB after its type field, learning the
    /// section's byte order and resetting the interface table.
    fn enter_section(&mut self) -> Result<(), IngestError> {
        let offset = self.cur.offset();
        // Total length is byte-order dependent, but we can't know the
        // order until the byte-order magic four bytes later — read the
        // magic first, then interpret the length.
        let raw_len = self.cur.take(4, "pcapng SHB length")?;
        let magic = self.cur.u32(Endian::Little, "pcapng byte-order magic")?;
        self.endian = if magic == BYTE_ORDER_MAGIC {
            Endian::Little
        } else if magic == BYTE_ORDER_MAGIC.swap_bytes() {
            Endian::Big
        } else {
            return Err(IngestError::Malformed {
                offset,
                reason: "bad byte-order magic in section header".to_string(),
            });
        };
        let arr = [raw_len[0], raw_len[1], raw_len[2], raw_len[3]];
        let total_len = match self.endian {
            Endian::Little => u32::from_le_bytes(arr),
            Endian::Big => u32::from_be_bytes(arr),
        };
        // type (4) + len (4) + magic (4) consumed; trailer len (4) at
        // the end still to skip.
        let body_and_trailer = checked_block_rest(total_len, 12, offset)?;
        self.cur.skip(body_and_trailer, "pcapng SHB body")?;
        self.interfaces.clear();
        Ok(())
    }

    /// Parses blocks until the next packet, `None` at clean EOF.
    pub(crate) fn next_record(&mut self) -> Option<Result<CaptureRecord, IngestError>> {
        loop {
            if self.cur.is_empty() {
                return None;
            }
            match self.next_block() {
                Ok(Some(record)) => return Some(Ok(record)),
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn next_block(&mut self) -> Result<Option<CaptureRecord>, IngestError> {
        let offset = self.cur.offset();
        let block_type = self.cur.u32(self.endian, "pcapng block type")?;
        if block_type == SHB_TYPE {
            self.enter_section()?;
            return Ok(None);
        }
        let total_len = self.cur.u32(self.endian, "pcapng block length")?;
        let body_len = checked_block_rest(total_len, 12, offset)?;
        let body = self.cur.take(body_len, "pcapng block body")?;
        let trailer = self.cur.u32(self.endian, "pcapng block trailer")?;
        if trailer != total_len {
            return Err(IngestError::Malformed {
                offset,
                reason: format!("block length {total_len} != trailing length {trailer}"),
            });
        }
        match block_type {
            IDB_TYPE => {
                self.parse_idb(body, offset)?;
                Ok(None)
            }
            EPB_TYPE => self.parse_epb(body, offset).map(Some),
            // Anything else (statistics, name resolution, simple packet
            // blocks without timestamps, custom) is skipped whole.
            _ => Ok(None),
        }
    }

    fn parse_idb(&mut self, body: &[u8], offset: usize) -> Result<(), IngestError> {
        let mut cur = Cursor::new(body);
        let link = LinkType::from_wire(u32::from(cur.u16(self.endian, "IDB linktype")?))?;
        cur.u16(self.endian, "IDB reserved")?;
        cur.u32(self.endian, "IDB snaplen")?;
        let mut ticks_per_sec: u64 = 1_000_000;
        // Options: (code u16, len u16, value padded to 4 bytes)*.
        while cur.remaining() >= 4 {
            let code = cur.u16(self.endian, "IDB option code")?;
            let len = usize::from(cur.u16(self.endian, "IDB option length")?);
            if code == OPT_END {
                break;
            }
            let value = cur.take(len, "IDB option value")?;
            cur.skip(padding_to_4(len), "IDB option padding")?;
            if code == OPT_IF_TSRESOL && len == 1 {
                let raw = value[0];
                let power = u32::from(raw & 0x7F);
                ticks_per_sec = if raw & 0x80 == 0 {
                    10u64.checked_pow(power)
                } else {
                    2u64.checked_pow(power)
                }
                .ok_or_else(|| IngestError::Malformed {
                    offset,
                    reason: format!("if_tsresol 2^/10^{power} overflows"),
                })?;
            }
        }
        self.interfaces.push(Interface {
            link,
            ticks_per_sec,
        });
        Ok(())
    }

    fn parse_epb(&mut self, body: &[u8], offset: usize) -> Result<CaptureRecord, IngestError> {
        let mut cur = Cursor::new(body);
        let interface_id = cur.u32(self.endian, "EPB interface id")? as usize;
        let ts_high = cur.u32(self.endian, "EPB timestamp high")?;
        let ts_low = cur.u32(self.endian, "EPB timestamp low")?;
        let cap_len = cur.u32(self.endian, "EPB captured length")? as usize;
        let orig_len = cur.u32(self.endian, "EPB original length")?;
        let data = cur.take(cap_len, "EPB packet data")?;
        let iface = self
            .interfaces
            .get(interface_id)
            .ok_or_else(|| IngestError::Malformed {
                offset,
                reason: format!(
                    "EPB references interface {interface_id} but only {} are declared",
                    self.interfaces.len()
                ),
            })?;
        let ticks = (u64::from(ts_high) << 32) | u64::from(ts_low);
        let micros = ticks_to_micros(ticks, iface.ticks_per_sec);
        Ok(CaptureRecord {
            timestamp: Timestamp::from_micros(micros),
            wire_len: orig_len,
            tuple: decode_frame(iface.link, data),
        })
    }
}

/// Converts interface ticks to microseconds, rounding toward zero.
/// 128-bit intermediate: `ticks * 1e6` can exceed `u64` for fine
/// resolutions.
fn ticks_to_micros(ticks: u64, ticks_per_sec: u64) -> i64 {
    let micros = u128::from(ticks) * 1_000_000 / u128::from(ticks_per_sec.max(1));
    i64::try_from(micros).unwrap_or(i64::MAX)
}

/// Validates a block's total length and returns how many bytes remain
/// after `consumed` (type/length fields already read), excluding or
/// including the trailer as the caller arranged.
fn checked_block_rest(total_len: u32, consumed: u32, offset: usize) -> Result<usize, IngestError> {
    if total_len < consumed || !total_len.is_multiple_of(4) {
        return Err(IngestError::Malformed {
            offset,
            reason: format!("block length {total_len} is impossible"),
        });
    }
    Ok((total_len - consumed) as usize)
}

/// Bytes of padding aligning `len` up to a 4-byte boundary.
fn padding_to_4(len: usize) -> usize {
    len.wrapping_neg() & 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::parse_capture;
    use crate::link::{build_frame, FiveTuple};

    /// Minimal pcapng builder for tests: little- or big-endian.
    pub(crate) struct Builder {
        bytes: Vec<u8>,
        big: bool,
    }

    impl Builder {
        pub(crate) fn new(big: bool) -> Self {
            let mut b = Builder {
                bytes: Vec::new(),
                big,
            };
            // SHB: type, len 28, magic, version 1.0, section len -1.
            b.u32(SHB_TYPE);
            b.u32(28);
            b.u32(BYTE_ORDER_MAGIC);
            b.u16(1);
            b.u16(0);
            b.u32(0xFFFF_FFFF);
            b.u32(0xFFFF_FFFF);
            b.u32(28);
            b
        }

        fn u16(&mut self, v: u16) {
            let bytes = if self.big {
                v.to_be_bytes()
            } else {
                v.to_le_bytes()
            };
            self.bytes.extend_from_slice(&bytes);
        }

        fn u32(&mut self, v: u32) {
            let bytes = if self.big {
                v.to_be_bytes()
            } else {
                v.to_le_bytes()
            };
            self.bytes.extend_from_slice(&bytes);
        }

        /// IDB with an optional `if_tsresol` byte.
        pub(crate) fn idb(&mut self, link: u32, tsresol: Option<u8>) {
            // code+len+value+pad (8) plus opt_end code+len (4).
            let options_len = if tsresol.is_some() { 12 } else { 0 };
            let total = 20 + options_len;
            self.u32(IDB_TYPE);
            self.u32(total);
            self.u16(link as u16);
            self.u16(0);
            self.u32(65_535);
            if let Some(r) = tsresol {
                self.u16(OPT_IF_TSRESOL);
                self.u16(1);
                self.bytes.push(r);
                self.bytes.extend_from_slice(&[0, 0, 0]); // pad
                self.u16(OPT_END);
                self.u16(0);
            }
            self.u32(total);
        }

        /// EPB for interface `iface` with a raw tick count.
        pub(crate) fn epb(&mut self, iface: u32, ticks: u64, frame: &[u8]) {
            let padded = frame.len() + padding_to_4(frame.len());
            let total = (32 + padded) as u32;
            self.u32(EPB_TYPE);
            self.u32(total);
            self.u32(iface);
            self.u32((ticks >> 32) as u32);
            self.u32(ticks as u32);
            self.u32(frame.len() as u32);
            self.u32(frame.len() as u32);
            self.bytes.extend_from_slice(frame);
            self.bytes
                .extend_from_slice(&vec![0u8; padded - frame.len()]);
            self.u32(total);
        }

        /// An unknown block type that must be skipped.
        pub(crate) fn unknown_block(&mut self) {
            self.u32(0x0BAD_B10C);
            self.u32(16);
            self.u32(0xDEAD_BEEF);
            self.u32(16);
        }

        pub(crate) fn finish(self) -> Vec<u8> {
            self.bytes
        }
    }

    fn tuple() -> FiveTuple {
        FiveTuple::tcp_v4([10, 1, 0, 1], 3022, [10, 1, 0, 2], 22)
    }

    #[test]
    fn little_endian_epb_with_default_resolution() {
        let frame = build_frame(&tuple(), 60).unwrap();
        let mut b = Builder::new(false);
        b.idb(1, None);
        b.epb(0, 1_250_000, &frame); // default µs ticks
        let records: Vec<CaptureRecord> = parse_capture(&b.finish())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].timestamp, Timestamp::from_micros(1_250_000));
        assert_eq!(records[0].tuple, Some(tuple()));
        assert_eq!(records[0].wire_len, 60);
    }

    #[test]
    fn big_endian_sections_parse() {
        let frame = build_frame(&tuple(), 60).unwrap();
        let mut b = Builder::new(true);
        b.idb(1, None);
        b.epb(0, 42, &frame);
        let records: Vec<CaptureRecord> = parse_capture(&b.finish())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records[0].timestamp, Timestamp::from_micros(42));
    }

    #[test]
    fn if_tsresol_nanoseconds_and_power_of_two() {
        let frame = build_frame(&tuple(), 60).unwrap();
        let mut b = Builder::new(false);
        b.idb(1, Some(9)); // 10⁻⁹: nanosecond ticks
        b.idb(1, Some(0x80 | 20)); // 2⁻²⁰ ≈ 0.95 µs ticks
        b.epb(0, 1_500_300_000, &frame); // 1.5003 s in ns
        b.epb(1, 1 << 20, &frame); // exactly 1 s in 2⁻²⁰ ticks
        let records: Vec<CaptureRecord> = parse_capture(&b.finish())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records[0].timestamp, Timestamp::from_micros(1_500_300));
        assert_eq!(records[1].timestamp, Timestamp::from_secs(1));
    }

    #[test]
    fn unknown_blocks_are_skipped_and_new_sections_reset() {
        let frame = build_frame(&tuple(), 60).unwrap();
        let mut b = Builder::new(false);
        b.idb(1, None);
        b.unknown_block();
        b.epb(0, 7, &frame);
        // A second section (big-endian) with its own interface.
        let second = {
            let mut s = Builder::new(true);
            s.idb(1, None);
            s.epb(0, 9, &frame);
            s.finish()
        };
        let mut bytes = b.finish();
        bytes.extend_from_slice(&second);
        let records: Vec<CaptureRecord> = parse_capture(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].timestamp, Timestamp::from_micros(7));
        assert_eq!(records[1].timestamp, Timestamp::from_micros(9));
    }

    #[test]
    fn structural_corruption_is_an_error_not_a_panic() {
        let frame = build_frame(&tuple(), 60).unwrap();
        let mut b = Builder::new(false);
        b.idb(1, None);
        b.epb(0, 7, &frame);
        let good = b.finish();

        // EPB referencing an undeclared interface.
        let mut no_idb = Builder::new(false);
        no_idb.epb(3, 7, &frame);
        let result: Result<Vec<_>, _> = parse_capture(&no_idb.finish()).unwrap().collect();
        assert!(matches!(result, Err(IngestError::Malformed { .. })));

        // Mismatched trailer length.
        let mut torn = good.clone();
        let last4 = torn.len() - 4;
        torn[last4..].copy_from_slice(&999u32.to_le_bytes());
        let result: Result<Vec<_>, _> = parse_capture(&torn).unwrap().collect();
        assert!(matches!(result, Err(IngestError::Malformed { .. })));

        // Every truncation either errors or yields fewer records.
        for cut in 0..good.len() {
            match parse_capture(&good[..cut]) {
                Ok(iter) => {
                    let parsed: Result<Vec<_>, _> = iter.collect();
                    if let Ok(records) = parsed {
                        assert!(records.len() <= 1);
                    }
                }
                Err(e) => {
                    assert!(matches!(
                        e,
                        IngestError::BadMagic
                            | IngestError::Truncated { .. }
                            | IngestError::Malformed { .. }
                    ));
                }
            }
        }

        // An impossible block length (not a multiple of 4 / too short).
        let mut bad_len = good.clone();
        bad_len[32..36].copy_from_slice(&7u32.to_le_bytes());
        let result: Result<Vec<_>, _> = parse_capture(&bad_len).unwrap().collect();
        assert!(result.is_err());
    }
}
