//! Link/network/transport header parsing: raw frames → 5-tuples.
//!
//! The decoder understands Ethernet II (with up to two stacked 802.1Q
//! VLAN tags), IPv4, IPv6 (with the common extension headers), TCP and
//! UDP. Anything else — ARP, ICMP, fragments past the first, exotic
//! link types — decodes to `None` rather than an error: real captures
//! are full of such traffic and the demultiplexer simply counts it.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// The transport protocol of a demultiplexed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transport {
    /// IPv4/IPv6 protocol number 6.
    Tcp,
    /// IPv4/IPv6 protocol number 17.
    Udp,
}

impl Transport {
    /// The IP protocol number.
    pub const fn protocol_number(self) -> u8 {
        match self {
            Transport::Tcp => 6,
            Transport::Udp => 17,
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transport::Tcp => write!(f, "tcp"),
            Transport::Udp => write!(f, "udp"),
        }
    }
}

/// The classic unidirectional flow key: addresses, ports, protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FiveTuple {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub transport: Transport,
}

impl FiveTuple {
    /// A v4 TCP tuple (the common case in tests and exports).
    pub const fn tcp_v4(src: [u8; 4], src_port: u16, dst: [u8; 4], dst_port: u16) -> Self {
        FiveTuple {
            src: IpAddr::V4(Ipv4Addr::new(src[0], src[1], src[2], src[3])),
            dst: IpAddr::V4(Ipv4Addr::new(dst[0], dst[1], dst[2], dst[3])),
            src_port,
            dst_port,
            transport: Transport::Tcp,
        }
    }

    /// A v4 UDP tuple.
    pub const fn udp_v4(src: [u8; 4], src_port: u16, dst: [u8; 4], dst_port: u16) -> Self {
        FiveTuple {
            src: IpAddr::V4(Ipv4Addr::new(src[0], src[1], src[2], src[3])),
            dst: IpAddr::V4(Ipv4Addr::new(dst[0], dst[1], dst[2], dst[3])),
            src_port,
            dst_port,
            transport: Transport::Udp,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}/{}",
            self.src, self.src_port, self.dst, self.dst_port, self.transport
        )
    }
}

/// Link-layer framing of a capture, from the pcap `network` field /
/// pcapng IDB `linktype`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// LINKTYPE_NULL (0): 4-byte host-order AF header, then IP.
    Null,
    /// LINKTYPE_ETHERNET (1).
    Ethernet,
    /// LINKTYPE_RAW (101): bare IPv4/IPv6 packets.
    RawIp,
    /// LINKTYPE_LOOP (108): like `Null` with a network-order header.
    Loop,
}

impl LinkType {
    /// Maps a pcap/pcapng link-type number, or reports it unsupported.
    pub fn from_wire(raw: u32) -> Result<Self, crate::error::IngestError> {
        match raw {
            0 => Ok(LinkType::Null),
            1 => Ok(LinkType::Ethernet),
            101 => Ok(LinkType::RawIp),
            108 => Ok(LinkType::Loop),
            other => Err(crate::error::IngestError::UnsupportedLinkType(other)),
        }
    }

    /// The wire number used when writing captures.
    pub const fn to_wire(self) -> u32 {
        match self {
            LinkType::Null => 0,
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
            LinkType::Loop => 108,
        }
    }
}

const ETHERTYPE_IPV4: u16 = 0x0800;
const ETHERTYPE_IPV6: u16 = 0x86DD;
const ETHERTYPE_VLAN: u16 = 0x8100;
const ETHERTYPE_QINQ: u16 = 0x88A8;

/// Decodes a captured frame down to its transport 5-tuple.
///
/// Returns `None` for anything that is not a first-fragment TCP or UDP
/// packet over IPv4/IPv6 — the caller counts such packets as ignored.
pub fn decode_frame(link: LinkType, frame: &[u8]) -> Option<FiveTuple> {
    match link {
        LinkType::Ethernet => decode_ethernet(frame),
        LinkType::RawIp => decode_ip(frame),
        LinkType::Null | LinkType::Loop => decode_ip(frame.get(4..)?),
    }
}

fn decode_ethernet(frame: &[u8]) -> Option<FiveTuple> {
    let mut ethertype = u16::from_be_bytes([*frame.get(12)?, *frame.get(13)?]);
    let mut payload = frame.get(14..)?;
    // Peel up to two stacked VLAN tags (802.1Q / 802.1ad).
    for _ in 0..2 {
        if ethertype != ETHERTYPE_VLAN && ethertype != ETHERTYPE_QINQ {
            break;
        }
        ethertype = u16::from_be_bytes([*payload.get(2)?, *payload.get(3)?]);
        payload = payload.get(4..)?;
    }
    match ethertype {
        ETHERTYPE_IPV4 => decode_ipv4(payload),
        ETHERTYPE_IPV6 => decode_ipv6(payload),
        _ => None,
    }
}

fn decode_ip(packet: &[u8]) -> Option<FiveTuple> {
    match packet.first()? >> 4 {
        4 => decode_ipv4(packet),
        6 => decode_ipv6(packet),
        _ => None,
    }
}

fn decode_ipv4(packet: &[u8]) -> Option<FiveTuple> {
    let first = *packet.first()?;
    if first >> 4 != 4 {
        return None;
    }
    let header_len = usize::from(first & 0x0F) * 4;
    if header_len < 20 || packet.len() < header_len {
        return None;
    }
    // Only the first fragment carries the transport header.
    let frag = u16::from_be_bytes([packet[6], packet[7]]);
    if frag & 0x1FFF != 0 {
        return None;
    }
    let protocol = packet[9];
    let src = IpAddr::V4(Ipv4Addr::new(
        packet[12], packet[13], packet[14], packet[15],
    ));
    let dst = IpAddr::V4(Ipv4Addr::new(
        packet[16], packet[17], packet[18], packet[19],
    ));
    ports(protocol, packet.get(header_len..)?).map(|(transport, src_port, dst_port)| FiveTuple {
        src,
        dst,
        src_port,
        dst_port,
        transport,
    })
}

fn decode_ipv6(packet: &[u8]) -> Option<FiveTuple> {
    if packet.len() < 40 || packet[0] >> 4 != 6 {
        return None;
    }
    let mut sixteen = [0u8; 16];
    sixteen.copy_from_slice(&packet[8..24]);
    let src = IpAddr::V6(Ipv6Addr::from(sixteen));
    sixteen.copy_from_slice(&packet[24..40]);
    let dst = IpAddr::V6(Ipv6Addr::from(sixteen));
    let mut next = packet[6];
    let mut rest = packet.get(40..)?;
    // Walk the common extension-header chain (bounded: a hostile
    // capture cannot loop us).
    for _ in 0..8 {
        match next {
            // hop-by-hop, routing, destination options: length in
            // 8-byte units excluding the first 8.
            0 | 43 | 60 => {
                let len = 8 + usize::from(*rest.get(1)?) * 8;
                next = *rest.first()?;
                rest = rest.get(len..)?;
            }
            // fragment header: fixed 8 bytes, only offset 0 has ports.
            44 => {
                let offset = u16::from_be_bytes([*rest.get(2)?, *rest.get(3)?]) >> 3;
                if offset != 0 {
                    return None;
                }
                next = *rest.first()?;
                rest = rest.get(8..)?;
            }
            _ => break,
        }
    }
    ports(next, rest).map(|(transport, src_port, dst_port)| FiveTuple {
        src,
        dst,
        src_port,
        dst_port,
        transport,
    })
}

fn ports(protocol: u8, segment: &[u8]) -> Option<(Transport, u16, u16)> {
    let transport = match protocol {
        6 => Transport::Tcp,
        17 => Transport::Udp,
        _ => return None,
    };
    let src = u16::from_be_bytes([*segment.first()?, *segment.get(1)?]);
    let dst = u16::from_be_bytes([*segment.get(2)?, *segment.get(3)?]);
    Some((transport, src, dst))
}

const ETHERNET_LEN: u32 = 14;
const IPV4_LEN: u32 = 20;
const IPV6_LEN: u32 = 40;
const UDP_LEN: u32 = 8;
const TCP_LEN: u32 = 20;

/// The smallest Ethernet frame that can carry `tuple`'s headers; the
/// floor a written packet's wire length must meet.
pub fn min_frame_len(tuple: &FiveTuple) -> u32 {
    let ip = match tuple.src {
        IpAddr::V4(_) => IPV4_LEN,
        IpAddr::V6(_) => IPV6_LEN,
    };
    let transport = match tuple.transport {
        Transport::Tcp => TCP_LEN,
        Transport::Udp => UDP_LEN,
    };
    ETHERNET_LEN + ip + transport
}

/// Builds an Ethernet frame of exactly `wire_len` bytes carrying
/// `tuple`'s headers and a zero-filled payload.
///
/// Checksums are left zero — the stepstone readers (and tcpdump) do not
/// verify them, and synthesising valid ones would add nothing to the
/// timing-only round-trip.
///
/// Returns `None` when `wire_len` is below [`min_frame_len`].
pub fn build_frame(tuple: &FiveTuple, wire_len: u32) -> Option<Vec<u8>> {
    let min = min_frame_len(tuple);
    if wire_len < min {
        return None;
    }
    let total = wire_len as usize;
    let mut frame = vec![0u8; total];
    // Ethernet: locally-administered MACs derived from the ports so
    // frames look plausible in external tools.
    frame[0..6].copy_from_slice(&[0x02, 0, 0, 0, tuple.dst_port.to_be_bytes()[0], 1]);
    frame[6..12].copy_from_slice(&[0x02, 0, 0, 0, tuple.src_port.to_be_bytes()[0], 2]);
    let ip_total = (wire_len - ETHERNET_LEN) as u16;
    let transport_offset;
    match (tuple.src, tuple.dst) {
        (IpAddr::V4(src), IpAddr::V4(dst)) => {
            frame[12..14].copy_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
            let ip = &mut frame[14..34];
            ip[0] = 0x45;
            ip[2..4].copy_from_slice(&ip_total.to_be_bytes());
            ip[8] = 64;
            ip[9] = tuple.transport.protocol_number();
            ip[12..16].copy_from_slice(&src.octets());
            ip[16..20].copy_from_slice(&dst.octets());
            transport_offset = (ETHERNET_LEN + IPV4_LEN) as usize;
        }
        (IpAddr::V6(src), IpAddr::V6(dst)) => {
            frame[12..14].copy_from_slice(&ETHERTYPE_IPV6.to_be_bytes());
            let payload_len = ip_total - IPV6_LEN as u16;
            let ip = &mut frame[14..54];
            ip[0] = 0x60;
            ip[4..6].copy_from_slice(&payload_len.to_be_bytes());
            ip[6] = tuple.transport.protocol_number();
            ip[7] = 64;
            ip[8..24].copy_from_slice(&src.octets());
            ip[24..40].copy_from_slice(&dst.octets());
            transport_offset = (ETHERNET_LEN + IPV6_LEN) as usize;
        }
        // Mixed address families cannot share one IP header.
        _ => return None,
    }
    let t = &mut frame[transport_offset..];
    t[0..2].copy_from_slice(&tuple.src_port.to_be_bytes());
    t[2..4].copy_from_slice(&tuple.dst_port.to_be_bytes());
    match tuple.transport {
        Transport::Udp => {
            let udp_len = (total - transport_offset) as u16;
            t[4..6].copy_from_slice(&udp_len.to_be_bytes());
        }
        Transport::Tcp => {
            // Data offset 5 (no options), ACK set.
            t[12] = 5 << 4;
            t[13] = 0x10;
        }
    }
    Some(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_udp_v4_roundtrips() {
        let tuple = FiveTuple::udp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 53);
        let frame = build_frame(&tuple, 64).unwrap();
        assert_eq!(frame.len(), 64);
        assert_eq!(decode_frame(LinkType::Ethernet, &frame), Some(tuple));
    }

    #[test]
    fn ethernet_tcp_v4_roundtrips() {
        let tuple = FiveTuple::tcp_v4([192, 168, 1, 9], 50_000, [172, 16, 0, 1], 22);
        let frame = build_frame(&tuple, 60).unwrap();
        assert_eq!(decode_frame(LinkType::Ethernet, &frame), Some(tuple));
    }

    #[test]
    fn ipv6_tcp_roundtrips() {
        let tuple = FiveTuple {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            src_port: 1234,
            dst_port: 22,
            transport: Transport::Tcp,
        };
        let frame = build_frame(&tuple, min_frame_len(&tuple)).unwrap();
        assert_eq!(decode_frame(LinkType::Ethernet, &frame), Some(tuple));
    }

    #[test]
    fn vlan_tags_are_peeled() {
        let tuple = FiveTuple::udp_v4([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        let plain = build_frame(&tuple, 64).unwrap();
        // Splice one 802.1Q tag after the MACs.
        let mut tagged = plain[..12].to_vec();
        tagged.extend_from_slice(&ETHERTYPE_VLAN.to_be_bytes());
        tagged.extend_from_slice(&[0x00, 0x2A]); // VID 42
        tagged.extend_from_slice(&plain[12..]);
        assert_eq!(decode_frame(LinkType::Ethernet, &tagged), Some(tuple));
    }

    #[test]
    fn raw_and_null_link_types_decode() {
        let tuple = FiveTuple::udp_v4([1, 2, 3, 4], 5, [6, 7, 8, 9], 10);
        let frame = build_frame(&tuple, 64).unwrap();
        let ip = &frame[14..];
        assert_eq!(decode_frame(LinkType::RawIp, ip), Some(tuple));
        let mut with_af = vec![2, 0, 0, 0];
        with_af.extend_from_slice(ip);
        assert_eq!(decode_frame(LinkType::Null, &with_af), Some(tuple));
        assert_eq!(decode_frame(LinkType::Loop, &with_af), Some(tuple));
    }

    #[test]
    fn non_ip_and_non_transport_traffic_is_ignored() {
        // ARP ethertype.
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(decode_frame(LinkType::Ethernet, &arp), None);
        // ICMP over IPv4.
        let tuple = FiveTuple::udp_v4([1, 1, 1, 1], 1, [2, 2, 2, 2], 2);
        let mut icmp = build_frame(&tuple, 64).unwrap();
        icmp[23] = 1; // protocol = ICMP
        assert_eq!(decode_frame(LinkType::Ethernet, &icmp), None);
        // Non-first IPv4 fragment.
        let mut frag = build_frame(&tuple, 64).unwrap();
        frag[20] = 0x00;
        frag[21] = 0x08; // fragment offset 8
        assert_eq!(decode_frame(LinkType::Ethernet, &frag), None);
    }

    #[test]
    fn truncated_frames_are_ignored_not_panicking() {
        let tuple = FiveTuple::tcp_v4([9, 9, 9, 9], 1, [8, 8, 8, 8], 2);
        let frame = build_frame(&tuple, 60).unwrap();
        for cut in 0..frame.len() {
            // Every prefix decodes to Some or None, never a panic.
            let _ = decode_frame(LinkType::Ethernet, &frame[..cut]);
        }
    }

    #[test]
    fn frames_below_the_minimum_are_refused() {
        let tuple = FiveTuple::udp_v4([1, 2, 3, 4], 5, [6, 7, 8, 9], 10);
        assert_eq!(min_frame_len(&tuple), 42);
        assert!(build_frame(&tuple, 41).is_none());
        assert!(build_frame(&tuple, 42).is_some());
        let mixed = FiveTuple {
            src: "10.0.0.1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            src_port: 1,
            dst_port: 2,
            transport: Transport::Udp,
        };
        assert!(build_frame(&mixed, 100).is_none());
    }

    #[test]
    fn link_type_numbers_roundtrip() {
        for lt in [
            LinkType::Null,
            LinkType::Ethernet,
            LinkType::RawIp,
            LinkType::Loop,
        ] {
            assert_eq!(LinkType::from_wire(lt.to_wire()).unwrap(), lt);
        }
        assert!(LinkType::from_wire(147).is_err());
    }

    #[test]
    fn tuple_display_reads_naturally() {
        let t = FiveTuple::tcp_v4([10, 0, 0, 1], 4000, [10, 0, 0, 2], 22);
        assert_eq!(t.to_string(), "10.0.0.1:4000 -> 10.0.0.2:22/tcp");
    }
}
