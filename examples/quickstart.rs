//! Quickstart: watermark a flow, attack it, detect it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stepstone::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The attacker's interactive SSH session as seen on the first
    //    hop (synthetic, deterministic).
    let session = SessionGenerator::new(InteractiveProfile::ssh()).generate(
        1000,
        Timestamp::ZERO,
        &mut Seed::new(7).rng(0),
    );
    println!(
        "session: {} packets over {:.0}s ({:.2} pkt/s)",
        session.len(),
        session.duration().as_secs_f64(),
        session.mean_rate()
    );

    // 2. The defender embeds a secret 24-bit IPD watermark.
    let marker = IpdWatermarker::new(WatermarkKey::new(0x5EC2E7), WatermarkParams::paper());
    let watermark = Watermark::random(24, &mut WatermarkKey::new(1).rng(1));
    let marked = marker.embed(&session, &watermark)?;
    println!("watermark: {watermark}");

    // 3. Downstream, the attacker perturbs timing by up to 7 seconds and
    //    injects Poisson chaff at 3 packets/second.
    let suspicious = AdversaryPipeline::new()
        .then(UniformPerturbation::new(TimeDelta::from_secs(7)))
        .then(ChaffInjector::new(ChaffModel::Poisson { rate: 3.0 }))
        .apply(&marked, Seed::new(99));
    println!(
        "suspicious flow: {} packets ({} chaff)",
        suspicious.len(),
        suspicious.chaff_count()
    );

    // 4. The basic watermark scheme (no matching) is destroyed by chaff…
    let basic = BasicWatermarkDetector::new(marker, watermark.clone(), &session)?;
    println!("basic WM scheme: {}", basic.correlate(&suspicious));

    // 5. …but the Greedy+ best-watermark search still finds it.
    for algorithm in [
        Algorithm::Greedy,
        Algorithm::GreedyPlus,
        Algorithm::optimal_paper(),
    ] {
        let correlator = WatermarkCorrelator::new(
            marker,
            watermark.clone(),
            TimeDelta::from_secs(7),
            algorithm,
        );
        let outcome = correlator
            .prepare(&session, &marked)?
            .correlate(&suspicious);
        println!("{algorithm:<12} → {outcome}");
    }
    Ok(())
}
