//! Trace an intruder through a stepping-stone chain.
//!
//! Scenario: an attacker connects `origin → relay₁ → relay₂ → victim`.
//! The defender watermarks the flow observed at the first hop; at the
//! victim's network, many flows are visible and one of them — perturbed
//! and padded with chaff by the attacker — is the relayed session. The
//! correlator must pick it out.
//!
//! ```sh
//! cargo run --release --example trace_an_intruder
//! ```

use stepstone::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = Seed::new(0xA77AC8);
    let delta = TimeDelta::from_secs(5);

    // The attacker's session, watermarked by the defender at hop 1.
    let session = SessionGenerator::new(InteractiveProfile::ssh()).generate(
        1200,
        Timestamp::ZERO,
        &mut seed.child(0).rng(0),
    );
    let marker = IpdWatermarker::new(WatermarkKey::new(0xFEE1), WatermarkParams::paper());
    let watermark = Watermark::random(24, &mut WatermarkKey::new(2).rng(1));
    let marked = marker.embed(&session, &watermark)?;

    // The marked flow crosses two stepping stones (simulated network).
    let chain = SteppingStoneChain::builder()
        .hop(TimeDelta::from_millis(35), TimeDelta::from_millis(20))
        .hop(TimeDelta::from_millis(90), TimeDelta::from_millis(40))
        .build();
    let relayed = chain.simulate(&marked, seed.child(1)).last().clone();

    // The attacker additionally perturbs and injects chaff at the exit.
    let attacked = AdversaryPipeline::new()
        .then(UniformPerturbation::new(TimeDelta::from_secs(4)))
        .then(ChaffInjector::new(ChaffModel::Mimic { rate: 2.0 }))
        .apply(&relayed, seed.child(2));

    // The victim's network sees many interactive flows; flow #3 is ours.
    let mut candidates: Vec<Flow> = (0..6)
        .map(|i| {
            SessionGenerator::new(InteractiveProfile::telnet()).generate(
                1000,
                Timestamp::ZERO,
                &mut seed.child(100 + i).rng(0),
            )
        })
        .collect();
    candidates[3] = attacked;

    // Correlate every candidate against the watermarked upstream flow.
    let correlator = WatermarkCorrelator::new(marker, watermark, delta, Algorithm::GreedyPlus);
    let prepared = correlator.prepare(&session, &marked)?;
    println!("candidate  verdict");
    let mut hits = Vec::new();
    for (i, flow) in candidates.iter().enumerate() {
        let outcome = prepared.correlate(flow);
        println!("#{i}         {outcome}");
        if outcome.correlated {
            hits.push(i);
        }
    }
    assert_eq!(hits, vec![3], "expected to identify exactly candidate #3");
    println!("→ the intruder's exit flow is candidate #3");
    Ok(())
}
