//! Sweep the chaff rate and watch each scheme's detection rate — a
//! miniature of the paper's Figure 3, printed as a table and an ASCII
//! chart.
//!
//! ```sh
//! cargo run --release --example chaff_resistance_sweep
//! ```

use stepstone::experiments::{figures, ExperimentConfig, Scale};

fn main() {
    // A small deterministic configuration (≈ seconds of work); swap in
    // `Scale::Default` or `Scale::Full` for the paper-scale sweep.
    let cfg = ExperimentConfig::new(Scale::Quick);
    println!("{}", figures::table1(&cfg));

    let fig3 = figures::fig3(&cfg);
    println!("{}", fig3.to_table());
    println!("{}", fig3.to_ascii_chart(48));

    // What to look for (the paper's observations):
    //  * "wm" collapses as soon as chaff appears;
    //  * "greedy", "greedy+", "optimal" stay near 1.0 — the best
    //    watermark is recovered through the chaff;
    //  * "zhang" is weakest with no chaff and improves as chaff offers
    //    its matcher more choices.
    let wm_at_3 = fig3
        .series_by_label("wm")
        .and_then(|s| s.y_at(3.0))
        .unwrap_or_default();
    let gp_at_3 = fig3
        .series_by_label("greedy+")
        .and_then(|s| s.y_at(3.0))
        .unwrap_or_default();
    println!(
        "at λc = 3: basic WM detects {:.0}%, Greedy+ detects {:.0}%",
        wm_at_3 * 100.0,
        gp_at_3 * 100.0
    );
}
