//! Passive vs. active correlation on the same attacked flows.
//!
//! Active watermarking manipulates traffic (noticeable, but robust);
//! passive schemes only observe (stealthy, but weaker). This example
//! runs four baselines plus Greedy+ against identical inputs to make
//! the §5 trade-off concrete.
//!
//! ```sh
//! cargo run --release --example passive_vs_active
//! ```

use stepstone::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let delta = TimeDelta::from_secs(4);
    let trials = 10;
    let mut detections = [0u32; 5];
    for trial in 0..trials {
        let seed = Seed::new(1000 + trial);
        let session = SessionGenerator::new(InteractiveProfile::ssh()).generate(
            1000,
            Timestamp::ZERO,
            &mut seed.rng(0),
        );
        let marker = IpdWatermarker::new(WatermarkKey::new(trial), WatermarkParams::paper());
        let watermark = Watermark::random(24, &mut WatermarkKey::new(trial).rng(1));
        let marked = marker.embed(&session, &watermark)?;
        let attacked = AdversaryPipeline::new()
            .then(UniformPerturbation::new(delta))
            .then(ChaffInjector::new(ChaffModel::Poisson { rate: 2.0 }))
            .apply(&marked, seed.child(9));

        // Active: Greedy+ and the basic watermark scheme.
        let active =
            WatermarkCorrelator::new(marker, watermark.clone(), delta, Algorithm::GreedyPlus);
        if active
            .prepare(&session, &marked)?
            .correlate(&attacked)
            .correlated
        {
            detections[0] += 1;
        }
        if BasicWatermarkDetector::new(marker, watermark, &session)?
            .correlate(&attacked)
            .correlated
        {
            detections[1] += 1;
        }
        // Passive: Zhang-Guan deviation, IPD correlation, packet counts.
        if ZhangGuanDetector::paper(delta)
            .correlate(&marked, &attacked)
            .correlated
        {
            detections[2] += 1;
        }
        if IpdCorrelationDetector::new(0.8)
            .correlate(&marked, &attacked)
            .correlated
        {
            detections[3] += 1;
        }
        if PacketCountingDetector::for_rate(marked.mean_rate() * 4.0, delta)
            .correlate(&marked, &attacked)
            .correlated
        {
            detections[4] += 1;
        }
    }

    let names = [
        ("greedy+ (active, this paper)", true),
        ("basic watermark (active, ref 7)", true),
        ("zhang-guan deviation (passive, ref 11)", false),
        ("ipd correlation (passive, ref 8)", false),
        ("packet counting (passive, ref 1)", false),
    ];
    println!(
        "attack: ≤{}s perturbation + 2 pkt/s chaff, {trials} trials\n",
        delta.as_secs_f64()
    );
    println!("{:<42} {:>10} {:>10}", "scheme", "detected", "traffic?");
    for (k, (name, manipulates)) in names.iter().enumerate() {
        println!(
            "{:<42} {:>10} {:>11}",
            name,
            format!("{}/{}", detections[k], trials),
            if *manipulates {
                "manipulates"
            } else {
                "observes"
            }
        );
    }
    Ok(())
}
