//! Cross-crate integration: the full pipeline through the facade crate.

use stepstone::prelude::*;

fn marked_session(seed: u64) -> (Flow, Flow, IpdWatermarker, Watermark) {
    let session = SessionGenerator::new(InteractiveProfile::ssh()).generate(
        1000,
        Timestamp::ZERO,
        &mut Seed::new(seed).rng(0),
    );
    let marker = IpdWatermarker::new(WatermarkKey::new(seed ^ 0xFACE), WatermarkParams::paper());
    let watermark = Watermark::random(24, &mut WatermarkKey::new(seed).rng(1));
    let marked = marker.embed(&session, &watermark).unwrap();
    (session, marked, marker, watermark)
}

#[test]
fn watermark_survives_a_simulated_chain_plus_adversary() {
    let (session, marked, marker, watermark) = marked_session(1);
    // Through a two-hop simulated chain…
    let chain = SteppingStoneChain::builder()
        .hop(TimeDelta::from_millis(40), TimeDelta::from_millis(25))
        .hop(TimeDelta::from_millis(60), TimeDelta::from_millis(30))
        .build();
    let relayed = chain.simulate(&marked, Seed::new(2)).last().clone();
    // …then a hostile exit node.
    let attacked = AdversaryPipeline::new()
        .then(UniformPerturbation::new(TimeDelta::from_secs(3)))
        .then(ChaffInjector::new(ChaffModel::Poisson { rate: 2.0 }))
        .apply(&relayed, Seed::new(3));

    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(4), // covers chain + deliberate perturbation
        Algorithm::GreedyPlus,
    );
    let outcome = correlator
        .prepare(&session, &marked)
        .unwrap()
        .correlate(&attacked);
    assert!(outcome.correlated, "{outcome}");
}

#[test]
fn every_adversary_model_is_survivable_or_detected_failing() {
    let (session, marked, marker, watermark) = marked_session(4);
    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(4),
        Algorithm::GreedyPlus,
    );
    let prepared = correlator.prepare(&session, &marked).unwrap();

    // Every chaff model at a moderate rate.
    for model in [
        ChaffModel::Poisson { rate: 2.0 },
        ChaffModel::Bursty {
            rate: 2.0,
            burst_len: 4,
        },
        ChaffModel::Mimic { rate: 2.0 },
    ] {
        let attacked = AdversaryPipeline::new()
            .then(UniformPerturbation::new(TimeDelta::from_secs(3)))
            .then(ChaffInjector::new(model))
            .apply(&marked, Seed::new(5));
        let outcome = prepared.correlate(&attacked);
        assert!(outcome.correlated, "{model:?}: {outcome}");
    }
}

#[test]
fn traces_roundtrip_through_the_io_formats() {
    let (_, marked, _, _) = marked_session(6);
    let attacked = AdversaryPipeline::new()
        .then(ChaffInjector::new(ChaffModel::Poisson { rate: 1.0 }))
        .apply(&marked, Seed::new(7));
    let mut text = Vec::new();
    stepstone::traffic::io::write_text(&mut text, &attacked).unwrap();
    assert_eq!(
        stepstone::traffic::io::read_text(text.as_slice()).unwrap(),
        attacked
    );
    let mut binary = Vec::new();
    stepstone::traffic::io::write_binary(&mut binary, &attacked).unwrap();
    assert_eq!(
        stepstone::traffic::io::read_binary(binary.as_slice()).unwrap(),
        attacked
    );
}

#[test]
fn corpus_flows_all_host_the_paper_watermark() {
    for flow in corpus::bell_labs_like(8, 1000, Seed::new(8)) {
        let marker = IpdWatermarker::new(WatermarkKey::new(9), WatermarkParams::paper());
        let watermark = Watermark::random(24, &mut WatermarkKey::new(10).rng(1));
        assert!(marker.embed(&flow, &watermark).is_ok());
    }
}

#[test]
fn loss_breaks_assumption_one_gracefully() {
    let (session, marked, marker, watermark) = marked_session(11);
    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(2),
        Algorithm::GreedyPlus,
    );
    let prepared = correlator.prepare(&session, &marked).unwrap();
    // No loss: detected.
    let clean = AdversaryPipeline::new()
        .then(UniformPerturbation::new(TimeDelta::from_secs(1)))
        .apply(&marked, Seed::new(12));
    assert!(prepared.correlate(&clean).correlated);
    // Heavy loss: the flows genuinely stop being matchable one-to-one;
    // the correlator must return a clean negative, not panic.
    let lossy = AdversaryPipeline::new()
        .then(PacketLoss::new(0.3))
        .apply(&marked, Seed::new(13));
    let outcome = prepared.correlate(&lossy);
    assert!(!outcome.correlated, "{outcome}");
}

#[test]
fn prelude_reexports_are_usable_together() {
    // Compile-time check that the prelude covers the whole story; a few
    // spot runtime checks to keep it honest.
    let flow = Flow::from_timestamps((0..10).map(Timestamp::from_secs)).unwrap();
    assert_eq!(flow.len(), 10);
    let p = PoissonProcess::new(1.0);
    assert_eq!(p.rate(), 1.0);
    let r = Repacketizer::new(TimeDelta::from_millis(10));
    assert_eq!(r.window(), TimeDelta::from_millis(10));
    let d = PacketCountingDetector::new(3);
    assert_eq!(d.bound(), 3);
    let i = IpdCorrelationDetector::new(0.9);
    assert_eq!(i.threshold(), 0.9);
}

#[test]
fn watermark_survives_a_chaff_injecting_chain() {
    // The in-line variant of the threat model: the stepping stones
    // themselves generate cover traffic, instead of a post-hoc injector.
    let (session, marked, marker, watermark) = marked_session(20);
    let chain = SteppingStoneChain::builder()
        .hop(TimeDelta::from_millis(50), TimeDelta::from_millis(30))
        .with_chaff(2.0)
        .hop(TimeDelta::from_millis(70), TimeDelta::from_millis(35))
        .with_chaff(1.0)
        .build();
    let observed = chain.simulate(&marked, Seed::new(21)).last().clone();
    assert!(observed.chaff_count() > 0);

    let correlator = WatermarkCorrelator::new(
        marker,
        watermark,
        TimeDelta::from_secs(1), // chain adds well under a second
        Algorithm::GreedyPlus,
    );
    let outcome = correlator
        .prepare(&session, &marked)
        .unwrap()
        .correlate(&observed);
    assert!(outcome.correlated, "{outcome}");
}
