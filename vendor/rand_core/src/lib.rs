//! Vendored stub of `rand_core`: the two traits the workspace relies on.
//!
//! See `vendor/README.md` for scope and caveats.

/// A source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with SplitMix64 so
    /// adjacent seed values produce unrelated states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }
    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    #[test]
    fn seed_from_u64_differs_for_adjacent_seeds() {
        let a = Counter::seed_from_u64(1).0;
        let b = Counter::seed_from_u64(2).0;
        assert_ne!(a, b);
        assert!(a.abs_diff(b) > 1_000_000);
    }
}
