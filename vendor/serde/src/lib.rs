//! Vendored stub of `serde`: marker traits plus no-op derives.
//!
//! Nothing in this workspace serializes values at runtime — the
//! `#[derive(Serialize, Deserialize)]` annotations exist so types stay
//! source-compatible with the upstream crate. The derive macros expand
//! to nothing, and these traits are plain markers; see
//! `vendor/README.md`.

/// Marker for types that upstream `serde` could serialize.
pub trait Serialize {}

/// Marker for types that upstream `serde` could deserialize.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
