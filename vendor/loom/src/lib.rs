//! API-compatible stress-testing stand-in for the `loom` model
//! checker. See README.md: real threads + randomized scheduling noise,
//! not exhaustive interleaving search.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::AtomicU64 as StdSeed;
use std::sync::atomic::Ordering as StdOrdering;

/// Global seed source; every thread derives its scheduling RNG from it
/// so each `model` iteration and each spawned thread observes a
/// different interleaving.
static SEED: StdSeed = StdSeed::new(0x9E37_79B9_7F4A_7C15);

thread_local! {
    static RNG: Cell<u64> = Cell::new(0);
}

fn next_rand() -> u64 {
    RNG.with(|slot| {
        let mut state = slot.get();
        if state == 0 {
            state = SEED.fetch_add(0x9E37_79B9_7F4A_7C15, StdOrdering::Relaxed) | 1;
        }
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        slot.set(state);
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Injects a scheduling perturbation: ~1/4 of calls yield, ~1/32 spin
/// for a short random burst.
fn maybe_yield() {
    let r = next_rand();
    if r & 0b11 == 0 {
        std::thread::yield_now();
    } else if r & 0b1_1111 == 1 {
        for _ in 0..(r >> 59) {
            std::hint::spin_loop();
        }
    }
}

/// Runs `f` repeatedly (`LOOM_ITERS` iterations, default 64), each
/// time with fresh scheduling noise. Panics propagate to the caller on
/// the iteration that failed.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters: usize = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for _ in 0..iters {
        RNG.with(|slot| slot.set(0));
        f();
    }
}

/// Thread utilities mirroring `loom::thread`.
pub mod thread {
    /// Spawns a real thread whose scheduling RNG is freshly seeded.
    pub fn spawn<F, T>(f: F) -> std::thread::JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::maybe_yield();
            f()
        })
    }

    /// Re-export of [`std::thread::yield_now`].
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

/// Synchronization primitives mirroring `loom::sync`.
pub mod sync {
    pub use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};

    /// Atomics that inject scheduling noise before every operation.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// Memory fence plus a scheduling perturbation.
        pub fn fence(order: Ordering) {
            crate::maybe_yield();
            std::sync::atomic::fence(order);
        }

        macro_rules! atomic {
            ($name:ident, $std:ty, $int:ty) => {
                /// Noise-injecting wrapper around the std atomic.
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Creates a new atomic with the given value.
                    pub fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Atomic load with scheduling noise.
                    pub fn load(&self, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.load(order)
                    }

                    /// Atomic store with scheduling noise.
                    pub fn store(&self, v: $int, order: Ordering) {
                        crate::maybe_yield();
                        self.0.store(v, order)
                    }

                    /// Atomic add with scheduling noise.
                    pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.fetch_add(v, order)
                    }

                    /// Atomic subtract with scheduling noise.
                    pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.fetch_sub(v, order)
                    }

                    /// Atomic swap with scheduling noise.
                    pub fn swap(&self, v: $int, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.swap(v, order)
                    }

                    /// Atomic compare-exchange with scheduling noise.
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        crate::maybe_yield();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

        /// Noise-injecting wrapper around `std::sync::atomic::AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic with the given value.
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load with scheduling noise.
            pub fn load(&self, order: Ordering) -> bool {
                crate::maybe_yield();
                self.0.load(order)
            }

            /// Atomic store with scheduling noise.
            pub fn store(&self, v: bool, order: Ordering) {
                crate::maybe_yield();
                self.0.store(v, order)
            }

            /// Atomic swap with scheduling noise.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                crate::maybe_yield();
                self.0.swap(v, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_and_atomics_count() {
        use crate::sync::atomic::{AtomicUsize, Ordering};
        use crate::sync::Arc;
        crate::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    crate::thread::spawn(move || {
                        for _ in 0..100 {
                            // ordering: test counter, no publication
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
            // ordering: test counter, no publication
            assert_eq!(n.load(Ordering::Relaxed), 200);
        });
    }
}
