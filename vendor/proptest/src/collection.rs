//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A bounded size for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.sample(rng)?);
        }
        Some(out)
    }
}
