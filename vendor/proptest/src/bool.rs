//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A fair coin.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any;

/// The canonical fair-coin strategy (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.gen())
    }
}
