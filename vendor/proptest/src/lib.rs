//! Vendored stub of `proptest`: deterministic randomized property
//! testing over the strategy combinators this workspace uses.
//!
//! Differences from upstream (see `vendor/README.md`): no shrinking — a
//! failing case prints the generated inputs verbatim — and
//! `*.proptest-regressions` files are ignored. Case counts come from
//! [`ProptestConfig`] or the `PROPTEST_CASES` environment variable.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import used by test files: strategies, config, macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, v in proptest::collection::vec(0i64..9, 0..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ($($s,)+);
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    &strategy,
                    |__proptest_values| {
                        let ($($p,)+) = __proptest_values;
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}
