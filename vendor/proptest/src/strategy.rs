//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking: `sample` either
/// produces a value or rejects the attempt (`None`, e.g. a failed
/// [`prop_filter`](Strategy::prop_filter) predicate), in which case the
/// runner resamples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value, or `None` to reject this attempt.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Rejects values failing `pred`; `reason` labels the rejection.
    fn prop_filter<F, R>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
        R: Into<String>,
    {
        Filter {
            base: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Generates an intermediate value, then samples the strategy `f`
    /// builds from it (for dependent inputs, e.g. a vector and an index
    /// into it).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.base.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    base: S,
    #[allow(dead_code)]
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        (self.f)(self.base.sample(rng)?).sample(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
