//! The case runner: deterministic RNG, config, and failure reporting.

use crate::strategy::Strategy;
use rand_chacha::rand_core::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The RNG strategies draw from.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected samples (failed filters) tolerated per test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

/// A failed assertion inside a property (from `prop_assert!` et al.).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives `body` over `config.cases` sampled inputs.
///
/// Deterministic: the RNG seed derives from the test name and the case
/// index, so a failure reproduces on rerun. On failure the generated
/// inputs are printed (upstream proptest would shrink them; this stub
/// reports them as-is).
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) when a case fails or when
/// too many samples are rejected by filters.
pub fn run_cases<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: Clone + Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let base_seed = hasher.finish();

    let mut rejects: u32 = 0;
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(base_seed ^ (case as u64).wrapping_mul(0x9E37));
        let value = loop {
            match strategy.sample(&mut rng) {
                Some(v) => break v,
                None => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest stub: {name} rejected {rejects} samples; \
                         filter too strict for {} cases",
                        config.cases
                    );
                }
            }
        };
        let shown = value.clone();
        match catch_unwind(AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                panic!(
                    "proptest case failed: {name} (case {case}/{})\n\
                     input: {shown:?}\n{e}",
                    config.cases
                );
            }
            Err(panic) => {
                eprintln!(
                    "proptest case panicked: {name} (case {case}/{})\ninput: {shown:?}",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let strat = 0u64..1_000_000;
        let mut first = Vec::new();
        run_cases("det", &ProptestConfig::with_cases(16), &strat, |v| {
            first.push(v);
            Ok(())
        });
        let mut second = Vec::new();
        run_cases("det", &ProptestConfig::with_cases(16), &strat, |v| {
            second.push(v);
            Ok(())
        });
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != first[0]), "values never vary");
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_assertion_panics_with_input() {
        run_cases("fails", &ProptestConfig::with_cases(8), &(0u64..10), |v| {
            prop_assert!(v < 3, "v was {v}");
            Ok(())
        });
    }

    #[test]
    fn filters_resample() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        run_cases("filter", &ProptestConfig::with_cases(32), &strat, |v| {
            prop_assert_eq!(v % 2, 0);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_front_door(
            v in crate::collection::vec(0i32..50, 0..6),
            flag in crate::bool::ANY,
            (lo, hi) in (0u8..10).prop_flat_map(|l| (Just(l), l..10)),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(lo <= hi);
            let _ = flag;
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|&x| x < 50));
        }
    }
}
