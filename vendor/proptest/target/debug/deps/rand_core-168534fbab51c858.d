/root/repo/vendor/proptest/target/debug/deps/rand_core-168534fbab51c858.d: /root/repo/vendor/rand_core/src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/librand_core-168534fbab51c858.rlib: /root/repo/vendor/rand_core/src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/librand_core-168534fbab51c858.rmeta: /root/repo/vendor/rand_core/src/lib.rs

/root/repo/vendor/rand_core/src/lib.rs:
