/root/repo/vendor/proptest/target/debug/deps/rand-62e7b99f3339d9b4.d: /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/rand/src/distributions.rs /root/repo/vendor/rand/src/seq.rs

/root/repo/vendor/proptest/target/debug/deps/librand-62e7b99f3339d9b4.rlib: /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/rand/src/distributions.rs /root/repo/vendor/rand/src/seq.rs

/root/repo/vendor/proptest/target/debug/deps/librand-62e7b99f3339d9b4.rmeta: /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/rand/src/distributions.rs /root/repo/vendor/rand/src/seq.rs

/root/repo/vendor/rand/src/lib.rs:
/root/repo/vendor/rand/src/distributions.rs:
/root/repo/vendor/rand/src/seq.rs:
