/root/repo/vendor/proptest/target/debug/deps/proptest-85ce1e1d8e6bad2a.d: src/lib.rs src/bool.rs src/collection.rs src/strategy.rs src/test_runner.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-85ce1e1d8e6bad2a: src/lib.rs src/bool.rs src/collection.rs src/strategy.rs src/test_runner.rs

src/lib.rs:
src/bool.rs:
src/collection.rs:
src/strategy.rs:
src/test_runner.rs:
