//! Sequence helpers: shuffling and choosing from slices.

use crate::distributions::uniform::SampleUniform;
use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_closed(rng, 0, i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(usize::sample_half_open(rng, 0, self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_core::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not stay sorted");
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let v: [u32; 0] = [];
        assert!(v.choose(&mut rng).is_none());
        assert_eq!([7].choose(&mut rng), Some(&7));
    }
}
