//! Distributions: the `Standard` distribution and uniform ranges.

use crate::Rng;
use std::marker::PhantomData;

/// A type that can produce values of `T` from an RNG.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Turns the distribution plus an owned RNG into an iterator.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: Rng,
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            _marker: PhantomData,
        }
    }
}

/// Iterator returned by [`Distribution::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// The "natural" uniform distribution for primitive types: full range
/// for integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {
        $(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )+
    };
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    u128 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<i128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as i128
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from ranges.

    use super::{Distribution, Standard};
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a bounded interval.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`; `high` must be > `low`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Samples uniformly from `[low, high]`; `high` must be ≥ `low`.
        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),+ $(,)?) => {
            $(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                        // Span fits in u128 for every primitive width; the
                        // modulo bias is < span / 2^64, negligible for the
                        // spans this workspace samples.
                        let span = (high as i128 - low as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (low as i128 + offset as i128) as $t
                    }
                    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                        let span = (high as i128 - low as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128) % span;
                        (low as i128 + offset as i128) as $t
                    }
                }
            )+
        };
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
            let unit: f64 = Standard.sample(rng);
            let value = low + unit * (high - low);
            // Guard against rounding up to the open bound.
            if value < high {
                value
            } else {
                low
            }
        }
        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
            let unit: f64 = Standard.sample(rng);
            low + unit * (high - low)
        }
    }

    impl SampleUniform for f32 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
            let unit: f32 = Standard.sample(rng);
            let value = low + unit * (high - low);
            if value < high {
                value
            } else {
                low
            }
        }
        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
            let unit: f32 = Standard.sample(rng);
            low + unit * (high - low)
        }
    }

    /// Range types accepted by [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// `true` when the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_closed(rng, *self.start(), *self.end())
        }
        fn is_empty(&self) -> bool {
            !(self.start() <= self.end())
        }
    }
}
