//! Vendored stub of `rand` 0.8: the user-facing `Rng` trait plus the
//! `Standard` distribution, uniform ranges and slice shuffling.
//!
//! See `vendor/README.md` for scope and caveats.

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{DistIter, Distribution, Standard};

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Converts the RNG into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y = r.gen_range(0..=3u64);
            assert!(y <= 3);
            let z = r.gen_range(10..11usize);
            assert_eq!(z, 10);
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut r = rng();
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rng();
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = rng();
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn sample_iter_is_usable() {
        let xs: Vec<u64> = rng().sample_iter(Standard).take(4).collect();
        assert_eq!(xs.len(), 4);
    }

    #[test]
    fn works_through_dyn_and_mut_refs() {
        let mut r = rng();
        fn takes_generic<R: Rng + ?Sized>(r: &mut R) -> u64 {
            r.gen()
        }
        takes_generic(&mut r);
    }
}
