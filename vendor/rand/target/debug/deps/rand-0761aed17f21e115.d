/root/repo/vendor/rand/target/debug/deps/rand-0761aed17f21e115.d: src/lib.rs src/distributions.rs src/seq.rs

/root/repo/vendor/rand/target/debug/deps/rand-0761aed17f21e115: src/lib.rs src/distributions.rs src/seq.rs

src/lib.rs:
src/distributions.rs:
src/seq.rs:
