/root/repo/vendor/rand/target/debug/deps/rand_chacha-658fb535e08063c6.d: /root/repo/vendor/rand_chacha/src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand_chacha-658fb535e08063c6.rlib: /root/repo/vendor/rand_chacha/src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand_chacha-658fb535e08063c6.rmeta: /root/repo/vendor/rand_chacha/src/lib.rs

/root/repo/vendor/rand_chacha/src/lib.rs:
