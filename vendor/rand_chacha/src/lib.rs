//! Vendored stub of `rand_chacha`: a real ChaCha8 block function behind
//! the `ChaCha8Rng` API surface the workspace uses (`seed_from_u64`,
//! `set_stream`, `RngCore`).
//!
//! The block function is the original DJB ChaCha with 8 rounds, a 64-bit
//! block counter (state words 12–13) and a 64-bit nonce used as the
//! stream id (words 14–15), so distinct streams from the same key are
//! independent keystreams. Output word order and the `seed_from_u64`
//! expansion are this stub's own; equal seeds give equal streams, but
//! values are not bit-identical to the upstream crate.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    block: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects the keystream `stream` for the current key, restarting it
    /// from the beginning. Distinct streams are independent.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn set_stream_restarts_the_keystream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let first = a.next_u64();
        a.set_stream(0);
        assert_eq!(a.next_u64(), first);
    }

    #[test]
    fn output_looks_balanced() {
        // Cheap sanity check on the block function: the keystream should
        // have roughly half its bits set.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let total = 64_000;
        assert!((ones as i64 - total / 2).abs() < 2_000, "{ones} of {total}");
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expect = [b.next_u64().to_le_bytes(), b.next_u64().to_le_bytes()].concat();
        assert_eq!(&buf[..], &expect[..]);
    }
}
