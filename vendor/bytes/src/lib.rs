//! Vendored stub of `bytes`: cursor-style reading from `&[u8]` and
//! little-endian appending to `Vec<u8>` — the surface the trace codec
//! uses. Getters panic when the buffer is too short, matching upstream.
//!
//! See `vendor/README.md` for scope and caveats.

/// Sequential read access to a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(42);
        out.put_i64_le(-9);
        out.put_slice(b"xy");

        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 42);
        assert_eq!(buf.get_i64_le(), -9);
        assert_eq!(buf.chunk(), b"xy");
        buf.advance(2);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn short_reads_panic() {
        let mut buf: &[u8] = &[1, 2];
        buf.get_u32_le();
    }
}
