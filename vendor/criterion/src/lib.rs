//! Vendored stub of `criterion`: enough of the API to run the bench
//! targets and print mean wall-clock time per iteration.
//!
//! Measurement model: after a short warm-up, each benchmark runs batches
//! of iterations until a time budget is spent, then reports the mean.
//! No statistics, baselines or HTML reports; CLI flags are ignored. See
//! `vendor/README.md`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// The benchmark harness handle passed to `criterion_group!` targets.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id: strings or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Warm-up: also discovers a batch size that keeps batches short.
    let mut batch: u64 = 1;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= WARMUP_BUDGET {
            break;
        }
        if b.elapsed < Duration::from_millis(10) {
            batch = batch.saturating_mul(2);
        }
    }

    let mut total = Duration::ZERO;
    let mut iters: u64 = 0;
    let mut rounds = 0u32;
    while total < MEASURE_BUDGET && rounds < 10_000 {
        rounds += 1;
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
    }
    let per_iter = total.as_secs_f64() / iters.max(1) as f64;
    println!(
        "bench: {name:<56} {:>14} /iter ({iters} iters)",
        human(per_iter)
    );
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("f", 3), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls > 0);
    }
}
